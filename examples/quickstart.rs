//! Quick start: compare the fast and normal source-switch algorithms on a
//! small static overlay and print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fast_source_switching::prelude::*;

fn main() {
    // A 300-node static overlay with the paper's protocol parameters
    // (τ = 1 s, p = 10 segments/s, B = 600, Q = 10, Qs = 50, M = 5).
    let config = ScenarioConfig::paper(300, Algorithm::Fast, Environment::Static);

    println!(
        "running the fast and normal switch algorithms on {} nodes...",
        config.nodes
    );
    let comparison = run_comparison(&config);

    let fast = &comparison.fast;
    let normal = &comparison.normal;
    println!();
    println!("                         normal      fast");
    println!(
        "avg finishing time of S1 {:>7.2}s  {:>7.2}s",
        normal.switch.avg_finish_old_secs, fast.switch.avg_finish_old_secs
    );
    println!(
        "avg preparing time of S2 {:>7.2}s  {:>7.2}s   (= average switch time)",
        normal.switch.avg_prepare_new_secs, fast.switch.avg_prepare_new_secs
    );
    println!(
        "communication overhead   {:>7.4}   {:>7.4}",
        normal.overhead.overhead, fast.overhead.overhead
    );
    println!(
        "\nreduction ratio of the average switch time: {:.1}%",
        comparison.reduction_ratio() * 100.0
    );
    println!(
        "every node completed the switch: fast={} normal={}",
        fast.completed, normal.completed
    );
}
