//! Figure 2 in code: how the fast and normal switch algorithms order the same
//! ten available segments when only seven fit into the scheduling period.
//!
//! The node is switching from the old source S1 (five of its segments are
//! still missing) to the new source S2 (its first five segments are
//! available).  The normal algorithm requests all of S1 first; the fast
//! algorithm interleaves the two streams according to the optimal rate split.
//!
//! ```text
//! cargo run --example scheduling_order
//! ```

use fast_source_switching::core::{FastSwitchScheduler, NormalSwitchScheduler};
use fast_source_switching::gossip::{
    CandidateSegment, SchedulingContext, SegmentId, SegmentScheduler, SessionView, SourceId,
    StreamClass, SupplierInfo,
};

fn supplier(peer: u32, rate: f64, position: usize) -> SupplierInfo {
    SupplierInfo {
        peer,
        rate,
        buffer_position: position,
        buffer_capacity: 600,
    }
}

fn main() {
    // Old source S1 ends at segment 199; the node is 60 segments behind its
    // end and the new source S2 starts at segment 200.
    let mut candidates = Vec::new();
    for id in 195..200u64 {
        // The five remaining segments of S1.
        candidates.push(CandidateSegment {
            id: SegmentId(id),
            suppliers: vec![supplier(1, 14.0, 350), supplier(2, 12.0, 320)],
        });
    }
    for id in 200..205u64 {
        // The first five segments of S2.
        candidates.push(CandidateSegment {
            id: SegmentId(id),
            suppliers: vec![supplier(3, 14.0, 40), supplier(4, 16.0, 25)],
        });
    }

    let ctx = SchedulingContext {
        tau_secs: 1.0,
        play_rate: 10.0,
        inbound_rate: 7.0, // room for 7 of the 10 available segments
        id_play: SegmentId(140),
        startup_q: 10,
        new_source_qs: 50,
        old_session: Some(SessionView {
            id: SourceId(0),
            first_segment: SegmentId(0),
            last_segment: Some(SegmentId(199)),
        }),
        new_session: Some(SessionView {
            id: SourceId(1),
            first_segment: SegmentId(200),
            last_segment: None,
        }),
        q1: 60,
        q2: 50,
        candidates,
    };

    let describe = |name: &str, scheduler: &dyn SegmentScheduler| {
        let requests = scheduler.schedule(&ctx);
        let order: Vec<String> = requests
            .iter()
            .map(|r| {
                let class = match ctx.class_of(r.segment) {
                    StreamClass::Old => "S1",
                    StreamClass::New => "S2",
                };
                format!("{class}:{}", r.segment.value())
            })
            .collect();
        println!("{name:<22} {}", order.join("  "));
        let new = requests
            .iter()
            .filter(|r| ctx.class_of(r.segment) == StreamClass::New)
            .count();
        println!(
            "{:<22} {} old-source + {} new-source segments\n",
            "",
            requests.len() - new,
            new
        );
    };

    println!(
        "10 segments available (5 of S1, 5 of S2), inbound room for {} this period:\n",
        ctx.inbound_budget()
    );
    describe("normal switch order:", &NormalSwitchScheduler::new());
    describe("fast switch order:", &FastSwitchScheduler::new());
    println!("The fast algorithm interleaves the new source's segments instead of postponing");
    println!("them until every old-source segment has been fetched (cf. Figure 2 of the paper).");
}
