//! The per-peer memory meter: steady-state bytes/peer across population
//! sizes, then the large-population scenario the compact layout buys
//! headroom for (10k nodes by default; pass `full` for the 50k-node run).
//!
//! ```text
//! cargo run --release --example memory_footprint [-- full]
//! ```

use fast_source_switching::prelude::*;

fn print_summary(label: &str, mem: &MemSummary) {
    println!(
        "  {label:>12}: {:>6.0} B/peer  (ring {:>5.0}  window {:>4.0}  seqs {:>5.0})  \
         legacy {:>6.0} B/peer  → saving {:>4.1}%",
        mem.avg_bytes_per_peer,
        mem.ring_bytes as f64 / mem.active_peers.max(1) as f64,
        mem.window_bytes as f64 / mem.active_peers.max(1) as f64,
        mem.seq_bytes as f64 / mem.active_peers.max(1) as f64,
        mem.legacy_peer_state_bytes as f64 / mem.active_peers.max(1) as f64,
        100.0 * mem.reduction_vs_legacy
    );
}

fn main() {
    println!("steady-state per-peer protocol footprint (B = 600, paper defaults):");
    for point in sweep_memory(&[250, 1_000, 4_000]) {
        print_summary(&format!("{} nodes", point.nodes), &point.mem);
    }

    let full = std::env::args().any(|a| a == "full");
    let nodes = if full { LARGE_POPULATION_NODES } else { 10_000 };
    println!();
    println!("large-population scenario ({nodes} viewers, single channel)...");
    let start = std::time::Instant::now();
    let report = run_large_population(&MemoryScenario::sized(nodes));
    let elapsed = start.elapsed();
    print_summary("footprint", &report.mem);
    println!(
        "  {:.1}% of viewers reached steady playback over {} periods \
         ({:.1} s wall clock, {:.1} MB of peer state)",
        100.0 * report.playback_started,
        report.periods,
        elapsed.as_secs_f64(),
        report.mem.peer_state_bytes as f64 / 1e6
    );
    assert!(
        report.playback_started > 0.9,
        "large population failed to reach steady playback"
    );
}
