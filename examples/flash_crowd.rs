//! Popularity-skewed zapping with a flash-crowd storm, stepped as a
//! pipeline.
//!
//! Six channels with Zipf(1.1)-skewed popularity (channel 0 the most
//! popular) stream to 600 viewers; halfway through the run a flash crowd
//! of 120 viewers converges on channel 0 within a single period — the
//! hardest case for the join path.  Channels advance as a dependency-
//! tracked pipeline (a zap batch synchronises only its two endpoint
//! channels), which is byte-identical to barrier stepping; the example
//! runs both modes and reports the wall-clock for each.
//!
//! The example then re-runs the same workload with the membership
//! directory's storm-time admission control enabled
//! (`max_admits_per_period = 16`): the crowd queues at the target channel
//! and admits over several boundaries — the queue-depth timeline and the
//! admission-delay distribution are printed.
//!
//! Finally the streaming-QoE telemetry collected *during* the runs is
//! shown: the bounded stall timeline (startups, stalled-peer peaks and
//! per-window continuity across the storm) and the scorecard diff between
//! the unlimited and rate-limited runs — the artefact the telemetry layer
//! exists to produce (see `docs/observability.md`).
//!
//! ```text
//! cargo run --release --example flash_crowd
//! ```

use fast_source_switching::experiments::Algorithm;
use fast_source_switching::runtime::zap::{CrowdZap, Storm};
use fast_source_switching::runtime::{
    AdmissionControl, RuntimeReport, SessionConfig, SessionManager, SteppingMode, WorkerPool,
};
use std::sync::Arc;
use std::time::Instant;

const CHANNELS: usize = 6;
const VIEWERS_PER_CHANNEL: usize = 100;
const WARMUP: u64 = 40;
const MEASURE: u64 = 80;
const STORM_SIZE: usize = 120;
const ADMITS_PER_PERIOD: usize = 16;

fn run(pool: &Arc<WorkerPool>, mode: SteppingMode) -> (RuntimeReport, std::time::Duration) {
    run_with(pool, mode, AdmissionControl::unlimited()).0
}

fn run_with(
    pool: &Arc<WorkerPool>,
    mode: SteppingMode,
    admission: AdmissionControl,
) -> ((RuntimeReport, std::time::Duration), Vec<(u64, usize)>) {
    let config = SessionConfig {
        admission,
        ..SessionConfig::paper_default(CHANNELS, VIEWERS_PER_CHANNEL)
    };
    let mut manager = SessionManager::new(config, Arc::clone(pool), || Algorithm::Fast.scheduler());
    manager.set_zap_schedule(Box::new(
        CrowdZap::zipf(
            CHANNELS,
            VIEWERS_PER_CHANNEL,
            config.zap_fraction,
            1.1,
            config.seed,
        )
        .with_storms(vec![Storm {
            at: WARMUP + MEASURE / 2,
            target: 0,
            size: STORM_SIZE,
        }]),
    ));
    manager.set_mode(mode);
    let start = Instant::now();
    manager.warmup(WARMUP);
    manager.run_periods(MEASURE);
    let elapsed = start.elapsed();
    ((manager.report(), elapsed), manager.queue_depth_timeline())
}

fn main() {
    let pool = Arc::new(WorkerPool::with_available_parallelism());
    println!(
        "streaming {CHANNELS} channels x {VIEWERS_PER_CHANNEL} viewers, zipf(1.1) popularity, \
         {STORM_SIZE}-viewer storm on channel 0 at period {} ({} pool workers)...",
        WARMUP + MEASURE / 2,
        pool.workers()
    );

    let (report, pipelined_secs) = run(&pool, SteppingMode::pipelined());
    let (barrier_report, barrier_secs) = run(&pool, SteppingMode::Barrier);
    assert_eq!(
        report, barrier_report,
        "pipelined and barrier stepping must agree bit for bit"
    );

    println!();
    println!("channel  viewers  zaps-in  zaps-out  avg-zap-latency  p95   completion");
    for c in &report.channels {
        println!(
            "{:>7}  {:>7}  {:>7}  {:>8}  {:>13.2}s  {:>4.1}s  {:>9.1}%",
            c.channel,
            c.viewers,
            c.zaps_in,
            c.zaps_out,
            c.zap_latency.avg_startup_secs,
            c.zap_latency.p95_startup_secs,
            c.zap_latency.completion_rate() * 100.0
        );
    }

    let z = &report.cross_channel_zaps;
    println!();
    println!(
        "workload {:10}  {} zaps, avg startup {:.2}s, p95 {:.2}s, {:.1}% reached playback",
        report.workload,
        report.total_zaps(),
        z.avg_startup_secs,
        z.p95_startup_secs,
        z.completion_rate() * 100.0
    );
    println!(
        "zap load: channel {} takes {:.0}% of all arrivals, gini {:.2}",
        report.zap_load.busiest_channel,
        report.zap_load.busiest_share * 100.0,
        report.zap_load.gini
    );
    println!(
        "wall-clock: pipelined {:.2?} vs barrier {:.2?} (identical reports)",
        pipelined_secs, barrier_secs
    );

    // --- storm-time admission control ---------------------------------
    println!();
    println!(
        "re-running with admission control: each channel admits at most \
         {ADMITS_PER_PERIOD} zap arrivals per period boundary"
    );
    let ((limited, _), timeline) = run_with(
        &pool,
        SteppingMode::pipelined(),
        AdmissionControl::rate_limited(ADMITS_PER_PERIOD),
    );
    let a = &limited.admission;
    println!(
        "admissions: {} arrivals ({} deferred >=1 boundary, {} still queued), \
         delay avg {:.2}s / p95 {:.2}s / max {:.2}s, peak queue {}",
        a.admitted,
        a.deferred,
        a.still_queued,
        a.avg_delay_secs,
        a.p95_delay_secs,
        a.max_delay_secs,
        a.max_queue_depth
    );
    println!(
        "zap latency with the queue: avg {:.2}s vs {:.2}s unlimited (queue wait included)",
        limited.cross_channel_zaps.avg_startup_secs, z.avg_startup_secs
    );

    // Queue-depth timeline around the storm boundary (zero elsewhere).
    println!();
    println!("queue-depth timeline (period: total queued, # = 4 viewers):");
    let storm_at = (WARMUP + MEASURE / 2) as usize;
    for &(period, depth) in timeline
        .iter()
        .skip(storm_at.saturating_sub(2))
        .take_while(|&&(p, d)| (p as usize) < storm_at + 2 || d > 0)
    {
        println!(
            "  {:>5}: {:>3}  {}",
            period,
            depth,
            "#".repeat(depth.div_ceil(4))
        );
    }

    // --- streaming QoE telemetry --------------------------------------
    println!();
    println!(
        "QoE stall timeline of the rate-limited run (bounded: {} windows of \
         {} periods each; # = 2 stalled peers at the window's peak):",
        limited.qoe_timeline.slots().len(),
        limited.qoe_timeline.stride()
    );
    println!("  window    startups  stall-beg  stalled-peak  continuity");
    for w in limited.qoe_timeline.windows() {
        let continuity = w
            .continuity()
            .map_or_else(|| "    -".to_string(), |c| format!("{:.4}", c));
        println!(
            "  {:>4}..{:<4}  {:>7}  {:>9}  {:>12}  {}  {}",
            w.start_period,
            w.start_period + w.periods,
            w.startups,
            w.stall_begins,
            w.stalled_peak,
            continuity,
            "#".repeat((w.stalled_peak as usize).div_ceil(2))
        );
    }

    println!();
    println!("scorecard diff: unlimited admission -> {ADMITS_PER_PERIOD} admits/period");
    println!("{}", report.scorecard.diff(&limited.scorecard));
}
