//! A distance-education session under churn: the lecturer hands over to a
//! guest speaker while 5 % of the audience leaves and 5 % joins every second
//! (the paper's dynamic environment).
//!
//! The example compares the fast and the normal switch algorithm on the
//! identical churned workload and prints the per-second ratio tracks, i.e.
//! the data behind Figure 9.
//!
//! ```text
//! cargo run --release --example distance_learning_churn
//! ```

use fast_source_switching::prelude::*;

fn main() {
    let config = ScenarioConfig::paper(400, Algorithm::Fast, Environment::Dynamic);

    println!(
        "lecture with {} attendees, {}% churn per second; switching lecturer -> guest speaker...",
        config.nodes,
        config.churn_fraction * 100.0
    );
    let comparison = run_comparison(&config);

    println!();
    println!("secs  undelivered(lecturer)  delivered(guest)   [fast algorithm]");
    for row in comparison.fast.ratio_track.rows() {
        if row.secs.fract() == 0.0 {
            println!(
                "{:>4}  {:>20.3}  {:>16.3}",
                row.secs, row.undelivered_ratio_s1, row.delivered_ratio_s2
            );
        }
    }

    println!();
    println!(
        "avg switch time: fast {:.2}s vs normal {:.2}s (reduction {:.1}%)",
        comparison.fast.avg_switch_time_secs(),
        comparison.normal.avg_switch_time_secs(),
        comparison.reduction_ratio() * 100.0
    );
    println!(
        "attendees counted in the averages: {} (joiners during the switch follow their \
         neighbours' playback and are excluded, as in the paper)",
        comparison.fast.switch.countable_nodes
    );
    println!(
        "communication overhead: fast {:.2}% vs normal {:.2}%",
        comparison.fast.overhead.overhead * 100.0,
        comparison.normal.overhead.overhead * 100.0
    );
}
