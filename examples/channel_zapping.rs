//! Channel zapping: four concurrent streams, viewers hopping between them.
//!
//! The paper measures how fast a *stream* switches its source; this example
//! measures the dual — how fast a *viewer* switches streams.  A
//! `SessionManager` hosts four independent channels sharded over the
//! persistent worker pool; every period 2 % of each channel's viewers zap
//! to another channel and the delay until their playback resumes there is
//! recorded as zap latency.
//!
//! ```text
//! cargo run --release --example channel_zapping
//! ```

use fast_source_switching::experiments::{run_channel_zapping, ZappingScenario};
use fast_source_switching::runtime::WorkerPool;
use std::sync::Arc;

fn main() {
    let scenario = ZappingScenario::paper(4, 150);
    let pool = Arc::new(WorkerPool::with_available_parallelism());
    println!(
        "streaming {} channels x {} viewers for {} periods ({} warm-up) on {} pool worker(s), zap rate {:.0}%/period...",
        scenario.session.channels,
        scenario.session.viewers_per_channel,
        scenario.measure_periods,
        scenario.warmup_periods,
        pool.workers(),
        scenario.session.zap_fraction * 100.0
    );

    let report = run_channel_zapping(&scenario, &pool);

    println!();
    println!("channel  viewers  zaps-in  zaps-out  avg-zap-latency  p95   completion");
    for c in &report.channels {
        println!(
            "{:>7}  {:>7}  {:>7}  {:>8}  {:>13.2}s  {:>4.1}s  {:>9.1}%",
            c.channel,
            c.viewers,
            c.zaps_in,
            c.zaps_out,
            c.zap_latency.avg_startup_secs,
            c.zap_latency.p95_startup_secs,
            c.zap_latency.completion_rate() * 100.0
        );
    }
    let z = &report.cross_channel_zaps;
    println!();
    println!(
        "cross-channel: {} zaps, avg startup {:.2}s, p95 {:.2}s, max {:.2}s, {:.1}% reached playback",
        z.zaps(),
        z.avg_startup_secs,
        z.p95_startup_secs,
        z.max_startup_secs,
        z.completion_rate() * 100.0
    );
    println!(
        "zap load: workload {:?}, busiest channel {} with {:.0}% of arrivals, gini {:.2}",
        report.workload,
        report.zap_load.busiest_channel,
        report.zap_load.busiest_share * 100.0,
        report.zap_load.gini
    );
    println!(
        "(deterministic: rerunning on any pool size — or in barrier instead of pipelined \
         stepping — reproduces this report byte for byte)"
    );
}
