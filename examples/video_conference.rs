//! The paper's motivating scenario: a video conference in which the speaker
//! (the streaming source) changes several times in sequence.
//!
//! The example drives the [`StreamingSystem`] directly: it warms the overlay
//! up with the first speaker, then hands the stream over to a new speaker
//! three times, measuring the switch delay of every handover with the fast
//! switch algorithm.
//!
//! ```text
//! cargo run --release --example video_conference
//! ```

use fast_source_switching::prelude::*;
use fast_source_switching::trace::TraceGenerator;

fn main() {
    // Build a conference-sized overlay (200 participants) from a synthetic
    // crawl trace, with the paper's M = 5 neighbour rule.
    let trace = TraceGenerator::new(GeneratorConfig::sized(200, 7)).generate("conference");
    let overlay = OverlayBuilder::paper_default()
        .build(&trace)
        .expect("overlay construction");
    let participants: Vec<PeerId> = overlay.active_peers().collect();

    let mut system = StreamingSystem::new(
        overlay,
        GossipConfig::paper_default(),
        Box::new(FastSwitchScheduler::new()),
    );

    // The first speaker opens the conference and streams for 30 s.
    let mut speaker = participants[0];
    system.start_initial_source(speaker);
    system.run_periods(30);
    println!("speaker 1 (peer {speaker}) has been streaming for 30 s");

    // Three speaker changes, each measured independently.
    for round in 1..=3u32 {
        let next = participants[(round as usize * 61) % participants.len()];
        let next = if next == speaker {
            participants[1]
        } else {
            next
        };
        system.switch_source(next);
        let periods = system.run_until_switched(300);
        let summary = SwitchSummary::from_stats(&system.report().switch);

        println!(
            "handover {round}: peer {speaker} -> peer {next}: avg switch time {:.2}s, \
             last listener ready after {:.1}s ({} listeners, {periods} periods simulated)",
            summary.avg_switch_time_secs(),
            summary.max_prepare_new_secs,
            summary.countable_nodes,
        );
        speaker = next;

        // Let the new speaker stream for a while before the next handover.
        system.run_periods(20);
    }

    let report = system.report();
    println!(
        "\ntotal traffic: {:.1} Mbit of data, {:.2} Mbit of buffer maps ({:.2}% overhead)",
        report.traffic_total.data_bits as f64 / 1e6,
        report.traffic_total.control_bits as f64 / 1e6,
        report.traffic_total.overhead() * 100.0
    );
}
