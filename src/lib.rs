//! Fast Source Switching for Gossip-based Peer-to-Peer Streaming.
//!
//! This crate is the facade of a full reproduction of Li, Cao, Chen and Liu,
//! *"Fast Source Switching for Gossip-based Peer-to-Peer Streaming"*
//! (ICPP 2008).  It re-exports the workspace crates:
//!
//! * [`trace`] — synthetic Gnutella-2001-style crawl traces (the paper's
//!   `dss.clip2.com` topologies),
//! * [`overlay`] — overlay construction (`M = 5` neighbour augmentation,
//!   bandwidth assignment, churn),
//! * [`sim`] — the deterministic simulation substrate,
//! * [`gossip`] — the pull-based gossip streaming system (buffers, buffer
//!   maps, playback, transfers),
//! * [`core`] — the paper's contribution: the switch-process model, segment
//!   priorities, the greedy supplier assignment, and the Fast/Normal switch
//!   schedulers,
//! * [`metrics`] — metric aggregation (switch times, reduction ratio,
//!   communication overhead, ratio tracks, zap latencies),
//! * [`runtime`] — the persistent deterministic worker pool and the
//!   multi-channel session manager: barrier or pipelined stepping with
//!   pluggable zap workloads (uniform / Zipf-skewed / flash-crowd), and
//! * [`experiments`] — the scenario runner and the per-figure harness.
//!
//! # Quick start
//!
//! ```
//! use fast_source_switching::prelude::*;
//!
//! // Compare the fast and normal switch algorithms on a small static overlay.
//! let config = ScenarioConfig::quick(80, Algorithm::Fast, Environment::Static);
//! let comparison = run_comparison(&config);
//! assert!(comparison.fast.completed && comparison.normal.completed);
//! println!(
//!     "switch time: fast {:.1}s vs normal {:.1}s (reduction {:.0}%)",
//!     comparison.fast.avg_switch_time_secs(),
//!     comparison.normal.avg_switch_time_secs(),
//!     comparison.reduction_ratio() * 100.0
//! );
//! ```

#![warn(missing_docs)]

pub use fss_core as core;
pub use fss_experiments as experiments;
pub use fss_gossip as gossip;
pub use fss_metrics as metrics;
pub use fss_overlay as overlay;
pub use fss_runtime as runtime;
pub use fss_sim as sim;
pub use fss_trace as trace;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use fss_core::{FastSwitchScheduler, NormalSwitchScheduler, SwitchModel};
    pub use fss_experiments::{
        run_comparison, run_large_population, run_scenario, sweep_memory, Algorithm,
        ComparisonResult, Environment, LargePopulationReport, MemoryScenario, RunResult,
        ScenarioConfig, LARGE_POPULATION_NODES,
    };
    pub use fss_gossip::{
        GossipConfig, MemUsage, MemoryFootprint, SchedulingContext, SegmentId, SegmentScheduler,
        StreamingSystem,
    };
    pub use fss_metrics::{reduction_ratio, MemSummary, SwitchSummary, Table, ZapSummary};
    pub use fss_overlay::{ChurnModel, Overlay, OverlayBuilder, OverlayConfig, PeerId};
    pub use fss_runtime::{
        RuntimeReport, SessionConfig, SessionManager, SteppingMode, WorkerPool, ZapWorkload,
    };
    pub use fss_trace::{GeneratorConfig, TraceCatalog, TraceGenerator};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile_and_link() {
        let model = crate::core::SwitchModel::new(100.0, 50.0, 10.0, 10.0, 15.0);
        let split = model.optimal_split();
        assert!(split.r1 > 0.0 && split.r2 > 0.0);
        assert_eq!(crate::trace::TraceCatalog::standard().len(), 30);
    }
}
