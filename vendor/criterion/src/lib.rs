//! Offline stand-in for `criterion`: wall-clock micro-benchmarking with the
//! API subset this workspace uses.  Each benchmark is calibrated to a small
//! time budget, then timed over a fixed iteration count; results print as
//! one line per benchmark (`name ... time per iter`).  See `vendor/README.md`.

use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimiser from deleting a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier combining a function name and a parameter, e.g.
/// `BenchmarkId::new("greedy_assign", 400)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter` call.
    pub(crate) last_ns_per_iter: f64,
    pub(crate) measurement_budget: Duration,
}

impl Bencher {
    /// Times `routine`, storing the mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up / calibration: run once to estimate the per-iteration cost.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));

        // Fit as many iterations as the budget allows, bounded to [1, 10_000].
        let iters = (self.measurement_budget.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.last_ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }

    /// The mean nanoseconds per iteration of the last `iter` call.
    pub fn ns_per_iter(&self) -> f64 {
        self.last_ns_per_iter
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Compatibility no-op (the stand-in sizes runs by time budget instead).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Compatibility knob shrinking the per-benchmark time budget.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.criterion.measurement_budget = budget;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) {
        let full = format!("{}/{id}", self.name);
        self.criterion.run_named(&full, f);
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{id}", self.name);
        self.criterion.run_named(&full, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    measurement_budget: Duration,
    /// `(name, ns_per_iter)` pairs of every benchmark run.
    pub results: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench -- <filter>` forwards trailing args; honour a plain
        // substring filter and ignore flag-style arguments.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion {
            filter,
            measurement_budget: Duration::from_millis(300),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        self.run_named(&name.to_string(), f);
        self
    }

    fn run_named<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            last_ns_per_iter: 0.0,
            measurement_budget: self.measurement_budget,
        };
        f(&mut bencher);
        println!(
            "bench: {name:<50} {:>12}/iter",
            format_time(bencher.last_ns_per_iter)
        );
        self.results
            .push((name.to_string(), bencher.last_ns_per_iter));
    }
}

/// Declares the function bundling a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(21) * 2));
    }

    #[test]
    fn runs_and_records_results() {
        let mut criterion = Criterion {
            filter: None,
            measurement_budget: Duration::from_millis(5),
            results: Vec::new(),
        };
        spin(&mut criterion);
        assert_eq!(criterion.results.len(), 3);
        assert!(criterion.results.iter().all(|(_, ns)| *ns > 0.0));
        assert!(criterion.results[0].0.starts_with("demo/"));
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut criterion = Criterion {
            filter: Some("sum_to".into()),
            measurement_budget: Duration::from_millis(5),
            results: Vec::new(),
        };
        spin(&mut criterion);
        assert_eq!(criterion.results.len(), 1);
        assert!(criterion.results[0].0.contains("sum_to"));
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(12.3).contains("ns"));
        assert!(format_time(12_300.0).contains("µs"));
        assert!(format_time(12_300_000.0).contains("ms"));
        assert!(format_time(2_000_000_000.0).ends_with("s"));
    }
}
