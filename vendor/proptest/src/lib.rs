//! Offline stand-in for `proptest`: deterministic property testing with the
//! strategy / macro subset this workspace uses.  No shrinking — a failing
//! case panics with its case number so it can be replayed (generation is
//! seeded from the test name, so failures are stable across runs).
//! See `vendor/README.md`.

use std::fmt;

/// Error returned (via `prop_assert!`) from one generated test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Commonly imported items.
pub mod prelude {
    pub use crate::ProptestConfig;
}

/// The deterministic generator driving value production.
pub mod test_runner {
    /// splitmix64-based RNG; seeded from the property's name so every run of
    /// a given test generates the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a label (the test function name).
        pub fn deterministic(label: &str) -> TestRng {
            let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
            for &b in label.as_bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state }
        }

        /// Next 64 raw bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe producing values of one type.
    pub trait Strategy {
        /// The produced type.
        type Value;
        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            v.min(self.end - (self.end - self.start) * f64::EPSILON)
        }
    }

    impl Strategy for ::std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            (start + (end - start) * rng.unit_f64()).clamp(start, end)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with a size drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with a target size drawn from a range.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` of roughly `size` distinct elements drawn from `element`
    /// (generation stops early if the strategy cannot produce enough distinct
    /// values).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty set size range");
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span.max(1)) as usize;
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(20) + 64 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

// Re-exported so `use` paths like the real crate's work if anyone does
// `use proptest::Strategy`.
pub use strategy::Strategy;

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (not panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Defines property tests: an optional `#![proptest_config(...)]` header
/// followed by one or more `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(error) = outcome {
                        panic!("property {} failed at case {case}: {error}", stringify!($name));
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    crate::proptest! {
        #![proptest_config(crate::ProptestConfig::with_cases(32))]
        /// Generated vectors respect the size and element ranges.
        #[test]
        fn vec_strategy_respects_ranges(
            values in crate::collection::vec(3u64..9, 2..12),
            scale in 0.5f64..=2.0,
        ) {
            crate::prop_assert!((2..12).contains(&values.len()));
            for v in &values {
                crate::prop_assert!((3..9).contains(v), "value {v} out of range");
            }
            crate::prop_assert!((0.5..=2.0).contains(&scale));
        }

        /// Sets are distinct and tuple strategies compose.
        #[test]
        fn set_and_tuple_strategies(
            set in crate::collection::btree_set(0u32..50, 5..20),
            pair in (1usize..4, 10i64..20),
        ) {
            crate::prop_assert!(set.len() >= 5);
            crate::prop_assert!(set.iter().all(|v| *v < 50));
            crate::prop_assert!(pair.0 < 4 && pair.1 >= 10);
        }
    }

    #[test]
    fn early_return_ok_is_supported() {
        crate::proptest! {
            fn inner(flag in 0u8..2) {
                if flag == 0 {
                    return Ok(());
                }
                crate::prop_assert!(flag == 1);
            }
        }
        inner();
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("label");
        let mut b = crate::test_runner::TestRng::deterministic("label");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
