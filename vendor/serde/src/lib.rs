//! Offline stand-in for the serde facade: marker traits plus the no-op
//! derive macros from `serde_derive`.  See `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
