//! Offline stand-in for `crossbeam`: scoped threads over
//! `std::thread::scope`.  See `vendor/README.md`.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// The scope handle passed to the closure of [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Argument handed to spawned closures (crossbeam passes the scope so
    /// workers can spawn recursively; this stand-in supports only the
    /// non-recursive `|_| ...` form used in-tree).
    #[derive(Debug, Clone, Copy)]
    pub struct NestedScope(());

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the panic
        /// payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&NestedScope(()))),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing, scoped threads can be
    /// spawned; returns once every spawned thread has finished.
    ///
    /// Unlike crossbeam, a panicking worker propagates the panic out of
    /// `scope` (std semantics) instead of surfacing it through `Err`; in-tree
    /// callers `.expect()` the result either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data: Vec<u64> = (0..100).collect();
        let total: u64 = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(30)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, data.iter().sum());
    }
}
