//! Offline stand-in for `bytes` 1.x: the subset this workspace uses
//! (big-endian u32/u64 cursored reads and writes).  See `vendor/README.md`.

use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer with a read cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    /// Read position: `get_*` consume from the front, like the real crate's
    /// advancing `Buf` cursor.
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::new(bytes.to_vec()),
            pos: 0,
        }
    }

    /// Remaining (unread) length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "buffer underflow: {} < {n}", self.len());
        let start = self.pos;
        self.pos += n;
        &self.data[start..start + n]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::new(data),
            pos: 0,
        }
    }
}

/// Growable byte buffer for message construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Cursored big-endian reads (the subset of `bytes::Buf` used in-tree).
pub trait Buf {
    /// Reads a big-endian `u32`, advancing the cursor.
    fn get_u32(&mut self) -> u32;
    /// Reads a big-endian `u64`, advancing the cursor.
    fn get_u64(&mut self) -> u64;
}

impl Buf for Bytes {
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

/// Big-endian writes (the subset of `bytes::BufMut` used in-tree).
pub trait BufMut {
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64);
}

impl BufMut for BytesMut {
    fn put_u32(&mut self, value: u32) {
        self.data.extend_from_slice(&value.to_be_bytes());
    }

    fn put_u64(&mut self, value: u64) {
        self.data.extend_from_slice(&value.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut out = BytesMut::with_capacity(12);
        out.put_u64(0xDEAD_BEEF_0123_4567);
        out.put_u32(42);
        assert_eq!(out.len(), 12);
        let mut bytes = out.freeze();
        assert_eq!(bytes.len(), 12);
        assert_eq!(bytes.get_u64(), 0xDEAD_BEEF_0123_4567);
        assert_eq!(bytes.get_u32(), 42);
        assert!(bytes.is_empty());
    }

    #[test]
    fn clones_have_independent_cursors() {
        let mut a = BytesMut::new();
        a.put_u32(7);
        a.put_u32(9);
        let mut x = a.freeze();
        let mut y = x.clone();
        assert_eq!(x.get_u32(), 7);
        assert_eq!(y.get_u32(), 7);
        assert_eq!(x.get_u32(), 9);
        assert_eq!(y.get_u32(), 9);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        Bytes::from_static(&[1, 2, 3]).get_u32();
    }
}
