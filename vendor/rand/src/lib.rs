//! Offline stand-in for `rand` 0.8: the subset this workspace uses.
//!
//! [`rngs::SmallRng`] is xoshiro256++ seeded through splitmix64, the same
//! generator rand 0.8 uses for `SmallRng` on 64-bit targets, so statistical
//! quality matches the real crate.  See `vendor/README.md`.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from an [`Rng`] (stand-in for the
/// `Standard` distribution).
pub trait FromRng {
    /// Draws one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for usize {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (rand's `Standard`).
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges an [`Rng`] can sample from (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::from_rng(rng);
        let value = self.start + (self.end - self.start) * unit;
        // Guard against rounding up to the excluded endpoint.
        if value >= self.end {
            self.start
                .max(self.end - (self.end - self.start) * f64::EPSILON)
        } else {
            value
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let unit = f64::from_rng(rng);
        (start + (end - start) * unit).clamp(start, end)
    }
}

/// The random number generator interface.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value.
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed (splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// xoshiro256++, the algorithm behind rand 0.8's `SmallRng` on 64-bit
    /// targets: fast, small state, excellent statistical quality (not
    /// cryptographically secure).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            if s == [0; 4] {
                s[0] = 1; // xoshiro must not start from the all-zero state
            }
            SmallRng { s }
        }
    }
}

/// Random operations over slices.
pub mod seq {
    use super::Rng;

    /// Iterator returned by [`SliceRandom::choose_multiple`].
    #[derive(Debug)]
    pub struct SliceChooseIter<'a, T> {
        slice: &'a [T],
        indices: std::vec::IntoIter<usize>,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;
        fn next(&mut self) -> Option<&'a T> {
            self.indices.next().map(|i| &self.slice[i])
        }
        fn size_hint(&self) -> (usize, Option<usize>) {
            self.indices.size_hint()
        }
    }

    impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}

    /// The subset of rand's `SliceRandom` this workspace uses.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (fewer when the slice
        /// is shorter than `amount`).
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices.truncate(amount);
            SliceChooseIter {
                slice: self,
                indices: indices.into_iter(),
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| r.gen()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(8);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_f64_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(1.5f64..=2.5);
            assert!((1.5..=2.5).contains(&f));
            let g = r.gen_range(-4.0f64..4.0);
            assert!((-4.0..4.0).contains(&g));
        }
    }

    #[test]
    fn slice_helpers() {
        let mut r = SmallRng::seed_from_u64(3);
        let data: Vec<u32> = (0..50).collect();
        assert!(data.choose(&mut r).is_some());
        assert!(([] as [u32; 0]).choose(&mut r).is_none());

        let picked: Vec<u32> = data.choose_multiple(&mut r, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut unique = picked.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            unique.len(),
            10,
            "choose_multiple returns distinct elements"
        );

        let mut shuffled = data.clone();
        shuffled.shuffle(&mut r);
        let mut sorted = shuffled.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, data);
    }
}
