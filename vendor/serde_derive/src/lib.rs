//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! Nothing in this workspace serialises through serde (the derives are kept
//! on the public data types so downstream users compile against the familiar
//! bounds), so the derive expansion is intentionally empty.

use proc_macro::TokenStream;

/// Emits nothing: the in-tree code never calls serialisation methods.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Emits nothing: the in-tree code never calls deserialisation methods.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
