//! End-to-end pipeline tests across crates: trace → overlay → streaming
//! system → source switch, driven through the public facade.

use fast_source_switching::gossip::{GossipConfig, StreamingSystem};
use fast_source_switching::overlay::{OverlayBuilder, PeerId};
use fast_source_switching::prelude::*;
use fast_source_switching::trace::{parser, TraceGenerator};

#[test]
fn trace_round_trips_and_builds_a_streaming_overlay() {
    // Generate a synthetic crawl, serialise it like a clip2 dump, re-parse it
    // and build the overlay from the parsed copy.
    let trace = TraceGenerator::new(GeneratorConfig::sized(150, 42)).generate("pipeline");
    let text = parser::to_text(&trace);
    let parsed = parser::from_text(&text).expect("trace parses back");
    assert_eq!(parsed.node_count(), 150);

    let overlay = OverlayBuilder::paper_default()
        .build(&parsed)
        .expect("overlay builds");
    assert_eq!(overlay.active_count(), 150);
    assert!(
        overlay.graph().min_degree().unwrap() >= 5,
        "paper's M = 5 rule"
    );
}

#[test]
fn full_switch_through_the_facade_completes_with_both_algorithms() {
    for algorithm in [Algorithm::Fast, Algorithm::Normal] {
        let trace = TraceGenerator::new(GeneratorConfig::sized(90, 3)).generate("facade");
        let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
        let peers: Vec<PeerId> = overlay.active_peers().collect();

        let mut system = StreamingSystem::new(
            overlay,
            GossipConfig::paper_default(),
            algorithm.scheduler(),
        );
        system.start_initial_source(peers[0]);
        system.run_periods(25);
        system.switch_source(peers[40]);
        let executed = system.run_until_switched(200);
        assert!(executed < 200, "{:?} switch never completed", algorithm);

        let report = system.report();
        assert!(report.switch_completed_secs.is_some());
        let summary = SwitchSummary::from_stats(&report.switch);
        assert!(summary.completion_rate() > 0.999);
        assert!(summary.avg_switch_time_secs() > 0.0);
        assert!(summary.avg_finish_old_secs >= 0.0);
        // The communication overhead stays in the paper's ~1 % ballpark.
        let overhead = report.traffic_switch_window.overhead();
        assert!(overhead > 0.002 && overhead < 0.08, "overhead {overhead}");
    }
}

#[test]
fn identical_seeds_reproduce_identical_results() {
    let config = ScenarioConfig::quick(70, Algorithm::Fast, Environment::Static);
    let a = run_scenario(&config);
    let b = run_scenario(&config);
    assert_eq!(a.switch, b.switch);
    assert_eq!(a.overhead, b.overhead);
    assert_eq!(a.ratio_track, b.ratio_track);
}

#[test]
fn catalog_topologies_feed_the_simulator() {
    let catalog = TraceCatalog::standard();
    let spec = catalog.by_name("clip2-synth-100-a").expect("catalog entry");
    let trace = spec.generate();
    let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
    assert_eq!(overlay.active_count(), 100);
    assert_eq!(overlay.name, "clip2-synth-100-a");
}
