//! Cross-crate behavioural tests of the switch algorithms: the paper's
//! qualitative claims at test-friendly scale.

use fast_source_switching::core::{
    allocate_rates, greedy_assign, optimal_assign, AssignmentOrder, SwitchModel,
};
use fast_source_switching::gossip::{
    CandidateSegment, SchedulingContext, SegmentId, SessionView, SourceId, SupplierInfo,
};
use fast_source_switching::prelude::*;

/// Builds a synthetic switch context with `old_missing` old-source segments
/// and `new_available` new-source segments, all well supplied.
fn context(old_missing: u64, new_available: u64, inbound: f64) -> SchedulingContext {
    let mut candidates = Vec::new();
    for id in (200 - old_missing)..200 {
        candidates.push(CandidateSegment {
            id: SegmentId(id),
            suppliers: vec![
                SupplierInfo {
                    peer: 1,
                    rate: 18.0,
                    buffer_position: 300,
                    buffer_capacity: 600,
                },
                SupplierInfo {
                    peer: 2,
                    rate: 15.0,
                    buffer_position: 250,
                    buffer_capacity: 600,
                },
            ],
        });
    }
    for id in 200..200 + new_available {
        candidates.push(CandidateSegment {
            id: SegmentId(id),
            suppliers: vec![SupplierInfo {
                peer: 3,
                rate: 20.0,
                buffer_position: 30,
                buffer_capacity: 600,
            }],
        });
    }
    SchedulingContext {
        tau_secs: 1.0,
        play_rate: 10.0,
        inbound_rate: inbound,
        id_play: SegmentId(200 - old_missing),
        startup_q: 10,
        new_source_qs: 50,
        old_session: Some(SessionView {
            id: SourceId(0),
            first_segment: SegmentId(0),
            last_segment: Some(SegmentId(199)),
        }),
        new_session: Some(SessionView {
            id: SourceId(1),
            first_segment: SegmentId(200),
            last_segment: None,
        }),
        q1: old_missing as usize,
        q2: 50,
        candidates,
    }
}

#[test]
fn fast_scheduler_tracks_the_models_optimal_split() {
    // Over a range of backlogs the per-period split chosen by the fast
    // scheduler stays within one segment of the closed-form r1/r2.
    let scheduler = FastSwitchScheduler::new();
    for q1 in [20u64, 40, 80, 120] {
        let ctx = context(q1, 40, 15.0);
        let requests = scheduler.schedule(&ctx);
        let old = requests
            .iter()
            .filter(|r| r.segment < SegmentId(200))
            .count() as f64;
        let split = SwitchModel::new(q1 as f64, 50.0, 10.0, 10.0, 15.0).optimal_split();
        assert!(
            (old - split.r1).abs() <= 1.5,
            "Q1={q1}: scheduled {old} old segments, model says {:.2}",
            split.r1
        );
    }
}

#[test]
fn normal_scheduler_never_requests_new_segments_while_old_ones_remain() {
    let scheduler = NormalSwitchScheduler::new();
    let ctx = context(40, 40, 15.0);
    let requests = scheduler.schedule(&ctx);
    assert_eq!(requests.len(), 15);
    assert!(requests.iter().all(|r| r.segment < SegmentId(200)));
}

#[test]
fn greedy_assignment_is_close_to_the_exact_optimum_on_small_instances() {
    // The supplier-assignment subproblem is NP-hard; on exhaustive-search
    // sized instances the greedy heuristic of Algorithm 1 delivers at least
    // 80 % of the optimal number of segments (and usually all of them).
    for old in 1..=4u64 {
        for new in 1..=4u64 {
            let ctx = context(old, new, 33.0);
            let greedy = greedy_assign(&ctx, AssignmentOrder::ByPriority);
            let exact = optimal_assign(&ctx);
            let greedy_total = greedy.old.len() + greedy.new.len();
            assert!(greedy_total <= exact.delivered);
            assert!(
                greedy_total as f64 >= 0.8 * exact.delivered as f64,
                "greedy {greedy_total} vs optimal {} (old={old}, new={new})",
                exact.delivered
            );
        }
    }
}

#[test]
fn four_case_allocation_is_consistent_with_the_model() {
    let split = SwitchModel::new(100.0, 50.0, 10.0, 10.0, 15.0).optimal_split();
    // Abundant supply: the ideal split is realised (case 1).
    let ideal = allocate_rates(split, 100, 100, 15, 1.0);
    assert_eq!(ideal.total(), 15);
    // New-source supply limited to 2 segments: the leftover goes to S1.
    let limited = allocate_rates(split, 100, 2, 15, 1.0);
    assert_eq!(limited.new_segments, 2);
    assert_eq!(limited.old_segments, 13);
}

#[test]
fn end_to_end_fast_switch_is_not_slower_and_costs_no_extra_overhead() {
    let base = ScenarioConfig::quick(150, Algorithm::Fast, Environment::Static);
    let cmp = run_comparison(&base);
    assert!(cmp.fast.completed && cmp.normal.completed);
    // Identical workloads (same seeds) — identical backlog at the switch.
    assert_eq!(
        cmp.fast.switch.countable_nodes,
        cmp.normal.switch.countable_nodes
    );
    assert!((cmp.fast.switch.avg_q0 - cmp.normal.switch.avg_q0).abs() < 1e-9);
    // The fast algorithm prepares the new source at least as early …
    assert!(cmp.fast.switch.avg_prepare_new_secs <= cmp.normal.switch.avg_prepare_new_secs + 0.5);
    // … by delaying (never accelerating) the old stream's finish …
    assert!(cmp.fast.switch.avg_finish_old_secs + 0.5 >= cmp.normal.switch.avg_finish_old_secs);
    // … without extra communication overhead.
    assert!(cmp.fast.overhead.overhead <= cmp.normal.overhead.overhead * 1.05);
}

#[test]
fn dynamic_and_static_environments_are_consistent() {
    // Figures 9-12 vs 5-8: the dynamic results behave like the static ones.
    let static_cfg = ScenarioConfig::quick(120, Algorithm::Fast, Environment::Static);
    let dynamic_cfg = ScenarioConfig::quick(120, Algorithm::Fast, Environment::Dynamic);
    let s = run_scenario(&static_cfg);
    let d = run_scenario(&dynamic_cfg);
    assert!(s.completed && d.completed);
    // Churn never speeds a switch up, and overhead stays in the same ballpark.
    assert!(d.avg_switch_time_secs() + 1.0 >= s.avg_switch_time_secs());
    assert!(d.overhead.overhead < 3.0 * s.overhead.overhead);
}
