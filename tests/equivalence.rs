//! Hot-path equivalence: the zero-allocation scratch-arena period loop (and,
//! when enabled, its parallel scheduling sweep) must produce a `SystemReport`
//! identical to the original straight-line reference implementation on a
//! seeded churn scenario with the paper's schedulers.

use fast_source_switching::core::{FastSwitchScheduler, NormalSwitchScheduler};
use fast_source_switching::gossip::{
    GossipConfig, SegmentScheduler, StreamingSystem, SystemReport,
};
use fast_source_switching::overlay::{ChurnModel, OverlayBuilder, PeerId};
use fast_source_switching::trace::{GeneratorConfig, TraceGenerator};

#[derive(Clone, Copy, PartialEq)]
enum Path {
    Reference,
    Optimized,
    #[allow(dead_code)]
    Parallel(usize),
}

/// Runs the 200-node churned switch scenario through the selected period
/// implementation and returns its report.
fn run_churn_scenario(scheduler: Box<dyn SegmentScheduler>, path: Path) -> SystemReport {
    let trace = TraceGenerator::new(GeneratorConfig::sized(200, 42)).generate("equivalence");
    let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
    let peers: Vec<PeerId> = overlay.active_peers().collect();
    let (s1, s2) = (peers[0], peers[peers.len() / 2]);

    let mut sys = StreamingSystem::new(overlay, GossipConfig::paper_default(), scheduler);
    if let Path::Parallel(workers) = path {
        sys.set_parallelism(workers);
    }
    let step = |sys: &mut StreamingSystem| match path {
        Path::Reference => sys.step_reference(),
        Path::Optimized | Path::Parallel(_) => sys.step(),
    };

    sys.start_initial_source(s1);
    for _ in 0..40 {
        step(&mut sys);
    }
    sys.set_churn(ChurnModel::paper_default(7));
    sys.switch_source(s2);
    for _ in 0..120 {
        step(&mut sys);
    }
    sys.report()
}

#[test]
fn fast_scheduler_optimized_matches_reference_under_churn() {
    let reference = run_churn_scenario(Box::new(FastSwitchScheduler::new()), Path::Reference);
    let optimized = run_churn_scenario(Box::new(FastSwitchScheduler::new()), Path::Optimized);
    assert_eq!(optimized, reference);
    // The scenario is meaningful: the switch actually completed and traffic
    // flowed.
    assert!(reference.switch_completed_secs.is_some());
    assert!(reference.traffic_total.data_bits > 0);
    assert!(!reference.ratio_samples.is_empty());
}

#[test]
fn normal_scheduler_optimized_matches_reference_under_churn() {
    let reference = run_churn_scenario(Box::new(NormalSwitchScheduler::new()), Path::Reference);
    let optimized = run_churn_scenario(Box::new(NormalSwitchScheduler::new()), Path::Optimized);
    assert_eq!(optimized, reference);
}

#[cfg(feature = "parallel")]
#[test]
fn parallel_sweep_matches_sequential_under_churn() {
    let sequential = run_churn_scenario(Box::new(FastSwitchScheduler::new()), Path::Optimized);
    for workers in [2, 4, 7] {
        let parallel = run_churn_scenario(
            Box::new(FastSwitchScheduler::new()),
            Path::Parallel(workers),
        );
        assert_eq!(parallel, sequential, "workers = {workers}");
    }
}
