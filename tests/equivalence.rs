//! Hot-path equivalence: the zero-allocation scratch-arena period loop (and,
//! when enabled, its parallel scheduling sweep) must produce a `SystemReport`
//! identical to the original straight-line reference implementation on a
//! seeded churn scenario with the paper's schedulers.

use fast_source_switching::core::{FastSwitchScheduler, NormalSwitchScheduler};
use fast_source_switching::gossip::{
    GossipConfig, SegmentScheduler, StreamingSystem, SystemReport,
};
use fast_source_switching::overlay::{ChurnModel, OverlayBuilder, PeerId};
use fast_source_switching::trace::{GeneratorConfig, TraceGenerator};

#[derive(Clone, Copy, PartialEq)]
enum Path {
    Reference,
    Optimized,
    /// Chunked scheduling sweep without an executor (in-line chunks).
    #[allow(dead_code)]
    Parallel(usize),
    /// Chunked scheduling sweep on a persistent pool of the given size.
    #[allow(dead_code)]
    Pool {
        chunks: usize,
        workers: usize,
    },
}

/// Runs the 200-node churned switch scenario through the selected period
/// implementation and returns its report.
fn run_churn_scenario(scheduler: Box<dyn SegmentScheduler>, path: Path) -> SystemReport {
    let trace = TraceGenerator::new(GeneratorConfig::sized(200, 42)).generate("equivalence");
    let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
    let peers: Vec<PeerId> = overlay.active_peers().collect();
    let (s1, s2) = (peers[0], peers[peers.len() / 2]);

    let mut sys = StreamingSystem::new(overlay, GossipConfig::paper_default(), scheduler);
    match path {
        Path::Parallel(workers) => sys.set_parallelism(workers),
        Path::Pool { chunks, workers } => {
            sys.set_parallelism(chunks);
            let pool =
                std::sync::Arc::new(fast_source_switching::runtime::WorkerPool::new(workers));
            sys.set_executor(pool.as_executor());
        }
        Path::Reference | Path::Optimized => {}
    }
    let step = |sys: &mut StreamingSystem| match path {
        Path::Reference => sys.step_reference(),
        Path::Optimized | Path::Parallel(_) | Path::Pool { .. } => sys.step(),
    };

    sys.start_initial_source(s1);
    for _ in 0..40 {
        step(&mut sys);
    }
    sys.set_churn(ChurnModel::paper_default(7));
    sys.switch_source(s2);
    for _ in 0..120 {
        step(&mut sys);
    }
    sys.report()
}

#[test]
fn fast_scheduler_optimized_matches_reference_under_churn() {
    let reference = run_churn_scenario(Box::new(FastSwitchScheduler::new()), Path::Reference);
    let optimized = run_churn_scenario(Box::new(FastSwitchScheduler::new()), Path::Optimized);
    assert_eq!(optimized, reference);
    // The scenario is meaningful: the switch actually completed and traffic
    // flowed.
    assert!(reference.switch_completed_secs.is_some());
    assert!(reference.traffic_total.data_bits > 0);
    assert!(!reference.ratio_samples.is_empty());
}

#[test]
fn normal_scheduler_optimized_matches_reference_under_churn() {
    let reference = run_churn_scenario(Box::new(NormalSwitchScheduler::new()), Path::Reference);
    let optimized = run_churn_scenario(Box::new(NormalSwitchScheduler::new()), Path::Optimized);
    assert_eq!(optimized, reference);
}

#[cfg(feature = "parallel")]
#[test]
fn parallel_sweep_matches_sequential_under_churn() {
    let sequential = run_churn_scenario(Box::new(FastSwitchScheduler::new()), Path::Optimized);
    for workers in [2, 4, 7] {
        let parallel = run_churn_scenario(
            Box::new(FastSwitchScheduler::new()),
            Path::Parallel(workers),
        );
        assert_eq!(parallel, sequential, "workers = {workers}");
    }
}

/// The pool determinism guarantee: the scheduling sweep dispatched onto the
/// persistent worker pool produces byte-identical reports for every pool
/// size — 1 (in-line), 2, 4 and 7 workers — under churn, and matches the
/// sequential and reference paths.
#[cfg(feature = "parallel")]
#[test]
fn pool_backed_sweep_is_byte_identical_across_pool_sizes() {
    let sequential = run_churn_scenario(Box::new(FastSwitchScheduler::new()), Path::Optimized);
    for workers in [1, 2, 4, 7] {
        let pooled = run_churn_scenario(
            Box::new(FastSwitchScheduler::new()),
            Path::Pool { chunks: 4, workers },
        );
        assert_eq!(pooled, sequential, "pool workers = {workers}");
    }
}

/// Pool reuse across consecutive sessions: a pool that already ran one full
/// session must drive a second one to exactly the report a fresh pool
/// produces (no state leakage through the persistent workers).
#[cfg(feature = "parallel")]
#[test]
fn pool_reuse_across_sessions_matches_fresh_pool() {
    use fast_source_switching::runtime::WorkerPool;
    use std::sync::Arc;

    let run_on = |pool: &Arc<WorkerPool>, scheduler: Box<dyn SegmentScheduler>| {
        let trace = TraceGenerator::new(GeneratorConfig::sized(150, 42)).generate("pool-reuse");
        let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
        let peers: Vec<PeerId> = overlay.active_peers().collect();
        let (s1, s2) = (peers[0], peers[peers.len() / 2]);
        let mut sys = StreamingSystem::new(overlay, GossipConfig::paper_default(), scheduler);
        sys.set_parallelism(4);
        sys.set_executor(pool.as_executor());
        sys.start_initial_source(s1);
        sys.run_periods(30);
        sys.set_churn(ChurnModel::paper_default(7));
        sys.switch_source(s2);
        sys.run_periods(60);
        sys.report()
    };

    let shared = Arc::new(WorkerPool::new(3));
    let first = run_on(&shared, Box::new(FastSwitchScheduler::new()));
    let second = run_on(&shared, Box::new(NormalSwitchScheduler::new()));
    assert_eq!(
        first,
        run_on(
            &Arc::new(WorkerPool::new(3)),
            Box::new(FastSwitchScheduler::new())
        )
    );
    assert_eq!(
        second,
        run_on(
            &Arc::new(WorkerPool::new(3)),
            Box::new(NormalSwitchScheduler::new())
        )
    );
    assert_ne!(first, second, "schedulers must differ on this workload");
}
