/root/repo/target/debug/deps/fss_metrics-c133f8b725338e37.d: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/fss_metrics-c133f8b725338e37: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/overhead.rs:
crates/metrics/src/report.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/switch.rs:
crates/metrics/src/timeseries.rs:
