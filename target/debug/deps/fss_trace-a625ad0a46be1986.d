/root/repo/target/debug/deps/fss_trace-a625ad0a46be1986.d: crates/trace/src/lib.rs crates/trace/src/catalog.rs crates/trace/src/error.rs crates/trace/src/generator.rs crates/trace/src/parser.rs crates/trace/src/record.rs crates/trace/src/speed.rs

/root/repo/target/debug/deps/fss_trace-a625ad0a46be1986: crates/trace/src/lib.rs crates/trace/src/catalog.rs crates/trace/src/error.rs crates/trace/src/generator.rs crates/trace/src/parser.rs crates/trace/src/record.rs crates/trace/src/speed.rs

crates/trace/src/lib.rs:
crates/trace/src/catalog.rs:
crates/trace/src/error.rs:
crates/trace/src/generator.rs:
crates/trace/src/parser.rs:
crates/trace/src/record.rs:
crates/trace/src/speed.rs:
