/root/repo/target/debug/deps/fss_core-a238fba99d376cff.d: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/assign.rs crates/core/src/fast.rs crates/core/src/model.rs crates/core/src/normal.rs crates/core/src/optimal.rs crates/core/src/priority.rs

/root/repo/target/debug/deps/libfss_core-a238fba99d376cff.rlib: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/assign.rs crates/core/src/fast.rs crates/core/src/model.rs crates/core/src/normal.rs crates/core/src/optimal.rs crates/core/src/priority.rs

/root/repo/target/debug/deps/libfss_core-a238fba99d376cff.rmeta: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/assign.rs crates/core/src/fast.rs crates/core/src/model.rs crates/core/src/normal.rs crates/core/src/optimal.rs crates/core/src/priority.rs

crates/core/src/lib.rs:
crates/core/src/allocation.rs:
crates/core/src/assign.rs:
crates/core/src/fast.rs:
crates/core/src/model.rs:
crates/core/src/normal.rs:
crates/core/src/optimal.rs:
crates/core/src/priority.rs:
