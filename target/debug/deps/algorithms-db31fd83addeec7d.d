/root/repo/target/debug/deps/algorithms-db31fd83addeec7d.d: tests/algorithms.rs Cargo.toml

/root/repo/target/debug/deps/libalgorithms-db31fd83addeec7d.rmeta: tests/algorithms.rs Cargo.toml

tests/algorithms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
