/root/repo/target/debug/deps/ablation-03f7d84735a8790c.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/ablation-03f7d84735a8790c: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
