/root/repo/target/debug/deps/model-9a3de27ffc1fee28.d: crates/bench/benches/model.rs Cargo.toml

/root/repo/target/debug/deps/libmodel-9a3de27ffc1fee28.rmeta: crates/bench/benches/model.rs Cargo.toml

crates/bench/benches/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
