/root/repo/target/debug/deps/fss_metrics-50e541c62ba32c5b.d: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/libfss_metrics-50e541c62ba32c5b.rlib: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/libfss_metrics-50e541c62ba32c5b.rmeta: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/overhead.rs:
crates/metrics/src/report.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/switch.rs:
crates/metrics/src/timeseries.rs:
