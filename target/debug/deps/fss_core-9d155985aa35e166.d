/root/repo/target/debug/deps/fss_core-9d155985aa35e166.d: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/assign.rs crates/core/src/fast.rs crates/core/src/model.rs crates/core/src/normal.rs crates/core/src/optimal.rs crates/core/src/priority.rs

/root/repo/target/debug/deps/fss_core-9d155985aa35e166: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/assign.rs crates/core/src/fast.rs crates/core/src/model.rs crates/core/src/normal.rs crates/core/src/optimal.rs crates/core/src/priority.rs

crates/core/src/lib.rs:
crates/core/src/allocation.rs:
crates/core/src/assign.rs:
crates/core/src/fast.rs:
crates/core/src/model.rs:
crates/core/src/normal.rs:
crates/core/src/optimal.rs:
crates/core/src/priority.rs:
