/root/repo/target/debug/deps/pipeline-0c112b11a7e4c1b2.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-0c112b11a7e4c1b2: tests/pipeline.rs

tests/pipeline.rs:
