/root/repo/target/debug/deps/zero_alloc-870815ad32ff6a4b.d: crates/bench/tests/zero_alloc.rs

/root/repo/target/debug/deps/zero_alloc-870815ad32ff6a4b: crates/bench/tests/zero_alloc.rs

crates/bench/tests/zero_alloc.rs:
