/root/repo/target/debug/deps/pipeline-ec981405a90f9fa6.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-ec981405a90f9fa6.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
