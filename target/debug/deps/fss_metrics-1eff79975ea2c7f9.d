/root/repo/target/debug/deps/fss_metrics-1eff79975ea2c7f9.d: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/fss_metrics-1eff79975ea2c7f9: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/overhead.rs:
crates/metrics/src/report.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/switch.rs:
crates/metrics/src/timeseries.rs:
