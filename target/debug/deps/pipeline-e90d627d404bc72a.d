/root/repo/target/debug/deps/pipeline-e90d627d404bc72a.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-e90d627d404bc72a.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
