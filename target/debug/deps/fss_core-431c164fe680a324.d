/root/repo/target/debug/deps/fss_core-431c164fe680a324.d: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/assign.rs crates/core/src/fast.rs crates/core/src/model.rs crates/core/src/normal.rs crates/core/src/optimal.rs crates/core/src/priority.rs

/root/repo/target/debug/deps/libfss_core-431c164fe680a324.rlib: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/assign.rs crates/core/src/fast.rs crates/core/src/model.rs crates/core/src/normal.rs crates/core/src/optimal.rs crates/core/src/priority.rs

/root/repo/target/debug/deps/libfss_core-431c164fe680a324.rmeta: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/assign.rs crates/core/src/fast.rs crates/core/src/model.rs crates/core/src/normal.rs crates/core/src/optimal.rs crates/core/src/priority.rs

crates/core/src/lib.rs:
crates/core/src/allocation.rs:
crates/core/src/assign.rs:
crates/core/src/fast.rs:
crates/core/src/model.rs:
crates/core/src/normal.rs:
crates/core/src/optimal.rs:
crates/core/src/priority.rs:
