/root/repo/target/debug/deps/model-afa09dd9364efaf5.d: crates/bench/benches/model.rs Cargo.toml

/root/repo/target/debug/deps/libmodel-afa09dd9364efaf5.rmeta: crates/bench/benches/model.rs Cargo.toml

crates/bench/benches/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
