/root/repo/target/debug/deps/figures-2aa84d8d19fcb9aa.d: crates/experiments/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-2aa84d8d19fcb9aa.rmeta: crates/experiments/src/bin/figures.rs Cargo.toml

crates/experiments/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
