/root/repo/target/debug/deps/fss_overlay-0a51528bc4220810.d: crates/overlay/src/lib.rs crates/overlay/src/bandwidth.rs crates/overlay/src/builder.rs crates/overlay/src/churn.rs crates/overlay/src/error.rs crates/overlay/src/graph.rs crates/overlay/src/latency.rs Cargo.toml

/root/repo/target/debug/deps/libfss_overlay-0a51528bc4220810.rmeta: crates/overlay/src/lib.rs crates/overlay/src/bandwidth.rs crates/overlay/src/builder.rs crates/overlay/src/churn.rs crates/overlay/src/error.rs crates/overlay/src/graph.rs crates/overlay/src/latency.rs Cargo.toml

crates/overlay/src/lib.rs:
crates/overlay/src/bandwidth.rs:
crates/overlay/src/builder.rs:
crates/overlay/src/churn.rs:
crates/overlay/src/error.rs:
crates/overlay/src/graph.rs:
crates/overlay/src/latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
