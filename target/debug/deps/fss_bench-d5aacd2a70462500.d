/root/repo/target/debug/deps/fss_bench-d5aacd2a70462500.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fss_bench-d5aacd2a70462500: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
