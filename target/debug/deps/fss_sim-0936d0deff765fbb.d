/root/repo/target/debug/deps/fss_sim-0936d0deff765fbb.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/period.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libfss_sim-0936d0deff765fbb.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/period.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/period.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
