/root/repo/target/debug/deps/model-c67b06a04668e336.d: crates/bench/benches/model.rs

/root/repo/target/debug/deps/model-c67b06a04668e336: crates/bench/benches/model.rs

crates/bench/benches/model.rs:
