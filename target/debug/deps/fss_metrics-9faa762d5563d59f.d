/root/repo/target/debug/deps/fss_metrics-9faa762d5563d59f.d: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs Cargo.toml

/root/repo/target/debug/deps/libfss_metrics-9faa762d5563d59f.rmeta: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/overhead.rs:
crates/metrics/src/report.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/switch.rs:
crates/metrics/src/timeseries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
