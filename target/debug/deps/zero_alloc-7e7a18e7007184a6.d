/root/repo/target/debug/deps/zero_alloc-7e7a18e7007184a6.d: crates/bench/tests/zero_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libzero_alloc-7e7a18e7007184a6.rmeta: crates/bench/tests/zero_alloc.rs Cargo.toml

crates/bench/tests/zero_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
