/root/repo/target/debug/deps/fss_bench-411cbd69358dc13a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fss_bench-411cbd69358dc13a: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
