/root/repo/target/debug/deps/fss_bench-45f7740c38880619.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfss_bench-45f7740c38880619.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
