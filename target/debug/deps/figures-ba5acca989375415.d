/root/repo/target/debug/deps/figures-ba5acca989375415.d: crates/experiments/src/bin/figures.rs

/root/repo/target/debug/deps/figures-ba5acca989375415: crates/experiments/src/bin/figures.rs

crates/experiments/src/bin/figures.rs:
