/root/repo/target/debug/deps/fss_sim-097fd3ba9876c2aa.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/period.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libfss_sim-097fd3ba9876c2aa.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/period.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libfss_sim-097fd3ba9876c2aa.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/period.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/period.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
