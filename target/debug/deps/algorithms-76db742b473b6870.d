/root/repo/target/debug/deps/algorithms-76db742b473b6870.d: tests/algorithms.rs

/root/repo/target/debug/deps/algorithms-76db742b473b6870: tests/algorithms.rs

tests/algorithms.rs:
