/root/repo/target/debug/deps/fss_experiments-123a36a1240d51d6.d: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/sweeps.rs crates/experiments/src/figures/tracks.rs crates/experiments/src/runner.rs crates/experiments/src/scenario.rs crates/experiments/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfss_experiments-123a36a1240d51d6.rmeta: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/sweeps.rs crates/experiments/src/figures/tracks.rs crates/experiments/src/runner.rs crates/experiments/src/scenario.rs crates/experiments/src/sweep.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/figures/mod.rs:
crates/experiments/src/figures/sweeps.rs:
crates/experiments/src/figures/tracks.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/scenario.rs:
crates/experiments/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
