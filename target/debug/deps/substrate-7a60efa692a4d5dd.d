/root/repo/target/debug/deps/substrate-7a60efa692a4d5dd.d: crates/bench/benches/substrate.rs

/root/repo/target/debug/deps/substrate-7a60efa692a4d5dd: crates/bench/benches/substrate.rs

crates/bench/benches/substrate.rs:
