/root/repo/target/debug/deps/fss_sim-8eb951c9fd10ba4a.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/period.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/fss_sim-8eb951c9fd10ba4a: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/period.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/period.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
