/root/repo/target/debug/deps/fss_trace-d4d53461dd32ef0c.d: crates/trace/src/lib.rs crates/trace/src/catalog.rs crates/trace/src/error.rs crates/trace/src/generator.rs crates/trace/src/parser.rs crates/trace/src/record.rs crates/trace/src/speed.rs

/root/repo/target/debug/deps/libfss_trace-d4d53461dd32ef0c.rlib: crates/trace/src/lib.rs crates/trace/src/catalog.rs crates/trace/src/error.rs crates/trace/src/generator.rs crates/trace/src/parser.rs crates/trace/src/record.rs crates/trace/src/speed.rs

/root/repo/target/debug/deps/libfss_trace-d4d53461dd32ef0c.rmeta: crates/trace/src/lib.rs crates/trace/src/catalog.rs crates/trace/src/error.rs crates/trace/src/generator.rs crates/trace/src/parser.rs crates/trace/src/record.rs crates/trace/src/speed.rs

crates/trace/src/lib.rs:
crates/trace/src/catalog.rs:
crates/trace/src/error.rs:
crates/trace/src/generator.rs:
crates/trace/src/parser.rs:
crates/trace/src/record.rs:
crates/trace/src/speed.rs:
