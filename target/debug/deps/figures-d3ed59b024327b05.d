/root/repo/target/debug/deps/figures-d3ed59b024327b05.d: crates/experiments/src/bin/figures.rs

/root/repo/target/debug/deps/figures-d3ed59b024327b05: crates/experiments/src/bin/figures.rs

crates/experiments/src/bin/figures.rs:
