/root/repo/target/debug/deps/figures-c274c2e3ab9cb3dd.d: crates/experiments/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-c274c2e3ab9cb3dd.rmeta: crates/experiments/src/bin/figures.rs Cargo.toml

crates/experiments/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
