/root/repo/target/debug/deps/figures-fdc733ec4545b675.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/figures-fdc733ec4545b675: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
