/root/repo/target/debug/deps/scheduling-d5891914ac93717e.d: crates/bench/benches/scheduling.rs Cargo.toml

/root/repo/target/debug/deps/libscheduling-d5891914ac93717e.rmeta: crates/bench/benches/scheduling.rs Cargo.toml

crates/bench/benches/scheduling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
