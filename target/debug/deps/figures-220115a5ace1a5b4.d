/root/repo/target/debug/deps/figures-220115a5ace1a5b4.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-220115a5ace1a5b4.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
