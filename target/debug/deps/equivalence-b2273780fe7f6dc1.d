/root/repo/target/debug/deps/equivalence-b2273780fe7f6dc1.d: tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-b2273780fe7f6dc1: tests/equivalence.rs

tests/equivalence.rs:
