/root/repo/target/debug/deps/period_throughput-7074ac3d6ed13d4f.d: crates/bench/benches/period_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libperiod_throughput-7074ac3d6ed13d4f.rmeta: crates/bench/benches/period_throughput.rs Cargo.toml

crates/bench/benches/period_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
