/root/repo/target/debug/deps/fss_metrics-f29ed90c14ccd91d.d: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/libfss_metrics-f29ed90c14ccd91d.rlib: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/libfss_metrics-f29ed90c14ccd91d.rmeta: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/overhead.rs:
crates/metrics/src/report.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/switch.rs:
crates/metrics/src/timeseries.rs:
