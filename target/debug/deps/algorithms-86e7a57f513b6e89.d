/root/repo/target/debug/deps/algorithms-86e7a57f513b6e89.d: tests/algorithms.rs

/root/repo/target/debug/deps/algorithms-86e7a57f513b6e89: tests/algorithms.rs

tests/algorithms.rs:
