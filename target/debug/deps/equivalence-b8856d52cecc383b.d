/root/repo/target/debug/deps/equivalence-b8856d52cecc383b.d: tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-b8856d52cecc383b.rmeta: tests/equivalence.rs Cargo.toml

tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
