/root/repo/target/debug/deps/substrate-9203e143ab96164d.d: crates/bench/benches/substrate.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate-9203e143ab96164d.rmeta: crates/bench/benches/substrate.rs Cargo.toml

crates/bench/benches/substrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
