/root/repo/target/debug/deps/fss_metrics-c41ba4b2a04a318b.d: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs Cargo.toml

/root/repo/target/debug/deps/libfss_metrics-c41ba4b2a04a318b.rmeta: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/overhead.rs:
crates/metrics/src/report.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/switch.rs:
crates/metrics/src/timeseries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
