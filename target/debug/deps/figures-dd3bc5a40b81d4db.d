/root/repo/target/debug/deps/figures-dd3bc5a40b81d4db.d: crates/experiments/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-dd3bc5a40b81d4db.rmeta: crates/experiments/src/bin/figures.rs Cargo.toml

crates/experiments/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
