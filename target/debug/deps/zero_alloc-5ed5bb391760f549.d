/root/repo/target/debug/deps/zero_alloc-5ed5bb391760f549.d: crates/bench/tests/zero_alloc.rs

/root/repo/target/debug/deps/zero_alloc-5ed5bb391760f549: crates/bench/tests/zero_alloc.rs

crates/bench/tests/zero_alloc.rs:
