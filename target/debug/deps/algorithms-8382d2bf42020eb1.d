/root/repo/target/debug/deps/algorithms-8382d2bf42020eb1.d: tests/algorithms.rs Cargo.toml

/root/repo/target/debug/deps/libalgorithms-8382d2bf42020eb1.rmeta: tests/algorithms.rs Cargo.toml

tests/algorithms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
