/root/repo/target/debug/deps/fss_core-a8a57a4a0f191417.d: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/assign.rs crates/core/src/fast.rs crates/core/src/model.rs crates/core/src/normal.rs crates/core/src/optimal.rs crates/core/src/priority.rs

/root/repo/target/debug/deps/fss_core-a8a57a4a0f191417: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/assign.rs crates/core/src/fast.rs crates/core/src/model.rs crates/core/src/normal.rs crates/core/src/optimal.rs crates/core/src/priority.rs

crates/core/src/lib.rs:
crates/core/src/allocation.rs:
crates/core/src/assign.rs:
crates/core/src/fast.rs:
crates/core/src/model.rs:
crates/core/src/normal.rs:
crates/core/src/optimal.rs:
crates/core/src/priority.rs:
