/root/repo/target/debug/deps/fss_bench-5c5839e2aa8de58b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfss_bench-5c5839e2aa8de58b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfss_bench-5c5839e2aa8de58b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
