/root/repo/target/debug/deps/pipeline-2925903e1f9e90c1.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-2925903e1f9e90c1: tests/pipeline.rs

tests/pipeline.rs:
