/root/repo/target/debug/deps/fast_source_switching-009fe7df0f04543f.d: src/lib.rs

/root/repo/target/debug/deps/fast_source_switching-009fe7df0f04543f: src/lib.rs

src/lib.rs:
