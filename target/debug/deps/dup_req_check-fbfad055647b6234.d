/root/repo/target/debug/deps/dup_req_check-fbfad055647b6234.d: crates/gossip/tests/dup_req_check.rs

/root/repo/target/debug/deps/dup_req_check-fbfad055647b6234: crates/gossip/tests/dup_req_check.rs

crates/gossip/tests/dup_req_check.rs:
