/root/repo/target/debug/deps/figures-bada0448920ebb98.d: crates/experiments/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-bada0448920ebb98.rmeta: crates/experiments/src/bin/figures.rs Cargo.toml

crates/experiments/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
