/root/repo/target/debug/deps/algorithms-35f93d643ed38bba.d: tests/algorithms.rs

/root/repo/target/debug/deps/algorithms-35f93d643ed38bba: tests/algorithms.rs

tests/algorithms.rs:
