/root/repo/target/debug/deps/fss_gossip-efad400f61499bd4.d: crates/gossip/src/lib.rs crates/gossip/src/buffer.rs crates/gossip/src/buffermap.rs crates/gossip/src/config.rs crates/gossip/src/hasher.rs crates/gossip/src/membership.rs crates/gossip/src/peer.rs crates/gossip/src/playback.rs crates/gossip/src/scheduler.rs crates/gossip/src/scratch.rs crates/gossip/src/segment.rs crates/gossip/src/stats.rs crates/gossip/src/system.rs crates/gossip/src/transfer.rs

/root/repo/target/debug/deps/fss_gossip-efad400f61499bd4: crates/gossip/src/lib.rs crates/gossip/src/buffer.rs crates/gossip/src/buffermap.rs crates/gossip/src/config.rs crates/gossip/src/hasher.rs crates/gossip/src/membership.rs crates/gossip/src/peer.rs crates/gossip/src/playback.rs crates/gossip/src/scheduler.rs crates/gossip/src/scratch.rs crates/gossip/src/segment.rs crates/gossip/src/stats.rs crates/gossip/src/system.rs crates/gossip/src/transfer.rs

crates/gossip/src/lib.rs:
crates/gossip/src/buffer.rs:
crates/gossip/src/buffermap.rs:
crates/gossip/src/config.rs:
crates/gossip/src/hasher.rs:
crates/gossip/src/membership.rs:
crates/gossip/src/peer.rs:
crates/gossip/src/playback.rs:
crates/gossip/src/scheduler.rs:
crates/gossip/src/scratch.rs:
crates/gossip/src/segment.rs:
crates/gossip/src/stats.rs:
crates/gossip/src/system.rs:
crates/gossip/src/transfer.rs:
