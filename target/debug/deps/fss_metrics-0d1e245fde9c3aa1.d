/root/repo/target/debug/deps/fss_metrics-0d1e245fde9c3aa1.d: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/fss_metrics-0d1e245fde9c3aa1: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/overhead.rs:
crates/metrics/src/report.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/switch.rs:
crates/metrics/src/timeseries.rs:
