/root/repo/target/debug/deps/fss_trace-8b14017400b3f740.d: crates/trace/src/lib.rs crates/trace/src/catalog.rs crates/trace/src/error.rs crates/trace/src/generator.rs crates/trace/src/parser.rs crates/trace/src/record.rs crates/trace/src/speed.rs Cargo.toml

/root/repo/target/debug/deps/libfss_trace-8b14017400b3f740.rmeta: crates/trace/src/lib.rs crates/trace/src/catalog.rs crates/trace/src/error.rs crates/trace/src/generator.rs crates/trace/src/parser.rs crates/trace/src/record.rs crates/trace/src/speed.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/catalog.rs:
crates/trace/src/error.rs:
crates/trace/src/generator.rs:
crates/trace/src/parser.rs:
crates/trace/src/record.rs:
crates/trace/src/speed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
