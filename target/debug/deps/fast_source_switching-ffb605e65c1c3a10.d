/root/repo/target/debug/deps/fast_source_switching-ffb605e65c1c3a10.d: src/lib.rs

/root/repo/target/debug/deps/fast_source_switching-ffb605e65c1c3a10: src/lib.rs

src/lib.rs:
