/root/repo/target/debug/deps/fss_experiments-d2b2d85ca1436c41.d: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/sweeps.rs crates/experiments/src/figures/tracks.rs crates/experiments/src/runner.rs crates/experiments/src/scenario.rs crates/experiments/src/sweep.rs

/root/repo/target/debug/deps/fss_experiments-d2b2d85ca1436c41: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/sweeps.rs crates/experiments/src/figures/tracks.rs crates/experiments/src/runner.rs crates/experiments/src/scenario.rs crates/experiments/src/sweep.rs

crates/experiments/src/lib.rs:
crates/experiments/src/figures/mod.rs:
crates/experiments/src/figures/sweeps.rs:
crates/experiments/src/figures/tracks.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/scenario.rs:
crates/experiments/src/sweep.rs:
