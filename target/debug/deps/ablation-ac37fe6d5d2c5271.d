/root/repo/target/debug/deps/ablation-ac37fe6d5d2c5271.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-ac37fe6d5d2c5271.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
