/root/repo/target/debug/deps/fss_trace-ffe11cf1d4baf256.d: crates/trace/src/lib.rs crates/trace/src/catalog.rs crates/trace/src/error.rs crates/trace/src/generator.rs crates/trace/src/parser.rs crates/trace/src/record.rs crates/trace/src/speed.rs

/root/repo/target/debug/deps/fss_trace-ffe11cf1d4baf256: crates/trace/src/lib.rs crates/trace/src/catalog.rs crates/trace/src/error.rs crates/trace/src/generator.rs crates/trace/src/parser.rs crates/trace/src/record.rs crates/trace/src/speed.rs

crates/trace/src/lib.rs:
crates/trace/src/catalog.rs:
crates/trace/src/error.rs:
crates/trace/src/generator.rs:
crates/trace/src/parser.rs:
crates/trace/src/record.rs:
crates/trace/src/speed.rs:
