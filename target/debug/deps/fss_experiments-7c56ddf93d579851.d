/root/repo/target/debug/deps/fss_experiments-7c56ddf93d579851.d: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/sweeps.rs crates/experiments/src/figures/tracks.rs crates/experiments/src/runner.rs crates/experiments/src/scenario.rs crates/experiments/src/sweep.rs

/root/repo/target/debug/deps/libfss_experiments-7c56ddf93d579851.rlib: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/sweeps.rs crates/experiments/src/figures/tracks.rs crates/experiments/src/runner.rs crates/experiments/src/scenario.rs crates/experiments/src/sweep.rs

/root/repo/target/debug/deps/libfss_experiments-7c56ddf93d579851.rmeta: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/sweeps.rs crates/experiments/src/figures/tracks.rs crates/experiments/src/runner.rs crates/experiments/src/scenario.rs crates/experiments/src/sweep.rs

crates/experiments/src/lib.rs:
crates/experiments/src/figures/mod.rs:
crates/experiments/src/figures/sweeps.rs:
crates/experiments/src/figures/tracks.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/scenario.rs:
crates/experiments/src/sweep.rs:
