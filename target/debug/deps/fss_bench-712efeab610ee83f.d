/root/repo/target/debug/deps/fss_bench-712efeab610ee83f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fss_bench-712efeab610ee83f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
