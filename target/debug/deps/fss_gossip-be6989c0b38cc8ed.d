/root/repo/target/debug/deps/fss_gossip-be6989c0b38cc8ed.d: crates/gossip/src/lib.rs crates/gossip/src/buffer.rs crates/gossip/src/buffermap.rs crates/gossip/src/config.rs crates/gossip/src/hasher.rs crates/gossip/src/membership.rs crates/gossip/src/peer.rs crates/gossip/src/playback.rs crates/gossip/src/scheduler.rs crates/gossip/src/scratch.rs crates/gossip/src/segment.rs crates/gossip/src/stats.rs crates/gossip/src/system.rs crates/gossip/src/transfer.rs Cargo.toml

/root/repo/target/debug/deps/libfss_gossip-be6989c0b38cc8ed.rmeta: crates/gossip/src/lib.rs crates/gossip/src/buffer.rs crates/gossip/src/buffermap.rs crates/gossip/src/config.rs crates/gossip/src/hasher.rs crates/gossip/src/membership.rs crates/gossip/src/peer.rs crates/gossip/src/playback.rs crates/gossip/src/scheduler.rs crates/gossip/src/scratch.rs crates/gossip/src/segment.rs crates/gossip/src/stats.rs crates/gossip/src/system.rs crates/gossip/src/transfer.rs Cargo.toml

crates/gossip/src/lib.rs:
crates/gossip/src/buffer.rs:
crates/gossip/src/buffermap.rs:
crates/gossip/src/config.rs:
crates/gossip/src/hasher.rs:
crates/gossip/src/membership.rs:
crates/gossip/src/peer.rs:
crates/gossip/src/playback.rs:
crates/gossip/src/scheduler.rs:
crates/gossip/src/scratch.rs:
crates/gossip/src/segment.rs:
crates/gossip/src/stats.rs:
crates/gossip/src/system.rs:
crates/gossip/src/transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
