/root/repo/target/debug/deps/fast_source_switching-f1dc08b5ced7173a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfast_source_switching-f1dc08b5ced7173a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
