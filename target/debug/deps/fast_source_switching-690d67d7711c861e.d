/root/repo/target/debug/deps/fast_source_switching-690d67d7711c861e.d: src/lib.rs

/root/repo/target/debug/deps/libfast_source_switching-690d67d7711c861e.rlib: src/lib.rs

/root/repo/target/debug/deps/libfast_source_switching-690d67d7711c861e.rmeta: src/lib.rs

src/lib.rs:
