/root/repo/target/debug/deps/fss_overlay-7a19b7ebf4244c99.d: crates/overlay/src/lib.rs crates/overlay/src/bandwidth.rs crates/overlay/src/builder.rs crates/overlay/src/churn.rs crates/overlay/src/error.rs crates/overlay/src/graph.rs crates/overlay/src/latency.rs

/root/repo/target/debug/deps/libfss_overlay-7a19b7ebf4244c99.rlib: crates/overlay/src/lib.rs crates/overlay/src/bandwidth.rs crates/overlay/src/builder.rs crates/overlay/src/churn.rs crates/overlay/src/error.rs crates/overlay/src/graph.rs crates/overlay/src/latency.rs

/root/repo/target/debug/deps/libfss_overlay-7a19b7ebf4244c99.rmeta: crates/overlay/src/lib.rs crates/overlay/src/bandwidth.rs crates/overlay/src/builder.rs crates/overlay/src/churn.rs crates/overlay/src/error.rs crates/overlay/src/graph.rs crates/overlay/src/latency.rs

crates/overlay/src/lib.rs:
crates/overlay/src/bandwidth.rs:
crates/overlay/src/builder.rs:
crates/overlay/src/churn.rs:
crates/overlay/src/error.rs:
crates/overlay/src/graph.rs:
crates/overlay/src/latency.rs:
