/root/repo/target/debug/deps/fast_source_switching-46599f2ae7a59793.d: src/lib.rs

/root/repo/target/debug/deps/libfast_source_switching-46599f2ae7a59793.rlib: src/lib.rs

/root/repo/target/debug/deps/libfast_source_switching-46599f2ae7a59793.rmeta: src/lib.rs

src/lib.rs:
