/root/repo/target/debug/deps/pipeline-f9148fbe46b1b392.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-f9148fbe46b1b392: tests/pipeline.rs

tests/pipeline.rs:
