/root/repo/target/debug/deps/period_throughput-6241bb38e2d4ce57.d: crates/bench/benches/period_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libperiod_throughput-6241bb38e2d4ce57.rmeta: crates/bench/benches/period_throughput.rs Cargo.toml

crates/bench/benches/period_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
