/root/repo/target/debug/deps/fast_source_switching-daf81eb47dc296f0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfast_source_switching-daf81eb47dc296f0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
