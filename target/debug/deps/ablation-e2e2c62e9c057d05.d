/root/repo/target/debug/deps/ablation-e2e2c62e9c057d05.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-e2e2c62e9c057d05.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
