/root/repo/target/debug/deps/equivalence-982451b6e874e4a0.d: tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-982451b6e874e4a0: tests/equivalence.rs

tests/equivalence.rs:
