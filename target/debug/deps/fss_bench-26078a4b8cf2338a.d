/root/repo/target/debug/deps/fss_bench-26078a4b8cf2338a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfss_bench-26078a4b8cf2338a.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfss_bench-26078a4b8cf2338a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
