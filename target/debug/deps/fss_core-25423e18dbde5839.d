/root/repo/target/debug/deps/fss_core-25423e18dbde5839.d: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/assign.rs crates/core/src/fast.rs crates/core/src/model.rs crates/core/src/normal.rs crates/core/src/optimal.rs crates/core/src/priority.rs Cargo.toml

/root/repo/target/debug/deps/libfss_core-25423e18dbde5839.rmeta: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/assign.rs crates/core/src/fast.rs crates/core/src/model.rs crates/core/src/normal.rs crates/core/src/optimal.rs crates/core/src/priority.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/allocation.rs:
crates/core/src/assign.rs:
crates/core/src/fast.rs:
crates/core/src/model.rs:
crates/core/src/normal.rs:
crates/core/src/optimal.rs:
crates/core/src/priority.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
