/root/repo/target/debug/deps/fss_overlay-6fd2577d468511b3.d: crates/overlay/src/lib.rs crates/overlay/src/bandwidth.rs crates/overlay/src/builder.rs crates/overlay/src/churn.rs crates/overlay/src/error.rs crates/overlay/src/graph.rs crates/overlay/src/latency.rs

/root/repo/target/debug/deps/fss_overlay-6fd2577d468511b3: crates/overlay/src/lib.rs crates/overlay/src/bandwidth.rs crates/overlay/src/builder.rs crates/overlay/src/churn.rs crates/overlay/src/error.rs crates/overlay/src/graph.rs crates/overlay/src/latency.rs

crates/overlay/src/lib.rs:
crates/overlay/src/bandwidth.rs:
crates/overlay/src/builder.rs:
crates/overlay/src/churn.rs:
crates/overlay/src/error.rs:
crates/overlay/src/graph.rs:
crates/overlay/src/latency.rs:
