/root/repo/target/debug/deps/fss_overlay-9c44c30b8a24bf3c.d: crates/overlay/src/lib.rs crates/overlay/src/bandwidth.rs crates/overlay/src/builder.rs crates/overlay/src/churn.rs crates/overlay/src/error.rs crates/overlay/src/graph.rs crates/overlay/src/latency.rs

/root/repo/target/debug/deps/libfss_overlay-9c44c30b8a24bf3c.rlib: crates/overlay/src/lib.rs crates/overlay/src/bandwidth.rs crates/overlay/src/builder.rs crates/overlay/src/churn.rs crates/overlay/src/error.rs crates/overlay/src/graph.rs crates/overlay/src/latency.rs

/root/repo/target/debug/deps/libfss_overlay-9c44c30b8a24bf3c.rmeta: crates/overlay/src/lib.rs crates/overlay/src/bandwidth.rs crates/overlay/src/builder.rs crates/overlay/src/churn.rs crates/overlay/src/error.rs crates/overlay/src/graph.rs crates/overlay/src/latency.rs

crates/overlay/src/lib.rs:
crates/overlay/src/bandwidth.rs:
crates/overlay/src/builder.rs:
crates/overlay/src/churn.rs:
crates/overlay/src/error.rs:
crates/overlay/src/graph.rs:
crates/overlay/src/latency.rs:
