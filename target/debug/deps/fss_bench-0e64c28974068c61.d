/root/repo/target/debug/deps/fss_bench-0e64c28974068c61.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fss_bench-0e64c28974068c61: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
