/root/repo/target/debug/deps/scheduling-1528615bd14d232e.d: crates/bench/benches/scheduling.rs

/root/repo/target/debug/deps/scheduling-1528615bd14d232e: crates/bench/benches/scheduling.rs

crates/bench/benches/scheduling.rs:
