/root/repo/target/debug/deps/period_throughput-ec05ebebee8ea0d5.d: crates/bench/benches/period_throughput.rs

/root/repo/target/debug/deps/period_throughput-ec05ebebee8ea0d5: crates/bench/benches/period_throughput.rs

crates/bench/benches/period_throughput.rs:
