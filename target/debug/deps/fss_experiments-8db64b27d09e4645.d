/root/repo/target/debug/deps/fss_experiments-8db64b27d09e4645.d: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/sweeps.rs crates/experiments/src/figures/tracks.rs crates/experiments/src/runner.rs crates/experiments/src/scenario.rs crates/experiments/src/sweep.rs

/root/repo/target/debug/deps/libfss_experiments-8db64b27d09e4645.rlib: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/sweeps.rs crates/experiments/src/figures/tracks.rs crates/experiments/src/runner.rs crates/experiments/src/scenario.rs crates/experiments/src/sweep.rs

/root/repo/target/debug/deps/libfss_experiments-8db64b27d09e4645.rmeta: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/sweeps.rs crates/experiments/src/figures/tracks.rs crates/experiments/src/runner.rs crates/experiments/src/scenario.rs crates/experiments/src/sweep.rs

crates/experiments/src/lib.rs:
crates/experiments/src/figures/mod.rs:
crates/experiments/src/figures/sweeps.rs:
crates/experiments/src/figures/tracks.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/scenario.rs:
crates/experiments/src/sweep.rs:
