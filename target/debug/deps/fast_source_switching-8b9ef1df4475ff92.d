/root/repo/target/debug/deps/fast_source_switching-8b9ef1df4475ff92.d: src/lib.rs

/root/repo/target/debug/deps/libfast_source_switching-8b9ef1df4475ff92.rlib: src/lib.rs

/root/repo/target/debug/deps/libfast_source_switching-8b9ef1df4475ff92.rmeta: src/lib.rs

src/lib.rs:
