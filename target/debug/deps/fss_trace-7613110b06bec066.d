/root/repo/target/debug/deps/fss_trace-7613110b06bec066.d: crates/trace/src/lib.rs crates/trace/src/catalog.rs crates/trace/src/error.rs crates/trace/src/generator.rs crates/trace/src/parser.rs crates/trace/src/record.rs crates/trace/src/speed.rs

/root/repo/target/debug/deps/libfss_trace-7613110b06bec066.rlib: crates/trace/src/lib.rs crates/trace/src/catalog.rs crates/trace/src/error.rs crates/trace/src/generator.rs crates/trace/src/parser.rs crates/trace/src/record.rs crates/trace/src/speed.rs

/root/repo/target/debug/deps/libfss_trace-7613110b06bec066.rmeta: crates/trace/src/lib.rs crates/trace/src/catalog.rs crates/trace/src/error.rs crates/trace/src/generator.rs crates/trace/src/parser.rs crates/trace/src/record.rs crates/trace/src/speed.rs

crates/trace/src/lib.rs:
crates/trace/src/catalog.rs:
crates/trace/src/error.rs:
crates/trace/src/generator.rs:
crates/trace/src/parser.rs:
crates/trace/src/record.rs:
crates/trace/src/speed.rs:
