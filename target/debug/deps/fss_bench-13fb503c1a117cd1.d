/root/repo/target/debug/deps/fss_bench-13fb503c1a117cd1.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfss_bench-13fb503c1a117cd1.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
