/root/repo/target/debug/deps/fss_metrics-88dac38ba53af865.d: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/libfss_metrics-88dac38ba53af865.rlib: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/libfss_metrics-88dac38ba53af865.rmeta: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/overhead.rs:
crates/metrics/src/report.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/switch.rs:
crates/metrics/src/timeseries.rs:
