/root/repo/target/debug/deps/figures-519fe366fddb388a.d: crates/experiments/src/bin/figures.rs

/root/repo/target/debug/deps/figures-519fe366fddb388a: crates/experiments/src/bin/figures.rs

crates/experiments/src/bin/figures.rs:
