/root/repo/target/debug/deps/figures-ae33df2fddacacfd.d: crates/experiments/src/bin/figures.rs

/root/repo/target/debug/deps/figures-ae33df2fddacacfd: crates/experiments/src/bin/figures.rs

crates/experiments/src/bin/figures.rs:
