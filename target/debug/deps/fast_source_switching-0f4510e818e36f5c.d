/root/repo/target/debug/deps/fast_source_switching-0f4510e818e36f5c.d: src/lib.rs

/root/repo/target/debug/deps/fast_source_switching-0f4510e818e36f5c: src/lib.rs

src/lib.rs:
