/root/repo/target/debug/examples/scheduling_order-f75792cff9e14605.d: examples/scheduling_order.rs Cargo.toml

/root/repo/target/debug/examples/libscheduling_order-f75792cff9e14605.rmeta: examples/scheduling_order.rs Cargo.toml

examples/scheduling_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
