/root/repo/target/debug/examples/video_conference-8601d9ff3fb135c0.d: examples/video_conference.rs Cargo.toml

/root/repo/target/debug/examples/libvideo_conference-8601d9ff3fb135c0.rmeta: examples/video_conference.rs Cargo.toml

examples/video_conference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
