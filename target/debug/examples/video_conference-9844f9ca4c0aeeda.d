/root/repo/target/debug/examples/video_conference-9844f9ca4c0aeeda.d: examples/video_conference.rs

/root/repo/target/debug/examples/video_conference-9844f9ca4c0aeeda: examples/video_conference.rs

examples/video_conference.rs:
