/root/repo/target/debug/examples/distance_learning_churn-bd45e690dc6d8ba6.d: examples/distance_learning_churn.rs Cargo.toml

/root/repo/target/debug/examples/libdistance_learning_churn-bd45e690dc6d8ba6.rmeta: examples/distance_learning_churn.rs Cargo.toml

examples/distance_learning_churn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
