/root/repo/target/debug/examples/distance_learning_churn-487c3836b2a4fb49.d: examples/distance_learning_churn.rs

/root/repo/target/debug/examples/distance_learning_churn-487c3836b2a4fb49: examples/distance_learning_churn.rs

examples/distance_learning_churn.rs:
