/root/repo/target/debug/examples/quickstart-aa7e8249362cfdfa.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-aa7e8249362cfdfa: examples/quickstart.rs

examples/quickstart.rs:
