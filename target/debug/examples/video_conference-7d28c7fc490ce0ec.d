/root/repo/target/debug/examples/video_conference-7d28c7fc490ce0ec.d: examples/video_conference.rs

/root/repo/target/debug/examples/video_conference-7d28c7fc490ce0ec: examples/video_conference.rs

examples/video_conference.rs:
