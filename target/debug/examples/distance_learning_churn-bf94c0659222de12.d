/root/repo/target/debug/examples/distance_learning_churn-bf94c0659222de12.d: examples/distance_learning_churn.rs Cargo.toml

/root/repo/target/debug/examples/libdistance_learning_churn-bf94c0659222de12.rmeta: examples/distance_learning_churn.rs Cargo.toml

examples/distance_learning_churn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
