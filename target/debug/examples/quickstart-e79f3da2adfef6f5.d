/root/repo/target/debug/examples/quickstart-e79f3da2adfef6f5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e79f3da2adfef6f5: examples/quickstart.rs

examples/quickstart.rs:
