/root/repo/target/debug/examples/distance_learning_churn-283f9c9e8e3f5f3d.d: examples/distance_learning_churn.rs

/root/repo/target/debug/examples/distance_learning_churn-283f9c9e8e3f5f3d: examples/distance_learning_churn.rs

examples/distance_learning_churn.rs:
