/root/repo/target/debug/examples/scheduling_order-3726e6f3d80f197e.d: examples/scheduling_order.rs

/root/repo/target/debug/examples/scheduling_order-3726e6f3d80f197e: examples/scheduling_order.rs

examples/scheduling_order.rs:
