/root/repo/target/debug/examples/scheduling_order-8677cb67b91be54c.d: examples/scheduling_order.rs

/root/repo/target/debug/examples/scheduling_order-8677cb67b91be54c: examples/scheduling_order.rs

examples/scheduling_order.rs:
