/root/repo/target/debug/examples/video_conference-b358727bcac3e43b.d: examples/video_conference.rs

/root/repo/target/debug/examples/video_conference-b358727bcac3e43b: examples/video_conference.rs

examples/video_conference.rs:
