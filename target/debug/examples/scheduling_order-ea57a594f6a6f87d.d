/root/repo/target/debug/examples/scheduling_order-ea57a594f6a6f87d.d: examples/scheduling_order.rs Cargo.toml

/root/repo/target/debug/examples/libscheduling_order-ea57a594f6a6f87d.rmeta: examples/scheduling_order.rs Cargo.toml

examples/scheduling_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
