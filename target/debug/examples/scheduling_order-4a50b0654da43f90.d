/root/repo/target/debug/examples/scheduling_order-4a50b0654da43f90.d: examples/scheduling_order.rs

/root/repo/target/debug/examples/scheduling_order-4a50b0654da43f90: examples/scheduling_order.rs

examples/scheduling_order.rs:
