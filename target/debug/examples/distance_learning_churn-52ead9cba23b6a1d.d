/root/repo/target/debug/examples/distance_learning_churn-52ead9cba23b6a1d.d: examples/distance_learning_churn.rs

/root/repo/target/debug/examples/distance_learning_churn-52ead9cba23b6a1d: examples/distance_learning_churn.rs

examples/distance_learning_churn.rs:
