/root/repo/target/debug/examples/quickstart-85569c30630e8c9a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-85569c30630e8c9a: examples/quickstart.rs

examples/quickstart.rs:
