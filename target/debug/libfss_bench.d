/root/repo/target/debug/libfss_bench.rlib: /root/repo/crates/bench/src/lib.rs
