/root/repo/target/release/libfss_bench.rlib: /root/repo/crates/bench/src/lib.rs
