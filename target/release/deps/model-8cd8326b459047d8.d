/root/repo/target/release/deps/model-8cd8326b459047d8.d: crates/bench/benches/model.rs

/root/repo/target/release/deps/model-8cd8326b459047d8: crates/bench/benches/model.rs

crates/bench/benches/model.rs:
