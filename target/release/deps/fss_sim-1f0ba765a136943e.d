/root/repo/target/release/deps/fss_sim-1f0ba765a136943e.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/period.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/fss_sim-1f0ba765a136943e: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/period.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/period.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
