/root/repo/target/release/deps/fss_bench-f35506ec874e5aa4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfss_bench-f35506ec874e5aa4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfss_bench-f35506ec874e5aa4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
