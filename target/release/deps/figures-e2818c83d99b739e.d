/root/repo/target/release/deps/figures-e2818c83d99b739e.d: crates/bench/benches/figures.rs

/root/repo/target/release/deps/figures-e2818c83d99b739e: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
