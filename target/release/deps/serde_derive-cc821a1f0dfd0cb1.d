/root/repo/target/release/deps/serde_derive-cc821a1f0dfd0cb1.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-cc821a1f0dfd0cb1: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
