/root/repo/target/release/deps/fast_source_switching-e2a74ac5572c4ff5.d: src/lib.rs

/root/repo/target/release/deps/libfast_source_switching-e2a74ac5572c4ff5.rlib: src/lib.rs

/root/repo/target/release/deps/libfast_source_switching-e2a74ac5572c4ff5.rmeta: src/lib.rs

src/lib.rs:
