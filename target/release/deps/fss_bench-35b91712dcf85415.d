/root/repo/target/release/deps/fss_bench-35b91712dcf85415.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/fss_bench-35b91712dcf85415: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
