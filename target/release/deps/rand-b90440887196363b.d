/root/repo/target/release/deps/rand-b90440887196363b.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-b90440887196363b.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-b90440887196363b.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
