/root/repo/target/release/deps/fss_trace-223f57173b8dcd5e.d: crates/trace/src/lib.rs crates/trace/src/catalog.rs crates/trace/src/error.rs crates/trace/src/generator.rs crates/trace/src/parser.rs crates/trace/src/record.rs crates/trace/src/speed.rs

/root/repo/target/release/deps/fss_trace-223f57173b8dcd5e: crates/trace/src/lib.rs crates/trace/src/catalog.rs crates/trace/src/error.rs crates/trace/src/generator.rs crates/trace/src/parser.rs crates/trace/src/record.rs crates/trace/src/speed.rs

crates/trace/src/lib.rs:
crates/trace/src/catalog.rs:
crates/trace/src/error.rs:
crates/trace/src/generator.rs:
crates/trace/src/parser.rs:
crates/trace/src/record.rs:
crates/trace/src/speed.rs:
