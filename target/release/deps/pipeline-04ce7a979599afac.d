/root/repo/target/release/deps/pipeline-04ce7a979599afac.d: tests/pipeline.rs

/root/repo/target/release/deps/pipeline-04ce7a979599afac: tests/pipeline.rs

tests/pipeline.rs:
