/root/repo/target/release/deps/fast_source_switching-20ad63136ed1ecad.d: src/lib.rs

/root/repo/target/release/deps/fast_source_switching-20ad63136ed1ecad: src/lib.rs

src/lib.rs:
