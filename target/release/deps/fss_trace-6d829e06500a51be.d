/root/repo/target/release/deps/fss_trace-6d829e06500a51be.d: crates/trace/src/lib.rs crates/trace/src/catalog.rs crates/trace/src/error.rs crates/trace/src/generator.rs crates/trace/src/parser.rs crates/trace/src/record.rs crates/trace/src/speed.rs

/root/repo/target/release/deps/libfss_trace-6d829e06500a51be.rlib: crates/trace/src/lib.rs crates/trace/src/catalog.rs crates/trace/src/error.rs crates/trace/src/generator.rs crates/trace/src/parser.rs crates/trace/src/record.rs crates/trace/src/speed.rs

/root/repo/target/release/deps/libfss_trace-6d829e06500a51be.rmeta: crates/trace/src/lib.rs crates/trace/src/catalog.rs crates/trace/src/error.rs crates/trace/src/generator.rs crates/trace/src/parser.rs crates/trace/src/record.rs crates/trace/src/speed.rs

crates/trace/src/lib.rs:
crates/trace/src/catalog.rs:
crates/trace/src/error.rs:
crates/trace/src/generator.rs:
crates/trace/src/parser.rs:
crates/trace/src/record.rs:
crates/trace/src/speed.rs:
