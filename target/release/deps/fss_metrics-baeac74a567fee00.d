/root/repo/target/release/deps/fss_metrics-baeac74a567fee00.d: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

/root/repo/target/release/deps/fss_metrics-baeac74a567fee00: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/overhead.rs:
crates/metrics/src/report.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/switch.rs:
crates/metrics/src/timeseries.rs:
