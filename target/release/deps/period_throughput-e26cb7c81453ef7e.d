/root/repo/target/release/deps/period_throughput-e26cb7c81453ef7e.d: crates/bench/benches/period_throughput.rs

/root/repo/target/release/deps/period_throughput-e26cb7c81453ef7e: crates/bench/benches/period_throughput.rs

crates/bench/benches/period_throughput.rs:
