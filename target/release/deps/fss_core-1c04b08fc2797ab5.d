/root/repo/target/release/deps/fss_core-1c04b08fc2797ab5.d: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/assign.rs crates/core/src/fast.rs crates/core/src/model.rs crates/core/src/normal.rs crates/core/src/optimal.rs crates/core/src/priority.rs

/root/repo/target/release/deps/fss_core-1c04b08fc2797ab5: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/assign.rs crates/core/src/fast.rs crates/core/src/model.rs crates/core/src/normal.rs crates/core/src/optimal.rs crates/core/src/priority.rs

crates/core/src/lib.rs:
crates/core/src/allocation.rs:
crates/core/src/assign.rs:
crates/core/src/fast.rs:
crates/core/src/model.rs:
crates/core/src/normal.rs:
crates/core/src/optimal.rs:
crates/core/src/priority.rs:
