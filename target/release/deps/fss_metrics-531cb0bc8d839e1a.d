/root/repo/target/release/deps/fss_metrics-531cb0bc8d839e1a.d: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

/root/repo/target/release/deps/libfss_metrics-531cb0bc8d839e1a.rlib: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

/root/repo/target/release/deps/libfss_metrics-531cb0bc8d839e1a.rmeta: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/overhead.rs:
crates/metrics/src/report.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/switch.rs:
crates/metrics/src/timeseries.rs:
