/root/repo/target/release/deps/bytes-95563ee22a75a774.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/bytes-95563ee22a75a774: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
