/root/repo/target/release/deps/crossbeam-c3e9a8d23a6a222e.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/crossbeam-c3e9a8d23a6a222e: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
