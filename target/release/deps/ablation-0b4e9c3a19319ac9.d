/root/repo/target/release/deps/ablation-0b4e9c3a19319ac9.d: crates/bench/benches/ablation.rs

/root/repo/target/release/deps/ablation-0b4e9c3a19319ac9: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
