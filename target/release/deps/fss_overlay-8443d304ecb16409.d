/root/repo/target/release/deps/fss_overlay-8443d304ecb16409.d: crates/overlay/src/lib.rs crates/overlay/src/bandwidth.rs crates/overlay/src/builder.rs crates/overlay/src/churn.rs crates/overlay/src/error.rs crates/overlay/src/graph.rs crates/overlay/src/latency.rs

/root/repo/target/release/deps/fss_overlay-8443d304ecb16409: crates/overlay/src/lib.rs crates/overlay/src/bandwidth.rs crates/overlay/src/builder.rs crates/overlay/src/churn.rs crates/overlay/src/error.rs crates/overlay/src/graph.rs crates/overlay/src/latency.rs

crates/overlay/src/lib.rs:
crates/overlay/src/bandwidth.rs:
crates/overlay/src/builder.rs:
crates/overlay/src/churn.rs:
crates/overlay/src/error.rs:
crates/overlay/src/graph.rs:
crates/overlay/src/latency.rs:
