/root/repo/target/release/deps/fss_experiments-e298e9d77f71e180.d: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/sweeps.rs crates/experiments/src/figures/tracks.rs crates/experiments/src/runner.rs crates/experiments/src/scenario.rs crates/experiments/src/sweep.rs

/root/repo/target/release/deps/fss_experiments-e298e9d77f71e180: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/sweeps.rs crates/experiments/src/figures/tracks.rs crates/experiments/src/runner.rs crates/experiments/src/scenario.rs crates/experiments/src/sweep.rs

crates/experiments/src/lib.rs:
crates/experiments/src/figures/mod.rs:
crates/experiments/src/figures/sweeps.rs:
crates/experiments/src/figures/tracks.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/scenario.rs:
crates/experiments/src/sweep.rs:
