/root/repo/target/release/deps/fss_sim-2e32c9282aa5d2d3.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/period.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libfss_sim-2e32c9282aa5d2d3.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/period.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libfss_sim-2e32c9282aa5d2d3.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/event.rs crates/sim/src/period.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/event.rs:
crates/sim/src/period.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
