/root/repo/target/release/deps/rand-a201c86f7b3d9616.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-a201c86f7b3d9616: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
