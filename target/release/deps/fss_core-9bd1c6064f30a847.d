/root/repo/target/release/deps/fss_core-9bd1c6064f30a847.d: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/assign.rs crates/core/src/fast.rs crates/core/src/model.rs crates/core/src/normal.rs crates/core/src/optimal.rs crates/core/src/priority.rs

/root/repo/target/release/deps/libfss_core-9bd1c6064f30a847.rlib: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/assign.rs crates/core/src/fast.rs crates/core/src/model.rs crates/core/src/normal.rs crates/core/src/optimal.rs crates/core/src/priority.rs

/root/repo/target/release/deps/libfss_core-9bd1c6064f30a847.rmeta: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/assign.rs crates/core/src/fast.rs crates/core/src/model.rs crates/core/src/normal.rs crates/core/src/optimal.rs crates/core/src/priority.rs

crates/core/src/lib.rs:
crates/core/src/allocation.rs:
crates/core/src/assign.rs:
crates/core/src/fast.rs:
crates/core/src/model.rs:
crates/core/src/normal.rs:
crates/core/src/optimal.rs:
crates/core/src/priority.rs:
