/root/repo/target/release/deps/scheduling-44cbbefc3a0ea2cd.d: crates/bench/benches/scheduling.rs

/root/repo/target/release/deps/scheduling-44cbbefc3a0ea2cd: crates/bench/benches/scheduling.rs

crates/bench/benches/scheduling.rs:
