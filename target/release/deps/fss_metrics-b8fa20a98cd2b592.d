/root/repo/target/release/deps/fss_metrics-b8fa20a98cd2b592.d: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

/root/repo/target/release/deps/libfss_metrics-b8fa20a98cd2b592.rlib: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

/root/repo/target/release/deps/libfss_metrics-b8fa20a98cd2b592.rmeta: crates/metrics/src/lib.rs crates/metrics/src/overhead.rs crates/metrics/src/report.rs crates/metrics/src/summary.rs crates/metrics/src/switch.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/overhead.rs:
crates/metrics/src/report.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/switch.rs:
crates/metrics/src/timeseries.rs:
