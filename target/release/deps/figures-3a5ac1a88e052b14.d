/root/repo/target/release/deps/figures-3a5ac1a88e052b14.d: crates/experiments/src/bin/figures.rs

/root/repo/target/release/deps/figures-3a5ac1a88e052b14: crates/experiments/src/bin/figures.rs

crates/experiments/src/bin/figures.rs:
