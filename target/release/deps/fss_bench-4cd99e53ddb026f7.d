/root/repo/target/release/deps/fss_bench-4cd99e53ddb026f7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfss_bench-4cd99e53ddb026f7.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfss_bench-4cd99e53ddb026f7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
