/root/repo/target/release/deps/zero_alloc-e1a96ec8a092ffdb.d: crates/bench/tests/zero_alloc.rs

/root/repo/target/release/deps/zero_alloc-e1a96ec8a092ffdb: crates/bench/tests/zero_alloc.rs

crates/bench/tests/zero_alloc.rs:
