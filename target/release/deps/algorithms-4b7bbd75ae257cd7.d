/root/repo/target/release/deps/algorithms-4b7bbd75ae257cd7.d: tests/algorithms.rs

/root/repo/target/release/deps/algorithms-4b7bbd75ae257cd7: tests/algorithms.rs

tests/algorithms.rs:
