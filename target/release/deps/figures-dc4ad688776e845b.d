/root/repo/target/release/deps/figures-dc4ad688776e845b.d: crates/experiments/src/bin/figures.rs

/root/repo/target/release/deps/figures-dc4ad688776e845b: crates/experiments/src/bin/figures.rs

crates/experiments/src/bin/figures.rs:
