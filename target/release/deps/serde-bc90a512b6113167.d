/root/repo/target/release/deps/serde-bc90a512b6113167.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/serde-bc90a512b6113167: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
