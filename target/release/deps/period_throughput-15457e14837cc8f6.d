/root/repo/target/release/deps/period_throughput-15457e14837cc8f6.d: crates/bench/benches/period_throughput.rs

/root/repo/target/release/deps/period_throughput-15457e14837cc8f6: crates/bench/benches/period_throughput.rs

crates/bench/benches/period_throughput.rs:
