/root/repo/target/release/deps/substrate-aaee2f96ad243cab.d: crates/bench/benches/substrate.rs

/root/repo/target/release/deps/substrate-aaee2f96ad243cab: crates/bench/benches/substrate.rs

crates/bench/benches/substrate.rs:
