/root/repo/target/release/deps/fss_experiments-94f1bda9ad27a315.d: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/sweeps.rs crates/experiments/src/figures/tracks.rs crates/experiments/src/runner.rs crates/experiments/src/scenario.rs crates/experiments/src/sweep.rs

/root/repo/target/release/deps/libfss_experiments-94f1bda9ad27a315.rlib: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/sweeps.rs crates/experiments/src/figures/tracks.rs crates/experiments/src/runner.rs crates/experiments/src/scenario.rs crates/experiments/src/sweep.rs

/root/repo/target/release/deps/libfss_experiments-94f1bda9ad27a315.rmeta: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/sweeps.rs crates/experiments/src/figures/tracks.rs crates/experiments/src/runner.rs crates/experiments/src/scenario.rs crates/experiments/src/sweep.rs

crates/experiments/src/lib.rs:
crates/experiments/src/figures/mod.rs:
crates/experiments/src/figures/sweeps.rs:
crates/experiments/src/figures/tracks.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/scenario.rs:
crates/experiments/src/sweep.rs:
