/root/repo/target/release/examples/video_conference-033edb962b1977b5.d: examples/video_conference.rs

/root/repo/target/release/examples/video_conference-033edb962b1977b5: examples/video_conference.rs

examples/video_conference.rs:
