/root/repo/target/release/examples/distance_learning_churn-65a29032d17f6ba5.d: examples/distance_learning_churn.rs

/root/repo/target/release/examples/distance_learning_churn-65a29032d17f6ba5: examples/distance_learning_churn.rs

examples/distance_learning_churn.rs:
