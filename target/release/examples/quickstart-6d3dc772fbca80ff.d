/root/repo/target/release/examples/quickstart-6d3dc772fbca80ff.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-6d3dc772fbca80ff: examples/quickstart.rs

examples/quickstart.rs:
