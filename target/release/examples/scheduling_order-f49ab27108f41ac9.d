/root/repo/target/release/examples/scheduling_order-f49ab27108f41ac9.d: examples/scheduling_order.rs

/root/repo/target/release/examples/scheduling_order-f49ab27108f41ac9: examples/scheduling_order.rs

examples/scheduling_order.rs:
