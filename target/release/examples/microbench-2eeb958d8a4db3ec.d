/root/repo/target/release/examples/microbench-2eeb958d8a4db3ec.d: crates/bench/examples/microbench.rs

/root/repo/target/release/examples/microbench-2eeb958d8a4db3ec: crates/bench/examples/microbench.rs

crates/bench/examples/microbench.rs:
