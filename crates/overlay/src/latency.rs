//! Pairwise latency model.
//!
//! The paper uses the trace ping times as its only latency information.  We
//! model the one-way latency between two overlay neighbours as half the sum
//! of their measured ping RTT halves — i.e. each peer contributes half of its
//! own access RTT — which is the standard "last-mile dominates" approximation
//! for peer-to-peer overlays of that era.

use crate::graph::PeerId;
use serde::{Deserialize, Serialize};

/// Stores per-peer access delay and answers pairwise latency queries.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// One-way access delay per peer in milliseconds (half the measured ping).
    access_ms: Vec<f64>,
}

impl LatencyModel {
    /// Builds the model from per-peer ping RTTs (milliseconds), indexed by
    /// [`PeerId`].
    pub fn from_pings(pings_ms: &[f64]) -> Self {
        LatencyModel {
            access_ms: pings_ms.iter().map(|p| (p / 2.0).max(0.0)).collect(),
        }
    }

    /// Number of peers known to the model.
    pub fn len(&self) -> usize {
        self.access_ms.len()
    }

    /// True when the model holds no peers.
    pub fn is_empty(&self) -> bool {
        self.access_ms.is_empty()
    }

    /// Registers a newly joined peer and returns its index (== its
    /// [`PeerId`] if callers register peers in id order, which the builder and
    /// churn model do).
    pub fn push_peer(&mut self, ping_ms: f64) -> usize {
        self.access_ms.push((ping_ms / 2.0).max(0.0));
        self.access_ms.len() - 1
    }

    /// One-way access delay of a peer in milliseconds (0 for unknown peers).
    pub fn access_delay_ms(&self, peer: PeerId) -> f64 {
        self.access_ms.get(peer as usize).copied().unwrap_or(0.0)
    }

    /// One-way latency between two peers in milliseconds.
    pub fn one_way_ms(&self, a: PeerId, b: PeerId) -> f64 {
        self.access_delay_ms(a) + self.access_delay_ms(b)
    }

    /// Round-trip latency between two peers in milliseconds.
    pub fn round_trip_ms(&self, a: PeerId, b: PeerId) -> f64 {
        2.0 * self.one_way_ms(a, b)
    }

    /// Largest one-way access delay over all peers (milliseconds; 0 when
    /// empty).  The network model sizes its in-flight horizon from this.
    pub fn max_access_ms(&self) -> f64 {
        self.access_ms.iter().copied().fold(0.0, f64::max)
    }

    /// Mean one-way access delay over all peers (milliseconds).
    pub fn mean_access_ms(&self) -> f64 {
        if self.access_ms.is_empty() {
            0.0
        } else {
            self.access_ms.iter().sum::<f64>() / self.access_ms.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_from_pings() {
        let m = LatencyModel::from_pings(&[100.0, 50.0, 0.0]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.access_delay_ms(0), 50.0);
        assert_eq!(m.access_delay_ms(1), 25.0);
        assert_eq!(m.access_delay_ms(2), 0.0);
    }

    #[test]
    fn pairwise_latency_is_symmetric() {
        let m = LatencyModel::from_pings(&[100.0, 60.0]);
        assert_eq!(m.one_way_ms(0, 1), m.one_way_ms(1, 0));
        assert_eq!(m.one_way_ms(0, 1), 80.0);
        assert_eq!(m.round_trip_ms(0, 1), 160.0);
    }

    #[test]
    fn unknown_peers_have_zero_delay() {
        let m = LatencyModel::from_pings(&[40.0]);
        assert_eq!(m.access_delay_ms(9), 0.0);
        assert_eq!(m.one_way_ms(0, 9), 20.0);
    }

    #[test]
    fn negative_pings_clamp_to_zero() {
        let m = LatencyModel::from_pings(&[-10.0]);
        assert_eq!(m.access_delay_ms(0), 0.0);
    }

    #[test]
    fn push_peer_extends_the_model() {
        let mut m = LatencyModel::from_pings(&[10.0]);
        let idx = m.push_peer(30.0);
        assert_eq!(idx, 1);
        assert_eq!(m.access_delay_ms(1), 15.0);
        assert!((m.mean_access_ms() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_model_mean_is_zero() {
        assert_eq!(LatencyModel::default().mean_access_ms(), 0.0);
        assert!(LatencyModel::default().is_empty());
    }

    #[test]
    fn self_links_cost_twice_the_access_delay() {
        // A "self link" still traverses the peer's access twice (out and
        // back in) under the last-mile model; it is never free unless the
        // peer's own access is.
        let m = LatencyModel::from_pings(&[100.0, 0.0]);
        assert_eq!(m.one_way_ms(0, 0), 100.0);
        assert_eq!(m.round_trip_ms(0, 0), 200.0);
        assert_eq!(m.one_way_ms(1, 1), 0.0);
    }

    #[test]
    fn asymmetric_access_delays_split_the_path_cost() {
        // A fast peer talking to a slow one pays the slow side's access in
        // both directions; the pairwise figures stay symmetric even though
        // the per-peer contributions are not.
        let m = LatencyModel::from_pings(&[10.0, 300.0]);
        assert_eq!(m.access_delay_ms(0), 5.0);
        assert_eq!(m.access_delay_ms(1), 150.0);
        assert_eq!(m.one_way_ms(0, 1), 155.0);
        assert_eq!(m.one_way_ms(1, 0), 155.0);
        assert_eq!(m.round_trip_ms(0, 1), 310.0);
    }

    #[test]
    fn zero_and_max_ping_entries_stay_finite() {
        let m = LatencyModel::from_pings(&[0.0, f64::MAX]);
        assert_eq!(m.access_delay_ms(0), 0.0);
        assert!(m.access_delay_ms(1).is_finite());
        assert_eq!(m.access_delay_ms(1), f64::MAX / 2.0);
        assert!(m.one_way_ms(0, 1).is_finite());
        assert_eq!(m.max_access_ms(), f64::MAX / 2.0);
    }

    #[test]
    fn max_access_tracks_the_slowest_peer() {
        assert_eq!(LatencyModel::default().max_access_ms(), 0.0);
        let mut m = LatencyModel::from_pings(&[40.0, 90.0]);
        assert_eq!(m.max_access_ms(), 45.0);
        m.push_peer(200.0);
        assert_eq!(m.max_access_ms(), 100.0);
    }
}
