//! Error type for overlay construction and mutation.

use crate::graph::PeerId;
use std::fmt;

/// Errors produced while building or mutating an overlay.
#[derive(Debug, Clone, PartialEq)]
pub enum OverlayError {
    /// An operation referenced a peer that does not exist or has left.
    UnknownPeer {
        /// The offending peer id.
        peer: PeerId,
    },
    /// The requested minimum degree cannot be met because the overlay has too
    /// few peers.
    DegreeUnachievable {
        /// Requested minimum degree.
        requested: usize,
        /// Number of peers available.
        peers: usize,
    },
    /// A bandwidth configuration was internally inconsistent
    /// (e.g. `mean` outside `[min, max]`).
    InvalidBandwidth {
        /// Human readable description of the inconsistency.
        message: String,
    },
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::UnknownPeer { peer } => write!(f, "unknown or departed peer {peer}"),
            OverlayError::DegreeUnachievable { requested, peers } => write!(
                f,
                "cannot give every peer {requested} neighbours with only {peers} peers"
            ),
            OverlayError::InvalidBandwidth { message } => {
                write!(f, "invalid bandwidth configuration: {message}")
            }
        }
    }
}

impl std::error::Error for OverlayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_relevant_values() {
        assert!(OverlayError::UnknownPeer { peer: 12 }
            .to_string()
            .contains("12"));
        let e = OverlayError::DegreeUnachievable {
            requested: 5,
            peers: 3,
        };
        assert!(e.to_string().contains('5') && e.to_string().contains('3'));
        let e = OverlayError::InvalidBandwidth {
            message: "mean below min".into(),
        };
        assert!(e.to_string().contains("mean below min"));
    }

    #[test]
    fn implements_std_error() {
        fn check<E: std::error::Error>(_: E) {}
        check(OverlayError::UnknownPeer { peer: 0 });
    }
}
