//! Overlay construction from a crawl trace.
//!
//! The builder performs the paper's preparation step (§5.1): take the trace
//! topology, then "add random edges into each overlay to let every node hold
//! M = 5 connected neighbors", and assign every peer its inbound/outbound
//! segment rates.

use crate::bandwidth::{BandwidthConfig, PeerBandwidth};
use crate::error::OverlayError;
use crate::graph::{OverlayGraph, PeerId};
use crate::latency::LatencyModel;
use fss_sim::hasher::FxHashMap;
use fss_trace::Trace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Static attributes of one peer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeerAttrs {
    /// Measured ping RTT (milliseconds), from the trace or sampled for
    /// joining peers.
    pub ping_ms: f64,
    /// Assigned bandwidth (segments/second).
    pub bandwidth: PeerBandwidth,
}

/// Configuration of the overlay construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlayConfig {
    /// Minimum number of neighbours every peer must hold (paper: `M = 5`).
    pub min_degree: usize,
    /// Bandwidth distribution.
    pub bandwidth: BandwidthConfig,
    /// Seed for edge augmentation and bandwidth assignment.
    pub seed: u64,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            min_degree: 5,
            bandwidth: BandwidthConfig::default(),
            seed: 0x5EED_0E11,
        }
    }
}

/// The fully constructed overlay: topology + per-peer attributes + latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Overlay {
    /// Name of the trace this overlay was built from.
    pub name: String,
    graph: OverlayGraph,
    attrs: Vec<PeerAttrs>,
    latency: LatencyModel,
    config: OverlayConfig,
}

impl Overlay {
    /// The overlay topology.
    pub fn graph(&self) -> &OverlayGraph {
        &self.graph
    }

    /// Mutable access to the topology (used by the churn model).
    pub fn graph_mut(&mut self) -> &mut OverlayGraph {
        &mut self.graph
    }

    /// The latency model.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// The configuration the overlay was built with.
    pub fn config(&self) -> &OverlayConfig {
        &self.config
    }

    /// Attributes of a peer.
    pub fn attrs(&self, peer: PeerId) -> Option<&PeerAttrs> {
        self.attrs.get(peer as usize)
    }

    /// Number of currently active peers.
    pub fn active_count(&self) -> usize {
        self.graph.active_count()
    }

    /// Iterator over active peer ids.
    pub fn active_peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.graph.active_peers()
    }

    /// Active neighbours of a peer.
    pub fn neighbors(&self, peer: PeerId) -> &[PeerId] {
        self.graph.neighbors(peer)
    }

    /// Overrides the bandwidth of one peer.  Used to install sources (zero
    /// inbound, large outbound).
    pub fn set_bandwidth(
        &mut self,
        peer: PeerId,
        bandwidth: PeerBandwidth,
    ) -> Result<(), OverlayError> {
        match self.attrs.get_mut(peer as usize) {
            Some(a) => {
                a.bandwidth = bandwidth;
                Ok(())
            }
            None => Err(OverlayError::UnknownPeer { peer }),
        }
    }

    /// Adds a freshly joined peer with the given attributes and connects it to
    /// `neighbors`.  Returns its new id.
    pub fn add_peer(
        &mut self,
        attrs: PeerAttrs,
        neighbors: &[PeerId],
    ) -> Result<PeerId, OverlayError> {
        let id = self.graph.add_peer();
        self.attrs.push(attrs);
        self.latency.push_peer(attrs.ping_ms);
        for &n in neighbors {
            self.graph.add_edge(id, n)?;
        }
        Ok(id)
    }

    /// Removes a peer (departure).  Attributes stay recorded for metrics.
    pub fn remove_peer(&mut self, peer: PeerId) -> Result<(), OverlayError> {
        self.graph.remove_peer(peer)
    }
}

/// Builds an [`Overlay`] from a [`Trace`].
#[derive(Debug, Clone)]
pub struct OverlayBuilder {
    config: OverlayConfig,
}

impl OverlayBuilder {
    /// Creates a builder.
    pub fn new(config: OverlayConfig) -> Result<Self, OverlayError> {
        config.bandwidth.validate()?;
        if config.min_degree == 0 {
            return Err(OverlayError::InvalidBandwidth {
                message: "min_degree must be at least 1".into(),
            });
        }
        Ok(OverlayBuilder { config })
    }

    /// Builder with the paper's default parameters.
    pub fn paper_default() -> Self {
        OverlayBuilder::new(OverlayConfig::default()).expect("default config is valid")
    }

    /// Builds the overlay: copies the trace topology, augments it so every
    /// peer has at least `min_degree` neighbours and samples bandwidths.
    pub fn build(&self, trace: &Trace) -> Result<Overlay, OverlayError> {
        let n = trace.node_count();
        if n <= self.config.min_degree {
            return Err(OverlayError::DegreeUnachievable {
                requested: self.config.min_degree,
                peers: n,
            });
        }

        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut graph = OverlayGraph::with_peers(n);

        // Trace node ids may be arbitrary; map them onto dense peer ids in
        // the order they appear (the generator already emits them densely).
        let index_of: FxHashMap<u32, PeerId> = trace
            .nodes
            .iter()
            .enumerate()
            .map(|(i, r)| (r.id, i as PeerId))
            .collect();
        for &(a, b) in &trace.edges {
            graph.add_edge(index_of[&a], index_of[&b])?;
        }

        augment_to_min_degree(&mut graph, self.config.min_degree, &mut rng)?;

        let attrs: Vec<PeerAttrs> = trace
            .nodes
            .iter()
            .map(|r| PeerAttrs {
                ping_ms: r.ping_ms,
                bandwidth: self.config.bandwidth.sample_peer(&mut rng),
            })
            .collect();
        let latency =
            LatencyModel::from_pings(&trace.nodes.iter().map(|r| r.ping_ms).collect::<Vec<_>>());

        Ok(Overlay {
            name: trace.name.clone(),
            graph,
            attrs,
            latency,
            config: self.config,
        })
    }
}

/// Adds random edges until every active peer has at least `min_degree`
/// neighbours, mirroring the paper's augmentation step.
pub(crate) fn augment_to_min_degree(
    graph: &mut OverlayGraph,
    min_degree: usize,
    rng: &mut SmallRng,
) -> Result<(), OverlayError> {
    let peers: Vec<PeerId> = graph.active_peers().collect();
    if peers.len() <= min_degree {
        return Err(OverlayError::DegreeUnachievable {
            requested: min_degree,
            peers: peers.len(),
        });
    }
    for &p in &peers {
        let mut guard = 0;
        while graph.degree(p) < min_degree {
            let candidate = peers[rng.gen_range(0..peers.len())];
            // `add_edge` ignores self loops and duplicates, returning false.
            let _ = graph.add_edge(p, candidate)?;
            guard += 1;
            if guard > 100 * min_degree * peers.len() {
                // Unreachable in practice; protects against pathological RNG
                // behaviour turning into an infinite loop.
                return Err(OverlayError::DegreeUnachievable {
                    requested: min_degree,
                    peers: peers.len(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_trace::{GeneratorConfig, TraceGenerator};

    fn trace(n: usize, seed: u64) -> Trace {
        TraceGenerator::new(GeneratorConfig::sized(n, seed)).generate(format!("t{n}"))
    }

    #[test]
    fn build_reaches_min_degree_five() {
        let overlay = OverlayBuilder::paper_default()
            .build(&trace(500, 1))
            .unwrap();
        assert_eq!(overlay.active_count(), 500);
        assert!(overlay.graph().min_degree().unwrap() >= 5);
        assert_eq!(overlay.name, "t500");
    }

    #[test]
    fn build_is_deterministic() {
        let b = OverlayBuilder::paper_default();
        let t = trace(300, 9);
        assert_eq!(b.build(&t).unwrap(), b.build(&t).unwrap());
    }

    #[test]
    fn bandwidths_are_sampled_in_range() {
        let overlay = OverlayBuilder::paper_default()
            .build(&trace(400, 2))
            .unwrap();
        for p in overlay.active_peers() {
            let bw = overlay.attrs(p).unwrap().bandwidth;
            assert!(bw.inbound >= 10.0 && bw.inbound <= 33.0);
            assert!(bw.outbound >= 10.0 && bw.outbound <= 33.0);
        }
    }

    #[test]
    fn overlay_is_connected_enough_for_streaming() {
        let overlay = OverlayBuilder::paper_default()
            .build(&trace(1_000, 3))
            .unwrap();
        let start = overlay.active_peers().next().unwrap();
        let reachable = overlay.graph().reachable_from(start);
        assert!(
            reachable as f64 >= 0.99 * overlay.active_count() as f64,
            "only {reachable} of {} peers reachable",
            overlay.active_count()
        );
    }

    #[test]
    fn too_small_trace_is_rejected() {
        let err = OverlayBuilder::paper_default()
            .build(&trace(4, 1))
            .unwrap_err();
        assert!(matches!(err, OverlayError::DegreeUnachievable { .. }));
    }

    #[test]
    fn invalid_configs_are_rejected_at_construction() {
        let cfg = OverlayConfig {
            min_degree: 0,
            ..OverlayConfig::default()
        };
        assert!(OverlayBuilder::new(cfg).is_err());
        let mut cfg = OverlayConfig::default();
        cfg.bandwidth.mean_rate = 5.0;
        assert!(OverlayBuilder::new(cfg).is_err());
    }

    #[test]
    fn set_bandwidth_installs_a_source() {
        let mut overlay = OverlayBuilder::paper_default()
            .build(&trace(100, 4))
            .unwrap();
        let source = overlay.active_peers().next().unwrap();
        let src_bw = overlay.config().bandwidth.source_peer();
        overlay.set_bandwidth(source, src_bw).unwrap();
        assert_eq!(overlay.attrs(source).unwrap().bandwidth.inbound, 0.0);
        assert!(overlay.set_bandwidth(9_999, src_bw).is_err());
    }

    #[test]
    fn add_and_remove_peers_dynamically() {
        let mut overlay = OverlayBuilder::paper_default()
            .build(&trace(50, 5))
            .unwrap();
        let neighbours: Vec<PeerId> = overlay.active_peers().take(5).collect();
        let attrs = PeerAttrs {
            ping_ms: 70.0,
            bandwidth: PeerBandwidth {
                inbound: 15.0,
                outbound: 12.0,
            },
        };
        let id = overlay.add_peer(attrs, &neighbours).unwrap();
        assert_eq!(overlay.graph().degree(id), 5);
        assert_eq!(overlay.attrs(id).unwrap().ping_ms, 70.0);
        assert_eq!(overlay.latency().access_delay_ms(id), 35.0);

        overlay.remove_peer(id).unwrap();
        assert!(!overlay.graph().is_active(id));
        // Attribute history is preserved for metrics.
        assert!(overlay.attrs(id).is_some());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(10))]
        /// Whatever the trace size/seed, the built overlay always satisfies
        /// the minimum-degree contract.
        #[test]
        fn prop_min_degree_always_met(n in 10usize..300, seed in 0u64..500) {
            let overlay = OverlayBuilder::paper_default().build(&trace(n, seed)).unwrap();
            proptest::prop_assert!(overlay.graph().min_degree().unwrap() >= 5);
        }
    }
}
