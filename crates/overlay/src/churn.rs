//! Dynamic-environment churn model.
//!
//! §5.4 of the paper: "To create a dynamic network environment, we randomly
//! let 5% old nodes leave and 5% new nodes join per scheduling period."
//! Joining peers connect to `M` random existing peers and "start media
//! playback by following their neighbors' current steps"; that playback rule
//! lives in the gossip layer — this module only mutates the overlay.

use crate::bandwidth::BandwidthConfig;
use crate::builder::{Overlay, PeerAttrs};
use crate::error::OverlayError;
use crate::graph::PeerId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What happened during one churn step.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Peers that left the overlay this period.
    pub left: Vec<PeerId>,
    /// Peers that joined the overlay this period.
    pub joined: Vec<PeerId>,
}

impl ChurnEvent {
    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty() && self.joined.is_empty()
    }
}

/// Applies per-period join/leave churn to an overlay.
#[derive(Debug, Clone)]
pub struct ChurnModel {
    /// Fraction of eligible peers leaving per period (paper: 0.05).
    pub leave_fraction: f64,
    /// Fraction of (pre-churn) peers joining per period (paper: 0.05).
    pub join_fraction: f64,
    /// Number of neighbours a joining peer connects to (paper: `M = 5`).
    pub join_degree: usize,
    /// Bandwidth distribution for joining peers.
    pub bandwidth: BandwidthConfig,
    /// Median ping of joining peers (milliseconds).
    pub join_ping_median_ms: f64,
    rng: SmallRng,
}

impl ChurnModel {
    /// Creates a churn model with the paper's 5 %/5 % defaults.
    pub fn paper_default(seed: u64) -> Self {
        ChurnModel {
            leave_fraction: 0.05,
            join_fraction: 0.05,
            join_degree: 5,
            bandwidth: BandwidthConfig::default(),
            join_ping_median_ms: 80.0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Creates a model with explicit fractions.
    ///
    /// # Panics
    /// Panics if a fraction is outside `[0, 1]` or not finite.
    pub fn new(leave_fraction: f64, join_fraction: f64, join_degree: usize, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&leave_fraction) && leave_fraction.is_finite(),
            "leave_fraction must be in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&join_fraction) && join_fraction.is_finite(),
            "join_fraction must be in [0,1]"
        );
        ChurnModel {
            leave_fraction,
            join_fraction,
            join_degree,
            bandwidth: BandwidthConfig::default(),
            join_ping_median_ms: 80.0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Applies one period of churn.  `protected` peers (the sources) never
    /// leave.  Returns the ids that left and joined.
    ///
    /// Standalone variant: collects the candidate sets from the overlay
    /// itself.  Callers that maintain an incremental membership view (the
    /// gossip layer's directory) drive the decomposed halves —
    /// [`step_departures`](Self::step_departures), [`join_count`](Self::join_count)
    /// and [`draw_arrival`](Self::draw_arrival) — with the same RNG
    /// consumption, so both paths produce identical churn.
    pub fn step(
        &mut self,
        overlay: &mut Overlay,
        protected: &[PeerId],
    ) -> Result<ChurnEvent, OverlayError> {
        let active: Vec<PeerId> = overlay.active_peers().collect();
        let population = active.len();

        let mut eligible = Vec::new();
        let mut left = Vec::new();
        self.step_departures(overlay, &active, protected, &mut eligible, &mut left)?;

        let join_count = self.join_count(population);
        let mut joined = Vec::with_capacity(join_count);
        for _ in 0..join_count {
            let candidates: Vec<PeerId> = overlay.active_peers().collect();
            if candidates.is_empty() {
                break;
            }
            let degree = self.join_degree.min(candidates.len());
            let mut neighbours = Vec::with_capacity(degree);
            let attrs = self.draw_arrival(|rng| {
                neighbours.extend(candidates.choose_multiple(rng, degree).copied())
            });
            let id = overlay.add_peer(attrs, &neighbours)?;
            joined.push(id);
        }

        Ok(ChurnEvent { left, joined })
    }

    /// The departure half of one churn period: shuffles the eligible peers
    /// (all of `members` except `protected`) and removes the leave-fraction
    /// share of the population, appending the removed ids to `left`.
    ///
    /// `members` must list every active peer (callers with a membership
    /// view pass its member list; [`step`](Self::step) collects it).  The
    /// scratch vectors are cleared first and may be reused across calls.
    pub fn step_departures(
        &mut self,
        overlay: &mut Overlay,
        members: &[PeerId],
        protected: &[PeerId],
        eligible: &mut Vec<PeerId>,
        left: &mut Vec<PeerId>,
    ) -> Result<(), OverlayError> {
        eligible.clear();
        left.clear();
        eligible.extend(members.iter().copied().filter(|p| !protected.contains(p)));
        eligible.shuffle(&mut self.rng);
        let leave_count = ((members.len() as f64) * self.leave_fraction).round() as usize;
        let leave_count = leave_count.min(eligible.len());
        for &p in eligible.iter().take(leave_count) {
            overlay.remove_peer(p)?;
            left.push(p);
        }
        Ok(())
    }

    /// How many peers join this period, given the pre-churn population.
    pub fn join_count(&self, population: usize) -> usize {
        ((population as f64) * self.join_fraction).round() as usize
    }

    /// Draws one arrival: `pick_neighbours` samples the neighbour set with
    /// the model's RNG (first, matching the legacy draw order), then the
    /// ping and bandwidth attributes are sampled.
    pub fn draw_arrival(&mut self, pick_neighbours: impl FnOnce(&mut SmallRng)) -> PeerAttrs {
        pick_neighbours(&mut self.rng);
        let ping = self.join_ping_median_ms * self.rng.gen_range(0.5..2.0);
        PeerAttrs {
            ping_ms: ping,
            bandwidth: self.bandwidth.sample_peer(&mut self.rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OverlayBuilder;
    use fss_trace::{GeneratorConfig, TraceGenerator};

    fn overlay(n: usize, seed: u64) -> Overlay {
        let trace = TraceGenerator::new(GeneratorConfig::sized(n, seed)).generate("churn-test");
        OverlayBuilder::paper_default().build(&trace).unwrap()
    }

    #[test]
    fn five_percent_leave_and_join() {
        let mut o = overlay(1_000, 1);
        let mut churn = ChurnModel::paper_default(42);
        let event = churn.step(&mut o, &[]).unwrap();
        assert_eq!(event.left.len(), 50);
        assert_eq!(event.joined.len(), 50);
        assert_eq!(o.active_count(), 1_000);
        assert!(!event.is_empty());
    }

    #[test]
    fn protected_peers_never_leave() {
        let mut o = overlay(200, 2);
        let sources: Vec<PeerId> = o.active_peers().take(2).collect();
        let mut churn = ChurnModel::paper_default(7);
        for _ in 0..20 {
            let event = churn.step(&mut o, &sources).unwrap();
            for s in &sources {
                assert!(!event.left.contains(s));
                assert!(o.graph().is_active(*s));
            }
        }
    }

    #[test]
    fn joining_peers_get_join_degree_neighbours() {
        let mut o = overlay(300, 3);
        let mut churn = ChurnModel::paper_default(9);
        let event = churn.step(&mut o, &[]).unwrap();
        for &j in &event.joined {
            // Later joiners may also attach to this peer, so the degree is at
            // least (not exactly) the join degree.
            assert!(o.graph().degree(j) >= 5);
            assert!(o.attrs(j).is_some());
            assert!(o.latency().access_delay_ms(j) > 0.0);
        }
    }

    #[test]
    fn zero_fractions_are_a_no_op() {
        let mut o = overlay(100, 4);
        let before = o.active_count();
        let mut churn = ChurnModel::new(0.0, 0.0, 5, 1);
        let event = churn.step(&mut o, &[]).unwrap();
        assert!(event.is_empty());
        assert_eq!(o.active_count(), before);
    }

    #[test]
    fn population_stays_stable_over_many_periods() {
        let mut o = overlay(500, 5);
        let mut churn = ChurnModel::paper_default(11);
        for _ in 0..30 {
            churn.step(&mut o, &[]).unwrap();
        }
        assert_eq!(o.active_count(), 500);
        // Ids keep growing, old slots stay allocated.
        assert!(o.graph().capacity() > 500);
    }

    #[test]
    #[should_panic(expected = "leave_fraction")]
    fn invalid_fraction_panics() {
        let _ = ChurnModel::new(1.5, 0.05, 5, 1);
    }

    /// The decomposed halves (used by the gossip layer's membership
    /// directory) must consume the RNG exactly like the standalone
    /// [`ChurnModel::step`]: identical leavers, identical joiner attach
    /// sets, for the same seed.
    #[test]
    fn decomposed_halves_match_step_exactly() {
        use rand::seq::SliceRandom;

        let mut reference_overlay = overlay(150, 7);
        let mut reference_churn = ChurnModel::paper_default(21);
        let mut decomposed_overlay = overlay(150, 7);
        let mut decomposed_churn = ChurnModel::paper_default(21);
        let protected: Vec<PeerId> = reference_overlay.active_peers().take(1).collect();

        let mut eligible = Vec::new();
        let mut left = Vec::new();
        for _ in 0..10 {
            let reference_event = reference_churn
                .step(&mut reference_overlay, &protected)
                .unwrap();

            let members: Vec<PeerId> = decomposed_overlay.active_peers().collect();
            decomposed_churn
                .step_departures(
                    &mut decomposed_overlay,
                    &members,
                    &protected,
                    &mut eligible,
                    &mut left,
                )
                .unwrap();
            assert_eq!(left, reference_event.left);

            let join_count = decomposed_churn.join_count(members.len());
            let mut joined = Vec::new();
            for _ in 0..join_count {
                let candidates: Vec<PeerId> = decomposed_overlay.active_peers().collect();
                let degree = decomposed_churn.join_degree.min(candidates.len());
                let mut neighbours = Vec::new();
                let attrs = decomposed_churn.draw_arrival(|rng| {
                    neighbours.extend(candidates.choose_multiple(rng, degree).copied())
                });
                joined.push(decomposed_overlay.add_peer(attrs, &neighbours).unwrap());
            }
            assert_eq!(joined, reference_event.joined);
        }
        assert_eq!(reference_overlay, decomposed_overlay);
    }

    #[test]
    fn departures_do_not_disconnect_the_core() {
        let mut o = overlay(400, 6);
        let source = o.active_peers().next().unwrap();
        let mut churn = ChurnModel::paper_default(13);
        for _ in 0..10 {
            churn.step(&mut o, &[source]).unwrap();
        }
        let reachable = o.graph().reachable_from(source);
        assert!(
            reachable as f64 >= 0.9 * o.active_count() as f64,
            "source reaches only {reachable} of {}",
            o.active_count()
        );
    }
}
