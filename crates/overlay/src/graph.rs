//! Dynamic undirected overlay graph.

use crate::error::OverlayError;
use serde::{Deserialize, Serialize};

/// Identifier of a peer in the overlay.
///
/// Ids are dense and stable: a peer that leaves keeps its id (marked
/// inactive) and newly joining peers receive fresh ids, so metric series
/// recorded per peer never get reattributed during churn.
pub type PeerId = u32;

/// An undirected graph with stable peer ids and O(1) membership checks.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OverlayGraph {
    /// `adjacency[p]` lists the active neighbours of peer `p`.
    adjacency: Vec<Vec<PeerId>>,
    /// Whether the peer is currently part of the overlay.
    active: Vec<bool>,
    /// Number of active peers.
    active_count: usize,
    /// Number of undirected edges between active peers.
    edge_count: usize,
}

impl OverlayGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` initially active, unconnected peers.
    pub fn with_peers(n: usize) -> Self {
        OverlayGraph {
            adjacency: vec![Vec::new(); n],
            active: vec![true; n],
            active_count: n,
            edge_count: 0,
        }
    }

    /// Total ids ever allocated (active + departed).
    pub fn capacity(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of currently active peers.
    pub fn active_count(&self) -> usize {
        self.active_count
    }

    /// Number of undirected edges between active peers.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// True when `peer` exists and is active.
    pub fn is_active(&self, peer: PeerId) -> bool {
        self.active.get(peer as usize).copied().unwrap_or(false)
    }

    /// Iterator over the ids of all active peers.
    pub fn active_peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.active
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i as PeerId)
    }

    /// Adds a new active peer and returns its id.
    pub fn add_peer(&mut self) -> PeerId {
        let id = self.adjacency.len() as PeerId;
        self.adjacency.push(Vec::new());
        self.active.push(true);
        self.active_count += 1;
        id
    }

    /// Adds an undirected edge.  Duplicate edges and self loops are ignored.
    ///
    /// Returns `true` when a new edge was actually inserted.
    pub fn add_edge(&mut self, a: PeerId, b: PeerId) -> Result<bool, OverlayError> {
        if !self.is_active(a) {
            return Err(OverlayError::UnknownPeer { peer: a });
        }
        if !self.is_active(b) {
            return Err(OverlayError::UnknownPeer { peer: b });
        }
        if a == b || self.adjacency[a as usize].contains(&b) {
            return Ok(false);
        }
        self.adjacency[a as usize].push(b);
        self.adjacency[b as usize].push(a);
        self.edge_count += 1;
        Ok(true)
    }

    /// True when an edge between `a` and `b` exists (both active).
    pub fn has_edge(&self, a: PeerId, b: PeerId) -> bool {
        self.is_active(a) && self.is_active(b) && self.adjacency[a as usize].contains(&b)
    }

    /// The active neighbours of `peer`.
    pub fn neighbors(&self, peer: PeerId) -> &[PeerId] {
        if self.is_active(peer) {
            &self.adjacency[peer as usize]
        } else {
            &[]
        }
    }

    /// Degree of an active peer (0 for inactive/unknown peers).
    pub fn degree(&self, peer: PeerId) -> usize {
        self.neighbors(peer).len()
    }

    /// Minimum degree over all active peers (`None` when the graph is empty).
    pub fn min_degree(&self) -> Option<usize> {
        self.active_peers().map(|p| self.degree(p)).min()
    }

    /// Mean degree over active peers.
    pub fn average_degree(&self) -> f64 {
        if self.active_count == 0 {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.active_count as f64
        }
    }

    /// Removes a peer from the overlay, detaching it from all neighbours.
    /// The id remains allocated but inactive.
    pub fn remove_peer(&mut self, peer: PeerId) -> Result<(), OverlayError> {
        if !self.is_active(peer) {
            return Err(OverlayError::UnknownPeer { peer });
        }
        let neighbours = std::mem::take(&mut self.adjacency[peer as usize]);
        for n in &neighbours {
            let list = &mut self.adjacency[*n as usize];
            if let Some(pos) = list.iter().position(|&x| x == peer) {
                list.swap_remove(pos);
                self.edge_count -= 1;
            }
        }
        self.active[peer as usize] = false;
        self.active_count -= 1;
        Ok(())
    }

    /// Number of active peers reachable from `start` (including itself), via
    /// breadth-first search.  Used to check streaming connectivity.
    pub fn reachable_from(&self, start: PeerId) -> usize {
        if !self.is_active(start) {
            return 0;
        }
        let mut visited = vec![false; self.adjacency.len()];
        let mut queue = std::collections::VecDeque::new();
        visited[start as usize] = true;
        queue.push_back(start);
        let mut count = 0;
        while let Some(p) = queue.pop_front() {
            count += 1;
            for &n in &self.adjacency[p as usize] {
                if !visited[n as usize] {
                    visited[n as usize] = true;
                    queue.push_back(n);
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edges_and_query() {
        let mut g = OverlayGraph::with_peers(4);
        assert!(g.add_edge(0, 1).unwrap());
        assert!(g.add_edge(1, 2).unwrap());
        assert!(!g.add_edge(1, 0).unwrap(), "duplicate edge ignored");
        assert!(!g.add_edge(2, 2).unwrap(), "self loop ignored");
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.min_degree(), Some(0));
        assert!((g.average_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_peer_errors() {
        let mut g = OverlayGraph::with_peers(2);
        assert_eq!(
            g.add_edge(0, 5).unwrap_err(),
            OverlayError::UnknownPeer { peer: 5 }
        );
        assert_eq!(
            g.remove_peer(5).unwrap_err(),
            OverlayError::UnknownPeer { peer: 5 }
        );
        assert!(!g.is_active(5));
        assert_eq!(g.neighbors(5), &[] as &[PeerId]);
    }

    #[test]
    fn removal_detaches_and_preserves_ids() {
        let mut g = OverlayGraph::with_peers(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.remove_peer(1).unwrap();

        assert_eq!(g.active_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.is_active(1));
        assert!(g.is_active(0) && g.is_active(2));
        assert_eq!(g.degree(0), 0);
        // Removing twice errors.
        assert!(g.remove_peer(1).is_err());
        // Ids of other peers are untouched.
        assert_eq!(g.active_peers().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn joining_after_leave_gets_fresh_id() {
        let mut g = OverlayGraph::with_peers(2);
        g.remove_peer(0).unwrap();
        let id = g.add_peer();
        assert_eq!(id, 2);
        assert_eq!(g.capacity(), 3);
        assert_eq!(g.active_count(), 2);
        g.add_edge(id, 1).unwrap();
        assert_eq!(g.degree(id), 1);
    }

    #[test]
    fn reachability_counts_components() {
        let mut g = OverlayGraph::with_peers(5);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(3, 4).unwrap();
        assert_eq!(g.reachable_from(0), 3);
        assert_eq!(g.reachable_from(3), 2);
        assert_eq!(g.reachable_from(9), 0);
        g.remove_peer(1).unwrap();
        assert_eq!(g.reachable_from(0), 1);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = OverlayGraph::new();
        assert_eq!(g.active_count(), 0);
        assert_eq!(g.min_degree(), None);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.active_peers().count(), 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        /// Edge count equals half the degree sum and removals never corrupt it.
        #[test]
        fn prop_degree_sum_invariant(
            edges in proptest::collection::vec((0u32..30, 0u32..30), 0..200),
            removals in proptest::collection::vec(0u32..30, 0..10),
        ) {
            let mut g = OverlayGraph::with_peers(30);
            for (a, b) in edges {
                let _ = g.add_edge(a, b);
            }
            for r in removals {
                let _ = g.remove_peer(r);
            }
            let degree_sum: usize = g.active_peers().map(|p| g.degree(p)).sum();
            proptest::prop_assert_eq!(degree_sum, 2 * g.edge_count());
            // Neighbour lists are symmetric.
            for p in g.active_peers() {
                for &n in g.neighbors(p) {
                    proptest::prop_assert!(g.neighbors(n).contains(&p));
                    proptest::prop_assert!(g.is_active(n));
                }
            }
        }
    }
}
