//! Overlay network substrate for gossip-based streaming.
//!
//! This crate turns a crawl [`Trace`](fss_trace::Trace) into the overlay the
//! paper simulates on:
//!
//! * [`graph::OverlayGraph`] — an undirected adjacency structure supporting
//!   dynamic joins and leaves (needed for the churn experiments),
//! * [`bandwidth`] — per-peer inbound/outbound segment-rate assignment with
//!   the paper's skewed distribution (rates in `[10, 33]` segments/s, mean
//!   15 ≈ 450 Kbps),
//! * [`latency::LatencyModel`] — pairwise latency derived from trace ping
//!   times,
//! * [`net`] — link-level fault and delay knobs ([`net::NetworkConfig`])
//!   and the stateless per-link loss/jitter streams ([`net::LinkFaults`])
//!   the event-driven network model draws from (see `docs/network.md`),
//! * [`builder::OverlayBuilder`] — applies the paper's augmentation step
//!   ("add random edges into each overlay to let every node hold M = 5
//!   connected neighbors"), and
//! * [`churn::ChurnModel`] — the dynamic-environment model (5 % of peers
//!   leave and 5 % join per scheduling period).

#![warn(missing_docs)]

pub mod bandwidth;
pub mod builder;
pub mod churn;
pub mod error;
pub mod graph;
pub mod latency;
pub mod net;

pub use bandwidth::{BandwidthConfig, PeerBandwidth};
pub use builder::{Overlay, OverlayBuilder, OverlayConfig, PeerAttrs};
pub use churn::{ChurnEvent, ChurnModel};
pub use error::OverlayError;
pub use graph::{OverlayGraph, PeerId};
pub use latency::LatencyModel;
pub use net::{LinkFaults, MessageKind, NetworkConfig};
