//! Link-level fault and delay configuration.
//!
//! [`NetworkConfig`] is the knob set of the message-level network model the
//! event-driven stepping mode runs on (see `fss-gossip::net` and
//! `docs/network.md`): a global multiplier on the per-link latency derived
//! from [`crate::latency::LatencyModel`], a Bernoulli per-message loss rate,
//! and a bounded per-message jitter that reorders same-period messages.
//!
//! [`LinkFaults`] turns those knobs into *stateless* deterministic draws:
//! every loss/jitter decision is a pure hash of
//! `(seed, src, dst, message kind, period, discriminator)`, so the outcome
//! of any message is independent of the order the simulator evaluates it in.
//! That is what keeps event-driven runs byte-identical across worker pools,
//! shard layouts and stepping modes — there is no RNG cursor to perturb.

use crate::graph::PeerId;
use serde::{Deserialize, Serialize};

/// Knobs of the message-level network model.
///
/// The default ([`NetworkConfig::ideal`]) is the degenerate instance the
/// period-lockstep mode is equivalent to: zero latency, zero loss, zero
/// jitter.  Golden-digest tests pin that equivalence byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Multiplier applied to the modeled per-link round-trip time from
    /// [`crate::latency::LatencyModel`].  `0.0` delivers instantly; `1.0`
    /// uses the trace-derived ping times as-is.
    pub latency_scale: f64,
    /// Per-message Bernoulli loss probability in `[0, 1)`, applied
    /// independently to buffer-map, request and data legs.
    pub loss_rate: f64,
    /// Upper bound on the uniform per-message extra delay in milliseconds
    /// (`0` disables jitter).  Jitter is what reorders messages that share
    /// a link and a period.
    pub jitter_ms: u64,
    /// Seed of the stateless fault streams ([`LinkFaults`]).
    pub seed: u64,
}

impl NetworkConfig {
    /// The degenerate zero-latency / zero-loss / zero-jitter network the
    /// period-lockstep mode is byte-equivalent to.
    pub fn ideal() -> Self {
        NetworkConfig {
            latency_scale: 0.0,
            loss_rate: 0.0,
            jitter_ms: 0,
            seed: 0,
        }
    }

    /// A lossy but zero-latency network.
    pub fn lossy(loss_rate: f64, seed: u64) -> Self {
        NetworkConfig {
            loss_rate,
            seed,
            ..Self::ideal()
        }
    }

    /// A loss-free network with trace latencies scaled by `latency_scale`.
    pub fn delayed(latency_scale: f64, seed: u64) -> Self {
        NetworkConfig {
            latency_scale,
            seed,
            ..Self::ideal()
        }
    }

    /// The same configuration with a different fault-stream seed.
    pub fn with_seed(self, seed: u64) -> Self {
        NetworkConfig { seed, ..self }
    }

    /// True when the configuration cannot delay, drop or reorder anything —
    /// the instance period-lockstep stepping is equivalent to.
    pub fn is_ideal(&self) -> bool {
        self.latency_scale == 0.0 && self.loss_rate == 0.0 && self.jitter_ms == 0
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !self.latency_scale.is_finite() || self.latency_scale < 0.0 {
            return Err(format!(
                "latency_scale {} must be finite and non-negative",
                self.latency_scale
            ));
        }
        if !self.loss_rate.is_finite() || !(0.0..1.0).contains(&self.loss_rate) {
            return Err(format!(
                "loss_rate {} outside the sensible range [0, 1)",
                self.loss_rate
            ));
        }
        Ok(())
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self::ideal()
    }
}

/// The three message legs a period's gossip exchange decomposes into.  Each
/// leg draws from its own fault stream, so e.g. losing a data message never
/// perturbs the request-loss pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// Per-period buffer-map advertisement (supplier → requester).
    BufferMap,
    /// Segment request (requester → supplier).
    Request,
    /// Granted segment transfer (supplier → requester).
    Data,
}

impl MessageKind {
    /// Stream-separation salt mixed into every draw for this leg.
    fn salt(self) -> u64 {
        match self {
            MessageKind::BufferMap => 0x4D41_5053,
            MessageKind::Request => 0x5245_5153,
            MessageKind::Data => 0x4441_5441,
        }
    }
}

/// Stateless per-link fault streams: loss and jitter draws that are pure
/// functions of `(seed, src, dst, kind, period, discriminator)`.
///
/// Because no draw advances any cursor, evaluation order cannot change an
/// outcome — the property the cross-pool/cross-shard byte-determinism of the
/// event-driven mode rests on.  Memory cost is O(1) regardless of link count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    seed: u64,
    jitter_ms: u64,
    /// Loss threshold in fixed point: a draw is a loss when its top 53 bits,
    /// mapped to `[0, 1)`, fall below `loss_rate`.
    loss_rate: f64,
}

impl LinkFaults {
    /// Builds the fault streams for `config`.
    pub fn new(config: &NetworkConfig) -> Self {
        LinkFaults {
            seed: config.seed,
            jitter_ms: config.jitter_ms,
            loss_rate: config.loss_rate,
        }
    }

    /// The raw 64-bit draw for one message — the deterministic core both
    /// [`lost`](Self::lost) and [`jitter_ms`](Self::jitter_ms) sample from
    /// (with different salts, so they are independent).
    fn draw(&self, src: PeerId, dst: PeerId, kind: MessageKind, period: u64, disc: u64) -> u64 {
        let mut h = self.seed ^ kind.salt();
        h = splitmix64(h ^ (src as u64));
        h = splitmix64(h ^ (dst as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        h = splitmix64(h ^ period.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        splitmix64(h ^ disc.wrapping_mul(0x94d0_49bb_1331_11eb))
    }

    /// Whether the message identified by `(src, dst, kind, period, disc)`
    /// is dropped.  `disc` disambiguates messages sharing a link, kind and
    /// period (the system passes the segment id).
    pub fn lost(
        &self,
        src: PeerId,
        dst: PeerId,
        kind: MessageKind,
        period: u64,
        disc: u64,
    ) -> bool {
        if self.loss_rate <= 0.0 {
            return false;
        }
        let x = self.draw(src, dst, kind, period, disc);
        // Top 53 bits → uniform f64 in [0, 1).
        ((x >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < self.loss_rate
    }

    /// The uniform extra delay in `[0, jitter_ms]` for one message (0 when
    /// jitter is disabled).  Independent of the loss draw.
    pub fn jitter_ms(
        &self,
        src: PeerId,
        dst: PeerId,
        kind: MessageKind,
        period: u64,
        disc: u64,
    ) -> u64 {
        if self.jitter_ms == 0 {
            return 0;
        }
        let x = self.draw(src, dst, kind, period, disc ^ 0x4A49_5454);
        x % (self.jitter_ms + 1)
    }
}

/// The splitmix64 finalizer — the same cheap, well-mixed permutation
/// `fss_sim::rng` derives its named streams with (duplicated here because
/// the overlay crate sits below the simulator core).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_config_validates_and_is_ideal() {
        let c = NetworkConfig::ideal();
        assert!(c.validate().is_ok());
        assert!(c.is_ideal());
        assert_eq!(NetworkConfig::default(), c);
    }

    #[test]
    fn constructors_set_the_expected_knob() {
        let lossy = NetworkConfig::lossy(0.1, 7);
        assert_eq!(lossy.loss_rate, 0.1);
        assert!(!lossy.is_ideal());
        let delayed = NetworkConfig::delayed(4.0, 7);
        assert_eq!(delayed.latency_scale, 4.0);
        assert!(!delayed.is_ideal());
        assert_eq!(lossy.with_seed(9).seed, 9);
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(NetworkConfig::lossy(1.0, 0).validate().is_err());
        assert!(NetworkConfig::lossy(-0.1, 0).validate().is_err());
        assert!(NetworkConfig::lossy(f64::NAN, 0).validate().is_err());
        assert!(NetworkConfig::delayed(-1.0, 0).validate().is_err());
        assert!(NetworkConfig::delayed(f64::INFINITY, 0).validate().is_err());
    }

    #[test]
    fn draws_are_pure_functions_of_their_inputs() {
        let f = LinkFaults::new(&NetworkConfig {
            loss_rate: 0.3,
            jitter_ms: 40,
            ..NetworkConfig::ideal()
        });
        for disc in 0..50 {
            assert_eq!(
                f.lost(3, 9, MessageKind::Data, 17, disc),
                f.lost(3, 9, MessageKind::Data, 17, disc)
            );
            assert_eq!(
                f.jitter_ms(3, 9, MessageKind::Data, 17, disc),
                f.jitter_ms(3, 9, MessageKind::Data, 17, disc)
            );
            assert!(f.jitter_ms(3, 9, MessageKind::Data, 17, disc) <= 40);
        }
    }

    #[test]
    fn legs_draw_from_independent_streams() {
        let f = LinkFaults::new(&NetworkConfig::lossy(0.5, 11));
        let kinds = [
            MessageKind::BufferMap,
            MessageKind::Request,
            MessageKind::Data,
        ];
        // Over many messages the three legs must not produce identical
        // loss patterns (they share every input except the kind salt).
        let patterns: Vec<Vec<bool>> = kinds
            .iter()
            .map(|&k| (0..64).map(|d| f.lost(1, 2, k, 0, d)).collect())
            .collect();
        assert_ne!(patterns[0], patterns[1]);
        assert_ne!(patterns[1], patterns[2]);
    }

    #[test]
    fn loss_frequency_tracks_the_configured_rate() {
        let f = LinkFaults::new(&NetworkConfig::lossy(0.25, 42));
        let n = 20_000;
        let losses = (0..n)
            .filter(|&d| f.lost(5, 6, MessageKind::Data, d / 100, d))
            .count();
        let rate = losses as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed loss rate {rate}");
    }

    #[test]
    fn zero_rates_never_drop_or_delay() {
        let f = LinkFaults::new(&NetworkConfig::ideal());
        for d in 0..100 {
            assert!(!f.lost(0, 1, MessageKind::Request, d, d));
            assert_eq!(f.jitter_ms(0, 1, MessageKind::Request, d, d), 0);
        }
    }
}
