//! Per-peer bandwidth assignment.
//!
//! §5.1 of the paper: "We randomly arrange inbound rate (from 300 Kbps to
//! 1 Mbps) to each node and let the average inbound rate be 450 Kbps, i.e.
//! I ∈ [10, 33] and I = 15 in average.  The arrangement of outbound rate is
//! alike.  An exception is that the source node has zero inbound rate and much
//! larger outbound rate."
//!
//! Rates are expressed in **segments per second** (one segment = 30 Kb, so
//! 300 Kbps = 10 segments/s).  Because the required mean (15) sits well below
//! the mid-point of the range `[10, 33]`, a plain uniform draw cannot satisfy
//! the specification; we use a two-piece ("skewed") uniform distribution that
//! hits the mean exactly in expectation while keeping full support over the
//! range.

use crate::error::OverlayError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Inbound/outbound segment rates assigned to one peer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeerBandwidth {
    /// Inbound rate in segments per second.
    pub inbound: f64,
    /// Outbound rate in segments per second.
    pub outbound: f64,
}

/// Configuration of the bandwidth distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthConfig {
    /// Minimum peer rate (segments/s).  Paper default: 10 (300 Kbps).
    pub min_rate: f64,
    /// Maximum peer rate (segments/s).  Paper default: 33 (~1 Mbps).
    pub max_rate: f64,
    /// Target mean peer rate (segments/s).  Paper default: 15 (450 Kbps).
    pub mean_rate: f64,
    /// Outbound rate of a source node (segments/s).  "Much larger" than a
    /// regular peer; default 100 (~3 Mbps), enough to feed several neighbours
    /// at full stream rate.
    pub source_outbound: f64,
}

impl Default for BandwidthConfig {
    fn default() -> Self {
        BandwidthConfig {
            min_rate: 10.0,
            max_rate: 33.0,
            mean_rate: 15.0,
            source_outbound: 100.0,
        }
    }
}

impl BandwidthConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), OverlayError> {
        if !self.min_rate.is_finite() || self.min_rate <= 0.0 {
            return Err(OverlayError::InvalidBandwidth {
                message: format!("min_rate {} must be positive and finite", self.min_rate),
            });
        }
        if self.max_rate <= self.min_rate {
            return Err(OverlayError::InvalidBandwidth {
                message: format!(
                    "max_rate {} must exceed min_rate {}",
                    self.max_rate, self.min_rate
                ),
            });
        }
        if self.mean_rate <= self.min_rate || self.mean_rate >= self.max_rate {
            return Err(OverlayError::InvalidBandwidth {
                message: format!(
                    "mean_rate {} must lie strictly inside ({}, {})",
                    self.mean_rate, self.min_rate, self.max_rate
                ),
            });
        }
        if self.source_outbound <= 0.0 {
            return Err(OverlayError::InvalidBandwidth {
                message: format!("source_outbound {} must be positive", self.source_outbound),
            });
        }
        Ok(())
    }

    /// Probability of drawing from the lower piece `[min, mean]` such that the
    /// overall expectation equals `mean_rate`.
    ///
    /// With piece means `(min+mean)/2` and `(mean+max)/2`, solving
    /// `q·(min+mean)/2 + (1−q)·(mean+max)/2 = mean` for `q` gives
    /// `q = (max − mean) / (max − min)`... adjusted for the piece centres:
    /// `q = (max − mean) / ((max − mean) + (mean − min))`.
    fn lower_piece_probability(&self) -> f64 {
        let lower_span = self.mean_rate - self.min_rate;
        let upper_span = self.max_rate - self.mean_rate;
        upper_span / (upper_span + lower_span)
    }

    /// Draws one peer rate from the skewed distribution.
    pub fn sample_rate<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let q = self.lower_piece_probability();
        if rng.gen::<f64>() < q {
            rng.gen_range(self.min_rate..=self.mean_rate)
        } else {
            rng.gen_range(self.mean_rate..=self.max_rate)
        }
    }

    /// Draws a full inbound/outbound assignment for a regular peer.
    pub fn sample_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> PeerBandwidth {
        PeerBandwidth {
            inbound: self.sample_rate(rng),
            outbound: self.sample_rate(rng),
        }
    }

    /// The fixed assignment of a source node: zero inbound, large outbound.
    pub fn source_peer(&self) -> PeerBandwidth {
        PeerBandwidth {
            inbound: 0.0,
            outbound: self.source_outbound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn default_matches_paper_parameters() {
        let c = BandwidthConfig::default();
        assert_eq!(c.min_rate, 10.0);
        assert_eq!(c.max_rate, 33.0);
        assert_eq!(c.mean_rate, 15.0);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_inconsistent_configs() {
        let bad = |f: fn(&mut BandwidthConfig)| {
            let mut c = BandwidthConfig::default();
            f(&mut c);
            c.validate().unwrap_err()
        };
        bad(|c| c.min_rate = 0.0);
        bad(|c| c.min_rate = f64::NAN);
        bad(|c| c.max_rate = 5.0);
        bad(|c| c.mean_rate = 9.0);
        bad(|c| c.mean_rate = 40.0);
        bad(|c| c.source_outbound = 0.0);
    }

    #[test]
    fn samples_stay_in_range() {
        let c = BandwidthConfig::default();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let r = c.sample_rate(&mut rng);
            assert!(r >= c.min_rate && r <= c.max_rate, "rate {r} out of range");
        }
    }

    #[test]
    fn sample_mean_matches_paper_mean() {
        let c = BandwidthConfig::default();
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| c.sample_rate(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean - 15.0).abs() < 0.15,
            "empirical mean {mean} deviates from 15"
        );
    }

    #[test]
    fn source_assignment_has_zero_inbound_and_large_outbound() {
        let c = BandwidthConfig::default();
        let s = c.source_peer();
        assert_eq!(s.inbound, 0.0);
        assert!(s.outbound > c.max_rate);
    }

    #[test]
    fn peer_sampling_draws_independent_directions() {
        let c = BandwidthConfig::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let peers: Vec<PeerBandwidth> = (0..1_000).map(|_| c.sample_peer(&mut rng)).collect();
        // Not all identical in/out (i.e. they are separate draws).
        assert!(peers.iter().any(|p| (p.inbound - p.outbound).abs() > 1.0));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        /// For any valid (min, mean, max) the sampler stays in range and the
        /// lower-piece probability is a valid probability.
        #[test]
        fn prop_sampler_respects_bounds(
            min in 1.0f64..20.0,
            mean_frac in 0.05f64..0.95,
            span in 5.0f64..50.0,
            seed in 0u64..1_000,
        ) {
            let max = min + span;
            let mean = min + mean_frac * span;
            let c = BandwidthConfig { min_rate: min, max_rate: max, mean_rate: mean, source_outbound: 100.0 };
            proptest::prop_assert!(c.validate().is_ok());
            let q = c.lower_piece_probability();
            proptest::prop_assert!((0.0..=1.0).contains(&q));
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..100 {
                let r = c.sample_rate(&mut rng);
                proptest::prop_assert!(r >= min && r <= max);
            }
        }
    }
}
