//! Property tests for the surface lexer: arbitrary nestings of comment and
//! string syntax never panic, and the lex result always round-trips spans —
//! the regions partition the input exactly, the masked copy is byte-for-byte
//! the same length with newlines preserved, and code bytes pass through
//! untouched.

use fss_lint::lexer::{lex, RegionKind};

/// Token soup the generator draws from: every opener/closer/escape that
/// drives the lexer's state machine, plus innocuous filler.  Unterminated
/// constructs are *expected* outputs of this table — the lexer must run them
/// to EOF without panicking.
const TOKENS: &[&str] = &[
    "//",
    "/*",
    "*/",
    "*",
    "/",
    "\n",
    "\"",
    "\\\"",
    "\\\\",
    "'",
    "b'",
    "r\"",
    "r#\"",
    "\"#",
    "br##\"",
    "\"##",
    "#",
    "r#ident",
    "'a",
    "'x'",
    "ident",
    "fss-lint:",
    "hot-path",
    "HashMap",
    ".unwrap()",
    "as u16",
    " ",
    "{",
    "}",
    "<",
    ">",
    ",",
    ";",
    "é",
    "∀",
];

fn soup(indices: &[usize]) -> String {
    indices.iter().map(|&i| TOKENS[i % TOKENS.len()]).collect()
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(600))]

    /// Lexing arbitrary comment/string nestings never panics, and the spans
    /// round-trip: regions tile `0..len` in order, masked output has the
    /// same byte length, newlines survive masking, non-code bytes are
    /// blanked and code bytes are untouched.
    #[test]
    fn lex_never_panics_and_round_trips_spans(indices in proptest::collection::vec(0usize..1000, 0..60)) {
        let source = soup(&indices);
        let lexed = lex(&source);
        let bytes = source.as_bytes();

        proptest::prop_assert_eq!(lexed.masked.len(), bytes.len());

        // Regions partition the input exactly, in order, without gaps.
        let mut cursor = 0usize;
        for region in &lexed.regions {
            proptest::prop_assert_eq!(region.start, cursor);
            proptest::prop_assert!(region.end > region.start);
            cursor = region.end;
        }
        proptest::prop_assert_eq!(cursor, bytes.len());

        for region in &lexed.regions {
            let span = region.start..region.end;
            for (&masked, &raw) in lexed.masked[span.clone()].iter().zip(&bytes[span]) {
                if region.kind == RegionKind::Code {
                    proptest::prop_assert_eq!(masked, raw);
                } else {
                    let expect = if raw == b'\n' { b'\n' } else { b' ' };
                    proptest::prop_assert_eq!(masked, expect);
                }
            }
        }

        // line_col stays consistent with the raw newline count at every
        // region boundary.
        for region in &lexed.regions {
            let (line, col) = lexed.line_col(region.start);
            let newlines = bytes[..region.start].iter().filter(|&&b| b == b'\n').count();
            proptest::prop_assert_eq!(line, newlines + 1);
            proptest::prop_assert!(col >= 1);
        }
    }

    /// Masking is a fixed point: every comment/literal opener either started
    /// a region (and was blanked) or sat inside one (and was blanked), so
    /// re-lexing the masked output must change nothing.  A difference would
    /// mean the two passes disagreed on where a literal begins — exactly the
    /// ambiguity that would let a rule fire inside a string.
    #[test]
    fn masking_is_a_fixed_point(indices in proptest::collection::vec(0usize..1000, 0..40)) {
        let source = soup(&indices);
        let first = lex(&source);
        let masked_str = match String::from_utf8(first.masked.clone()) {
            Ok(s) => s,
            Err(e) => return Err(proptest::TestCaseError::fail(format!(
                "masking produced invalid UTF-8: {e}"
            ))),
        };
        let second = lex(&masked_str);
        proptest::prop_assert_eq!(&second.masked, &first.masked);
    }
}
