//! Fixture battery: every rule fires exactly on the lines its `//~ CODE`
//! markers name — and nowhere else, in particular never inside strings or
//! comments.  The fixture sources live under `tests/fixtures/` (excluded
//! from the workspace walk) and each is checked under the workspace-relative
//! path its header documents, since path class decides which rules apply.

use fss_lint::{check_file, RuleCode};
use std::fs;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    match fs::read_to_string(&path) {
        Ok(source) => source,
        Err(e) => panic!("reading fixture {}: {e}", path.display()),
    }
}

/// Expected `(line, code)` pairs parsed from the `//~ CODE` markers.
fn expected(source: &str) -> Vec<(usize, RuleCode)> {
    let mut out = Vec::new();
    for (i, line) in source.lines().enumerate() {
        let Some(idx) = line.find("//~") else {
            continue;
        };
        for token in line[idx + 3..].split_whitespace() {
            match RuleCode::parse(token) {
                Some(code) => out.push((i + 1, code)),
                None => panic!("bad marker `{token}` on line {}", i + 1),
            }
        }
    }
    out.sort();
    out
}

/// Asserts the findings for `name` checked under `rel_path` match its
/// markers exactly.
fn assert_matches_markers(rel_path: &str, name: &str) {
    let source = fixture(name);
    let report = check_file(rel_path, &source);
    assert!(report.errors.is_empty(), "{name}: {:?}", report.errors);
    let mut actual: Vec<(usize, RuleCode)> =
        report.findings.iter().map(|f| (f.line, f.code)).collect();
    actual.sort();
    assert_eq!(
        actual,
        expected(&source),
        "{name} under {rel_path}: findings disagree with the //~ markers"
    );
}

/// Asserts `name` checked under `rel_path` yields no findings at all (the
/// path class turns the relevant rule off).
fn assert_quiet(rel_path: &str, name: &str) {
    let source = fixture(name);
    let report = check_file(rel_path, &source);
    assert!(report.errors.is_empty(), "{name}: {:?}", report.errors);
    assert!(
        report.findings.is_empty(),
        "{name} under {rel_path} should be exempt, found {:?}",
        report.findings
    );
}

#[test]
fn fss001_default_hashers_fire_exactly_on_marked_lines() {
    assert_matches_markers("crates/demo/src/lib.rs", "hashers.rs");
    // Outside library paths the rule is off entirely.
    assert_quiet("crates/demo/tests/it.rs", "hashers.rs");
}

#[test]
fn fss002_clock_reads_fire_exactly_on_marked_lines() {
    assert_matches_markers("crates/demo/src/clock.rs", "clock.rs");
    // The bench crate may read wall clocks.
    assert_quiet("crates/bench/src/clock.rs", "clock.rs");
}

#[test]
fn fss003_hot_path_allocations_fire_exactly_on_marked_lines() {
    assert_matches_markers("crates/demo/src/hot.rs", "hotpath.rs");
}

#[test]
fn fss004_narrowing_casts_fire_exactly_on_marked_lines() {
    assert_matches_markers("crates/gossip/src/fixture.rs", "casts.rs");
    assert_matches_markers("crates/core/src/fixture.rs", "casts.rs");
    // Non-protocol-state crates are exempt.
    assert_quiet("crates/metrics/src/fixture.rs", "casts.rs");
}

#[test]
fn fss005_unwrap_expect_fire_exactly_on_marked_lines() {
    assert_matches_markers("crates/demo/src/panics.rs", "panics.rs");
    // Integration tests are not library code.
    assert_quiet("crates/demo/tests/panics.rs", "panics.rs");
}

#[test]
fn unbalanced_hot_path_markers_are_annotation_errors() {
    let report = check_file("crates/demo/src/bad.rs", &fixture("bad_unclosed.rs"));
    assert_eq!(report.errors.len(), 1, "{:?}", report.errors);
    assert!(report.errors[0].message.contains("never closed"));
}

#[test]
fn unknown_directives_are_annotation_errors() {
    let report = check_file("crates/demo/src/bad.rs", &fixture("bad_directive.rs"));
    assert_eq!(report.errors.len(), 1, "{:?}", report.errors);
    assert!(report.errors[0]
        .message
        .contains("unknown fss-lint directive"));
}
