//! FSS001 fixture: default hashers flagged; explicit hashers, strings,
//! comments and `#[cfg(test)]` items stay quiet.
//! Checked as `crates/demo/src/lib.rs` (library, not protocol-state).
use std::collections::HashMap; //~ FSS001
use std::collections::HashSet; //~ FSS001

pub type Bad = HashMap<u32, u32>; //~ FSS001
pub type BadSet = HashSet<u32>; //~ FSS001
pub type BadTuple = HashSet<(u32, u64)>; //~ FSS001
pub type Ok1 = HashMap<u32, u32, FxBuildHasher>;
pub type Ok2 = HashSet<u32, FxBuildHasher>;
pub type OkTuple = HashSet<(u32, u64), FxBuildHasher>;

// A comment mentioning HashMap<u8, u8> is not code.
pub fn strings() {
    let _ = "HashMap<u32, u32> inside a string";
    let _ = r#"HashSet inside a raw string"#;
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    fn f() {
        let _ = HashMap::<u8, u8>::new();
    }
}
