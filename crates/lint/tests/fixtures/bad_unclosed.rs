// fss-lint: hot-path
pub fn never_closed() {}
