//! FSS004 fixture: narrowing `as` casts flagged in protocol-state paths;
//! widenings, comments, strings and `#[cfg(test)]` items stay quiet.
//! Checked as `crates/gossip/src/fixture.rs` and as
//! `crates/metrics/src/fixture.rs` (the latter expects zero findings).
pub fn narrowing(x: usize, y: u64) -> (u8, u16, u32) {
    let a = x as u8; //~ FSS004
    let b = x as u16; //~ FSS004
    let c = y as u32; //~ FSS004
    (a, b, c)
}

pub fn widening(x: u16) -> u64 {
    let w = x as u64;
    let u = w as usize;
    u as u64
}

pub fn not_code() {
    // a cast written as u16 inside a comment is quiet
    let _ = "as u32";
}

#[cfg(test)]
mod tests {
    fn t(x: usize) -> u8 {
        x as u8
    }
}
