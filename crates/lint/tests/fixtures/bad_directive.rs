// fss-lint: hotpath
pub fn typo_in_the_directive() {}
