//! FSS003 fixture: allocating calls flagged only between the hot-path
//! markers, and never inside strings or comments.
//! Checked as `crates/demo/src/hot.rs`.
pub fn cold(xs: &[u32]) {
    let _v: Vec<u32> = Vec::new();
    let _c: Vec<u32> = xs.iter().copied().collect();
}

// fss-lint: hot-path
pub fn hot(xs: &[u32], scratch: &mut Vec<u32>) {
    let _bad: Vec<u32> = Vec::new(); //~ FSS003
    let _bad2 = vec![1, 2]; //~ FSS003
    let _bad3: Vec<u32> = xs.iter().copied().collect(); //~ FSS003
    let _quiet = "Vec::new() inside a string";
    // vec![quiet] inside a comment
    scratch.clear();
    scratch.push(1);
}
// fss-lint: end

pub fn cold_again() {
    let _ = format!("allocations are fine outside regions");
}
