//! FSS002 fixture: wall-clock and entropy reads flagged outside the bench
//! crate; strings, comments and near-miss identifiers stay quiet.
//! Checked as `crates/demo/src/clock.rs` and as `crates/bench/src/clock.rs`
//! (the latter expects zero findings).
pub fn bad() {
    let _t = std::time::Instant::now(); //~ FSS002
    let _s = std::time::SystemTime::now(); //~ FSS002
    let _r = rand::thread_rng(); //~ FSS002
    let _g = SmallRng::from_entropy(); //~ FSS002
}

pub fn not_code() {
    // Instant::now inside a comment is not a read.
    let _ = "SystemTime::now() inside a string";
    let _ = 'x'; // thread_rng mentioned after a char literal
}

pub fn near_miss() {
    let _ = instant_now();
    let _ = Instant::nowhere();
}
