//! FSS005 fixture: `.unwrap()` / `.expect()` flagged in library code; the
//! `unwrap_or*` family, strings, comments and `#[cfg(test)]` items stay
//! quiet.  Checked as `crates/demo/src/panics.rs` and as
//! `crates/demo/tests/panics.rs` (the latter expects zero findings).
pub fn bad(o: Option<u8>) -> u8 {
    o.unwrap() //~ FSS005
}

pub fn bad2(r: Result<u8, u8>) -> u8 {
    r.expect("msg") //~ FSS005
}

pub fn fine(o: Option<u8>) -> u8 {
    o.unwrap_or(0)
}

pub fn fine2(o: Option<u8>) -> u8 {
    o.unwrap_or_else(|| 0)
}

pub fn not_code() {
    let _ = ".unwrap() inside a string";
    // .expect( inside a comment
}

#[cfg(test)]
mod tests {
    fn t(o: Option<u8>) -> u8 {
        o.unwrap()
    }
}
