//! The workspace must lint clean: zero unwaived findings, zero stale
//! waivers, zero annotation errors.  Running this from the default test
//! suite means plain `cargo test` enforces the same gate CI runs explicitly
//! via `cargo run -p fss-lint`.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome = match fss_lint::lint_workspace(&root) {
        Ok(outcome) => outcome,
        Err(e) => panic!("lint run failed: {e}"),
    };
    assert!(
        outcome.is_clean(),
        "the workspace does not lint clean:\n{}",
        outcome.render()
    );
}
