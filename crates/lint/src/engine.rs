//! Ties the pieces together: walk the workspace, run every rule on every
//! file, apply the waiver baseline, detect stale waivers, and render the
//! outcome.

use crate::config::{parse_waivers, ConfigError, Waiver};
use crate::rules::{check_file, Finding, RuleCode};
use crate::walk::workspace_sources;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A finding attributed to its file, after waiver resolution.
#[derive(Debug, Clone)]
pub struct Located {
    pub rel_path: String,
    pub finding: Finding,
    /// Index into [`Outcome::waivers`] when suppressed.
    pub waived_by: Option<usize>,
}

/// Result of linting a whole workspace.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Every finding, waived or not, sorted by (path, line, col).
    pub findings: Vec<Located>,
    /// The baseline, in file order.
    pub waivers: Vec<Waiver>,
    /// How many findings each waiver suppressed (same indexing as
    /// `waivers`); zero marks a stale waiver.
    pub waiver_hits: Vec<usize>,
    /// Malformed in-source annotations, rendered as `path:line: message`.
    pub annotation_errors: Vec<String>,
}

impl Outcome {
    pub fn unwaived(&self) -> impl Iterator<Item = &Located> {
        self.findings.iter().filter(|f| f.waived_by.is_none())
    }

    pub fn stale_waivers(&self) -> impl Iterator<Item = &Waiver> {
        self.waivers
            .iter()
            .zip(&self.waiver_hits)
            .filter(|&(_, &hits)| hits == 0)
            .map(|(w, _)| w)
    }

    /// True when the workspace is clean: nothing unwaived, nothing stale,
    /// no malformed annotations.
    pub fn is_clean(&self) -> bool {
        self.unwaived().next().is_none()
            && self.stale_waivers().next().is_none()
            && self.annotation_errors.is_empty()
    }

    /// Per-code counts of unwaived findings, for the summary line.
    fn unwaived_by_code(&self) -> Vec<(RuleCode, usize)> {
        RuleCode::ALL
            .into_iter()
            .map(|code| {
                (
                    code,
                    self.unwaived().filter(|f| f.finding.code == code).count(),
                )
            })
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    /// Human-readable report (diagnostics + summary).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for err in &self.annotation_errors {
            let _ = writeln!(out, "{err}: malformed fss-lint annotation");
        }
        for located in self.unwaived() {
            let f = &located.finding;
            let _ = writeln!(
                out,
                "{}:{}:{}: {}: {}",
                located.rel_path, f.line, f.col, f.code, f.message
            );
        }
        for waiver in self.stale_waivers() {
            let _ = writeln!(
                out,
                "lint.toml:{}: stale waiver: {} on `{}` matched no finding — delete it \
                 (reason was: {})",
                waiver.line, waiver.code, waiver.path, waiver.reason
            );
        }
        let waived = self
            .findings
            .iter()
            .filter(|f| f.waived_by.is_some())
            .count();
        let unwaived = self.findings.len() - waived;
        let stale = self.stale_waivers().count();
        let _ = write!(
            out,
            "fss-lint: {} finding(s): {} unwaived, {} waived by {} waiver(s), {} stale",
            self.findings.len(),
            unwaived,
            waived,
            self.waivers.len(),
            stale
        );
        if unwaived > 0 {
            let by_code: Vec<String> = self
                .unwaived_by_code()
                .into_iter()
                .map(|(c, n)| format!("{c}×{n}"))
                .collect();
            let _ = write!(out, " [{}]", by_code.join(", "));
        }
        out.push('\n');
        out
    }

    /// The `--list-waivers` view: every waiver with its hit count, so CI
    /// logs make baseline growth visible at a glance.
    pub fn render_waivers(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fss-lint waiver baseline ({} entries):",
            self.waivers.len()
        );
        for (waiver, hits) in self.waivers.iter().zip(&self.waiver_hits) {
            let _ = writeln!(
                out,
                "  {} {:<40} suppresses {:>2}  — {}",
                waiver.code, waiver.path, hits, waiver.reason
            );
        }
        out
    }
}

/// An error that prevents linting from producing a verdict at all.
#[derive(Debug)]
pub enum LintError {
    Io(io::Error),
    Config(ConfigError),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(e) => write!(f, "io error: {e}"),
            LintError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl From<io::Error> for LintError {
    fn from(e: io::Error) -> Self {
        LintError::Io(e)
    }
}

impl From<ConfigError> for LintError {
    fn from(e: ConfigError) -> Self {
        LintError::Config(e)
    }
}

/// Lints the workspace rooted at `root` against the waiver baseline at
/// `root/lint.toml` (absent file = empty baseline).
pub fn lint_workspace(root: &Path) -> Result<Outcome, LintError> {
    let baseline_path = root.join("lint.toml");
    let waivers = if baseline_path.is_file() {
        parse_waivers(&fs::read_to_string(&baseline_path)?)?
    } else {
        Vec::new()
    };
    let sources = workspace_sources(root)?;
    let mut outcome = Outcome {
        waiver_hits: vec![0; waivers.len()],
        waivers,
        ..Outcome::default()
    };
    for file in sources {
        let source = fs::read_to_string(&file.abs_path)?;
        let report = check_file(&file.rel_path, &source);
        for err in report.errors {
            outcome
                .annotation_errors
                .push(format!("{}:{}: {}", file.rel_path, err.line, err.message));
        }
        for finding in report.findings {
            let waived_by = outcome
                .waivers
                .iter()
                .position(|w| w.matches(finding.code, &file.rel_path));
            if let Some(idx) = waived_by {
                outcome.waiver_hits[idx] += 1;
            }
            outcome.findings.push(Located {
                rel_path: file.rel_path.clone(),
                finding,
                waived_by,
            });
        }
    }
    Ok(outcome)
}
