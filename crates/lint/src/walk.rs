//! Workspace source discovery.
//!
//! The linter walks the directories that hold first-party Rust code —
//! `src/`, `crates/`, `examples/`, `tests/` — and skips what it must never
//! lint: `target/`, the offline dependency stand-ins under `vendor/` (their
//! job is to mimic third-party APIs, rules don't apply), and the linter's own
//! rule fixtures (which violate every rule on purpose).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names (relative to the workspace root) that are walked.
const ROOTS: &[&str] = &["src", "crates", "examples", "tests"];

/// Path prefixes (workspace-relative, `/`-separated) that are skipped.
const SKIP_PREFIXES: &[&str] = &["crates/lint/tests/fixtures"];

/// One discovered source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (the form rules and
    /// waivers match against).
    pub rel_path: String,
    /// Absolute (or root-joined) path for reading.
    pub abs_path: PathBuf,
}

/// Collects every `.rs` file under the workspace `root`, sorted by relative
/// path so diagnostics and digests are stable across filesystems.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for dir in ROOTS {
        let abs = root.join(dir);
        if abs.is_dir() {
            collect(&abs, dir, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

fn collect(dir: &Path, rel: &str, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<(String, PathBuf, bool)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_dir = entry.file_type()?.is_dir();
        entries.push((name, entry.path(), is_dir));
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, path, is_dir) in entries {
        let rel_child = format!("{rel}/{name}");
        if SKIP_PREFIXES.iter().any(|p| rel_child.starts_with(p)) || name == "target" {
            continue;
        }
        if is_dir {
            collect(&path, &rel_child, out)?;
        } else if name.ends_with(".rs") {
            out.push(SourceFile {
                rel_path: rel_child,
                abs_path: path,
            });
        }
    }
    Ok(())
}

/// Locates the workspace root: the given directory or the nearest ancestor
/// containing both `Cargo.toml` and `crates/`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
