//! The rule catalogue: FSS001–FSS005.
//!
//! Every rule scans the **masked** text produced by [`crate::lexer::lex`], so
//! a pattern can never fire inside a string, char literal or comment.  Rules
//! are scoped by path class (library source vs tests vs the bench crate) and
//! by in-file region (`#[cfg(test)]` items are skipped where a rule only
//! covers shipping code; FSS003 only looks inside annotated hot-path
//! regions).  See `docs/lint.md` for the catalogue in prose.

use crate::lexer::{lex, Lexed, RegionKind};
use std::fmt;
use std::ops::Range;

/// Stable diagnostic codes.  The numeric part never changes meaning; retired
/// rules leave holes rather than being reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleCode {
    /// Default-`RandomState` `HashMap`/`HashSet` in library code.
    Fss001,
    /// Wall-clock / entropy reads outside `crates/bench`.
    Fss002,
    /// Allocating calls inside `// fss-lint: hot-path` regions.
    Fss003,
    /// Narrowing `as` casts in protocol-state crates.
    Fss004,
    /// `unwrap()` / `expect()` in non-test library code.
    Fss005,
}

impl RuleCode {
    pub const ALL: [RuleCode; 5] = [
        RuleCode::Fss001,
        RuleCode::Fss002,
        RuleCode::Fss003,
        RuleCode::Fss004,
        RuleCode::Fss005,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            RuleCode::Fss001 => "FSS001",
            RuleCode::Fss002 => "FSS002",
            RuleCode::Fss003 => "FSS003",
            RuleCode::Fss004 => "FSS004",
            RuleCode::Fss005 => "FSS005",
        }
    }

    pub fn parse(text: &str) -> Option<RuleCode> {
        RuleCode::ALL.into_iter().find(|c| c.as_str() == text)
    }
}

impl fmt::Display for RuleCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub code: RuleCode,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// What was matched (e.g. `Instant::now`, `as u16`).
    pub excerpt: String,
    /// Human explanation including the remedy.
    pub message: String,
}

/// Path-derived scope of a file (all paths are workspace-relative with `/`
/// separators).
#[derive(Debug, Clone, Copy)]
pub struct PathClass {
    /// `src/**` or `crates/<name>/src/**`: shipping library code.
    pub library: bool,
    /// Anywhere under `crates/bench/` (benchmarks may read wall clocks).
    pub bench_crate: bool,
    /// `crates/gossip/src/**` or `crates/core/src/**`: protocol-state
    /// modules where narrowing casts need an audit trail.
    pub protocol_state: bool,
}

impl PathClass {
    pub fn of(rel_path: &str) -> PathClass {
        let segments: Vec<&str> = rel_path.split('/').collect();
        let library = segments.first() == Some(&"src")
            || (segments.first() == Some(&"crates") && segments.get(2) == Some(&"src"));
        let bench_crate = segments.first() == Some(&"crates") && segments.get(1) == Some(&"bench");
        let protocol_state = segments.first() == Some(&"crates")
            && matches!(segments.get(1), Some(&"gossip") | Some(&"core"))
            && segments.get(2) == Some(&"src");
        PathClass {
            library,
            bench_crate,
            protocol_state,
        }
    }
}

/// A malformed in-source annotation (unbalanced hot-path markers).  These are
/// configuration errors, not waivable findings: the tool exits with status 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotationError {
    pub line: usize,
    pub message: String,
}

/// Everything the rules produced for one file.
#[derive(Debug, Clone, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub errors: Vec<AnnotationError>,
}

/// Runs every applicable rule over one file.
pub fn check_file(rel_path: &str, source: &str) -> FileReport {
    let lexed = lex(source);
    let class = PathClass::of(rel_path);
    let masked = &lexed.masked;
    let test_regions = if class.library {
        find_test_regions(masked)
    } else {
        Vec::new()
    };
    let mut report = FileReport::default();

    if class.library {
        fss001_default_hashers(masked, &lexed, &test_regions, &mut report.findings);
    }
    if !class.bench_crate {
        fss002_wall_clock(masked, &lexed, &mut report.findings);
    }
    fss003_hot_path_allocations(source, masked, &lexed, &mut report);
    if class.protocol_state {
        fss004_narrowing_casts(masked, &lexed, &test_regions, &mut report.findings);
    }
    if class.library {
        fss005_unwrap_expect(masked, &lexed, &test_regions, &mut report.findings);
    }

    report.findings.sort_by_key(|f| (f.line, f.col, f.code));
    report
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets of every word-boundary occurrence of `word` in `text`.
fn find_word(text: &[u8], word: &str) -> Vec<usize> {
    let w = word.as_bytes();
    let mut out = Vec::new();
    if w.is_empty() || text.len() < w.len() {
        return out;
    }
    for i in 0..=text.len() - w.len() {
        if &text[i..i + w.len()] != w {
            continue;
        }
        let left_ok = i == 0 || !is_ident_byte(text[i - 1]);
        // A word that ends in an identifier byte must not continue; patterns
        // like `Instant::now` end in an ident byte and must not match
        // `Instant::nowhere`.
        let last = w[w.len() - 1];
        let right_ok =
            !is_ident_byte(last) || i + w.len() == text.len() || !is_ident_byte(text[i + w.len()]);
        if left_ok && right_ok {
            out.push(i);
        }
    }
    out
}

/// True when `word` occurs at exactly `pos` with a word boundary after it.
fn word_at(text: &[u8], pos: usize, word: &str) -> bool {
    let w = word.as_bytes();
    text.len() >= pos + w.len()
        && &text[pos..pos + w.len()] == w
        && (text.len() == pos + w.len() || !is_ident_byte(text[pos + w.len()]))
}

fn in_regions(regions: &[Range<usize>], offset: usize) -> bool {
    regions.iter().any(|r| r.contains(&offset))
}

fn skip_ws(text: &[u8], mut i: usize) -> usize {
    while i < text.len() && text[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

fn push(
    findings: &mut Vec<Finding>,
    lexed: &Lexed,
    offset: usize,
    code: RuleCode,
    excerpt: &str,
    message: String,
) {
    let (line, col) = lexed.line_col(offset);
    findings.push(Finding {
        code,
        line,
        col,
        excerpt: excerpt.to_string(),
        message,
    });
}

/// Spans of `#[cfg(test)]`-gated items (mod / fn / impl / use), brace-matched
/// on the masked text so literal braces cannot unbalance them.
pub fn find_test_regions(masked: &[u8]) -> Vec<Range<usize>> {
    let mut regions = Vec::new();
    for start in find_word(masked, "cfg") {
        // The word must sit inside an attribute opener `#[` (possibly with
        // whitespace) and be followed by `(...)` containing the word `test`.
        let mut j = start;
        while j > 0 && masked[j - 1].is_ascii_whitespace() {
            j -= 1;
        }
        if j == 0 || masked[j - 1] != b'[' {
            continue;
        }
        let mut k = j - 1;
        while k > 0 && masked[k - 1].is_ascii_whitespace() {
            k -= 1;
        }
        if k == 0 || masked[k - 1] != b'#' {
            continue;
        }
        let open = skip_ws(masked, start + 3);
        if open >= masked.len() || masked[open] != b'(' {
            continue;
        }
        let Some(close) = match_delim(masked, open, b'(', b')') else {
            continue;
        };
        if find_word(&masked[open..close], "test").is_empty() {
            continue;
        }
        // Find the end of this attribute, then skip any further attributes.
        let Some(mut item) = match_delim(masked, j - 1, b'[', b']') else {
            continue;
        };
        item += 1;
        loop {
            let at = skip_ws(masked, item);
            if at + 1 < masked.len() && masked[at] == b'#' {
                let br = skip_ws(masked, at + 1);
                if br < masked.len() && masked[br] == b'[' {
                    if let Some(end) = match_delim(masked, br, b'[', b']') {
                        item = end + 1;
                        continue;
                    }
                }
            }
            break;
        }
        // The gated item runs to the first `;` (use/extern) or the matching
        // close of the first `{` (mod/fn/impl body).
        let mut p = skip_ws(masked, item);
        let end = loop {
            if p >= masked.len() {
                break masked.len();
            }
            match masked[p] {
                b';' => break p + 1,
                b'{' => {
                    break match match_delim(masked, p, b'{', b'}') {
                        Some(close_brace) => close_brace + 1,
                        None => masked.len(),
                    }
                }
                _ => p += 1,
            }
        };
        regions.push(k - 1..end);
    }
    regions
}

/// Offset of the closing delimiter matching the opener at `open`.
fn match_delim(text: &[u8], open: usize, open_b: u8, close_b: u8) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &b) in text.iter().enumerate().skip(open) {
        if b == open_b {
            depth += 1;
        } else if b == close_b {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// FSS001: `HashMap`/`HashSet` with the default `RandomState` hasher.
///
/// An occurrence passes only when its generic argument list names an explicit
/// hasher (a third parameter for `HashMap`, a second for `HashSet`), as
/// `fss_gossip::hasher::{FxHashMap, FxHashSet}` do.  Everything else —
/// imports, `::new()`, `::with_capacity()`, two-parameter types — is flagged.
fn fss001_default_hashers(
    masked: &[u8],
    lexed: &Lexed,
    test_regions: &[Range<usize>],
    findings: &mut Vec<Finding>,
) {
    for (word, needed_commas) in [("HashMap", 2usize), ("HashSet", 1usize)] {
        for offset in find_word(masked, word) {
            if in_regions(test_regions, offset) {
                continue;
            }
            if generic_commas(masked, offset + word.len()) >= needed_commas {
                continue;
            }
            push(
                findings,
                lexed,
                offset,
                RuleCode::Fss001,
                word,
                format!(
                    "default-RandomState `{word}` in library code: iteration order and probe \
                     cost vary per process; use the deterministic \
                     `fss_gossip::hasher::Fx{word}` (re-exported from `fss_sim::hasher`) \
                     or waive with a reason in lint.toml"
                ),
            );
        }
    }
}

/// Counts top-level commas in the generic argument list following a type
/// name (accepting an optional `::` turbofish), ignoring commas nested in
/// `<>`, `()`, `[]`.  Returns 0 when no generic list follows.
fn generic_commas(masked: &[u8], after_word: usize) -> usize {
    let mut i = skip_ws(masked, after_word);
    if i + 1 < masked.len() && masked[i] == b':' && masked[i + 1] == b':' {
        i = skip_ws(masked, i + 2);
    }
    if i >= masked.len() || masked[i] != b'<' {
        return 0;
    }
    let mut angle = 0isize;
    let mut nested = 0isize; // () and []
    let mut commas = 0usize;
    for &b in masked.iter().skip(i) {
        match b {
            b'<' => angle += 1,
            b'>' => {
                angle -= 1;
                if angle == 0 {
                    return commas;
                }
            }
            b'(' | b'[' => nested += 1,
            b')' | b']' => nested -= 1,
            b',' if angle == 1 && nested == 0 => commas += 1,
            b';' | b'{' => return commas, // not a generic list after all
            _ => {}
        }
    }
    commas
}

/// FSS002: wall-clock and entropy reads.  The simulation is a deterministic
/// function of its seeds; real time and OS randomness may only appear in the
/// benchmark crate.
fn fss002_wall_clock(masked: &[u8], lexed: &Lexed, findings: &mut Vec<Finding>) {
    const PATTERNS: &[(&str, &str)] = &[
        ("Instant::now", "wall-clock read"),
        ("SystemTime", "wall-clock type"),
        ("thread_rng", "OS-entropy RNG"),
        ("from_entropy", "OS-entropy seeding"),
    ];
    for &(pattern, what) in PATTERNS {
        for offset in find_word(masked, pattern) {
            push(
                findings,
                lexed,
                offset,
                RuleCode::Fss002,
                pattern,
                format!(
                    "{what} `{pattern}` outside crates/bench: simulation results must be a \
                     deterministic function of configured seeds; derive timing from periods \
                     and randomness from seeded `SmallRng` streams"
                ),
            );
        }
    }
}

/// FSS003: allocating calls inside `// fss-lint: hot-path` … `// fss-lint:
/// end` regions.  The annotations document which code the zero-alloc
/// counting-allocator tests exercise; this rule catches regressions at review
/// time instead of at test time.
fn fss003_hot_path_allocations(
    source: &str,
    masked: &[u8],
    lexed: &Lexed,
    report: &mut FileReport,
) {
    const OPEN: &str = "fss-lint: hot-path";
    const CLOSE: &str = "fss-lint: end";
    // A directive comment is one whose text, after the `//`/`///`/`//!`
    // opener, *starts with* `fss-lint:` — prose that merely mentions the
    // marker (docs, this file) is not a directive.
    fn directive(text: &str) -> Option<&str> {
        let body = text.trim_start_matches('/').trim_start_matches('!').trim();
        body.strip_prefix("fss-lint:").map(str::trim)
    }
    let mut regions: Vec<Range<usize>> = Vec::new();
    let mut open_at: Option<usize> = None;
    for (region, text) in lexed.comments(source) {
        if region.kind != RegionKind::LineComment {
            continue;
        }
        let Some(directive) = directive(text) else {
            continue;
        };
        match directive {
            "hot-path" => {
                if let Some(prev) = open_at {
                    let (line, _) = lexed.line_col(prev);
                    report.errors.push(AnnotationError {
                        line: lexed.line_col(region.start).0,
                        message: format!(
                            "`// {OPEN}` opened again while the region from line {line} is \
                             still open (regions cannot nest)"
                        ),
                    });
                } else {
                    open_at = Some(region.start);
                }
            }
            "end" => match open_at.take() {
                Some(start) => regions.push(start..region.start),
                None => report.errors.push(AnnotationError {
                    line: lexed.line_col(region.start).0,
                    message: format!("`// {CLOSE}` without a matching `// {OPEN}`"),
                }),
            },
            other => report.errors.push(AnnotationError {
                line: lexed.line_col(region.start).0,
                message: format!(
                    "unknown fss-lint directive `{other}` (expected `hot-path` or `end`)"
                ),
            }),
        }
    }
    if let Some(start) = open_at {
        report.errors.push(AnnotationError {
            line: lexed.line_col(start).0,
            message: format!("`// {OPEN}` region never closed with `// {CLOSE}`"),
        });
    }
    if regions.is_empty() {
        return;
    }
    const PATTERNS: &[&str] = &[
        "Vec::new",
        "vec!",
        "Box::new",
        "String::new",
        "String::from",
        "format!",
        ".collect",
        ".to_vec",
        ".to_string",
        ".to_owned",
        "with_capacity",
    ];
    for &pattern in PATTERNS {
        for offset in find_word(masked, pattern.trim_start_matches('.')) {
            if pattern.starts_with('.') && (offset == 0 || masked[offset - 1] != b'.') {
                continue; // method-call pattern without a receiver dot
            }
            if !in_regions(&regions, offset) {
                continue;
            }
            push(
                &mut report.findings,
                lexed,
                offset,
                RuleCode::Fss003,
                pattern,
                format!(
                    "allocating call `{pattern}` inside a `// {OPEN}` region: the period hot \
                     path must not allocate in steady state (see crates/bench/tests/\
                     zero_alloc.rs); reuse a scratch buffer or move the allocation to setup"
                ),
            );
        }
    }
}

/// FSS004: narrowing `as` casts in protocol-state modules.  A silently
/// truncating `as u16` caused the PR 4 sequence-wraparound bug; narrowing
/// must go through the checked helpers in `fss_gossip::cast` or carry a
/// waiver citing the bounding invariant.
fn fss004_narrowing_casts(
    masked: &[u8],
    lexed: &Lexed,
    test_regions: &[Range<usize>],
    findings: &mut Vec<Finding>,
) {
    for offset in find_word(masked, "as") {
        if in_regions(test_regions, offset) {
            continue;
        }
        let target_at = skip_ws(masked, offset + 2);
        let target = ["u8", "u16", "u32"]
            .into_iter()
            .find(|t| word_at(masked, target_at, t));
        let Some(target) = target else { continue };
        push(
            findings,
            lexed,
            offset,
            RuleCode::Fss004,
            &format!("as {target}"),
            format!(
                "narrowing `as {target}` in protocol state silently truncates out-of-range \
                 values (the PR 4 seq-wraparound bug class); use the checked helpers in \
                 `fss_gossip::cast`, a lossless `::from`, or waive citing the bounding \
                 invariant"
            ),
        );
    }
}

/// FSS005: `unwrap()` / `expect()` in non-test library code.  Each panic site
/// in shipping code either becomes proper error handling or carries a waiver
/// explaining why aborting is the correct response.
fn fss005_unwrap_expect(
    masked: &[u8],
    lexed: &Lexed,
    test_regions: &[Range<usize>],
    findings: &mut Vec<Finding>,
) {
    for method in ["unwrap", "expect"] {
        for offset in find_word(masked, method) {
            if offset == 0 || masked[offset - 1] != b'.' {
                continue; // only method calls, not e.g. `unwrap_all(...)` fns
            }
            let after = skip_ws(masked, offset + method.len());
            if after >= masked.len() || masked[after] != b'(' {
                continue; // `.unwrap_or(...)` is excluded by find_word already
            }
            if in_regions(test_regions, offset) {
                continue;
            }
            push(
                findings,
                lexed,
                offset,
                RuleCode::Fss005,
                &format!(".{method}()"),
                format!(
                    "`.{method}()` in non-test library code: return a `Result`, handle the \
                     `None`/`Err` branch, or waive in lint.toml explaining why aborting \
                     is correct here"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(rel_path: &str, src: &str) -> Vec<(RuleCode, usize)> {
        let report = check_file(rel_path, src);
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        report.findings.iter().map(|f| (f.code, f.line)).collect()
    }

    #[test]
    fn path_classes() {
        let lib = PathClass::of("crates/gossip/src/buffer.rs");
        assert!(lib.library && lib.protocol_state && !lib.bench_crate);
        let bench = PathClass::of("crates/bench/benches/period_throughput.rs");
        assert!(!bench.library && bench.bench_crate);
        let tests = PathClass::of("crates/runtime/tests/golden_report.rs");
        assert!(!tests.library);
        let root = PathClass::of("src/lib.rs");
        assert!(root.library && !root.protocol_state);
        let example = PathClass::of("examples/flash_crowd.rs");
        assert!(!example.library && !example.bench_crate);
    }

    #[test]
    fn fss001_catches_default_hasher_and_accepts_explicit_one() {
        let src = "use std::collections::HashMap;\n\
                   fn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n\
                   type Ok1 = std::collections::HashMap<u32, u32, MyHasher>;\n\
                   type Ok2 = std::collections::HashSet<u32, MyHasher>;\n\
                   fn g(s: FxHashMap<u32, u32>) {}\n";
        let found = codes("crates/x/src/lib.rs", src);
        assert_eq!(
            found,
            vec![
                (RuleCode::Fss001, 1),
                (RuleCode::Fss001, 2),
                (RuleCode::Fss001, 2)
            ]
        );
    }

    #[test]
    fn fss001_tuple_keys_do_not_hide_the_missing_hasher() {
        // Commas inside a tuple key must not count as generic separators.
        let found = codes(
            "crates/x/src/lib.rs",
            "type T = HashSet<(u32, u64)>;\ntype Ok = HashSet<(u32, u64), H>;\n",
        );
        assert_eq!(found, vec![(RuleCode::Fss001, 1)]);
    }

    #[test]
    fn fss001_skips_cfg_test_items_and_non_library_paths() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn f() { let _ = HashMap::<u8, u8>::new(); }\n}\n";
        assert!(codes("crates/x/src/lib.rs", src).is_empty());
        assert!(codes("crates/x/tests/it.rs", "use std::collections::HashMap;\n").is_empty());
    }

    #[test]
    fn fss002_fires_everywhere_except_bench() {
        let src = "let t = std::time::Instant::now();\nlet r = rand::thread_rng();\n";
        assert_eq!(
            codes("examples/demo.rs", src),
            vec![(RuleCode::Fss002, 1), (RuleCode::Fss002, 2)]
        );
        assert!(codes("crates/bench/benches/b.rs", src).is_empty());
        // Strings and comments never fire.
        let masked = "// Instant::now\nlet s = \"SystemTime\";\n";
        assert!(codes("crates/x/src/lib.rs", masked).is_empty());
    }

    #[test]
    fn fss003_only_inside_annotated_regions() {
        let src = "\
fn cold() { let v: Vec<u32> = xs.iter().collect(); }
// fss-lint: hot-path
fn hot(scratch: &mut Vec<u32>) {
    let bad: Vec<u32> = xs.iter().collect();
    let s = \"vec![not code]\"; // vec![comment]
    scratch.clear();
}
// fss-lint: end
fn cold2() { let v = vec![1]; }
";
        assert_eq!(
            codes("crates/x/src/hot.rs", src),
            vec![(RuleCode::Fss003, 4)]
        );
    }

    #[test]
    fn fss003_prose_mentions_are_not_directives() {
        // Doc text that merely *mentions* the marker must not open a region,
        // but a typoed directive is a hard error rather than silence.
        let src = "/// Wrap hot code in `// fss-lint: hot-path` comments.\nfn f() {}\n";
        let report = check_file("crates/x/src/lib.rs", src);
        assert!(report.errors.is_empty() && report.findings.is_empty());
        let typo = check_file("crates/x/src/lib.rs", "// fss-lint: hotpath\n");
        assert_eq!(typo.errors.len(), 1);
        assert!(typo.errors[0]
            .message
            .contains("unknown fss-lint directive"));
    }

    #[test]
    fn fss003_unbalanced_markers_are_errors() {
        let report = check_file("crates/x/src/a.rs", "// fss-lint: hot-path\nfn f() {}\n");
        assert_eq!(report.errors.len(), 1);
        let report = check_file("crates/x/src/b.rs", "// fss-lint: end\n");
        assert_eq!(report.errors.len(), 1);
        let report = check_file(
            "crates/x/src/c.rs",
            "// fss-lint: hot-path\n// fss-lint: hot-path\n// fss-lint: end\n",
        );
        assert_eq!(report.errors.len(), 1);
    }

    #[test]
    fn fss004_narrowing_casts_in_protocol_state_only() {
        let src = "fn f(x: usize) -> u16 { x as u16 }\nfn g(x: u64) -> u64 { x as u64 }\n";
        assert_eq!(
            codes("crates/gossip/src/buffer.rs", src),
            vec![(RuleCode::Fss004, 1)]
        );
        assert_eq!(
            codes("crates/core/src/fast.rs", src),
            vec![(RuleCode::Fss004, 1)]
        );
        assert!(codes("crates/metrics/src/sketch.rs", src).is_empty());
        // `as usize` / `as u64` widenings and test modules are exempt.
        let test_src = "#[cfg(test)]\nmod tests { fn f(x: usize) { let _ = x as u8; } }\n";
        assert!(codes("crates/gossip/src/buffer.rs", test_src).is_empty());
    }

    #[test]
    fn fss005_unwrap_expect_in_library_code_only() {
        let src = "fn f(o: Option<u8>) -> u8 { o.unwrap() }\n\
                   fn g(o: Option<u8>) -> u8 { o.expect(\"msg\") }\n\
                   fn h(o: Option<u8>) -> u8 { o.unwrap_or(0) }\n\
                   fn k(r: Result<u8, u8>) -> u8 { r.unwrap_or_else(|_| 0) }\n";
        assert_eq!(
            codes("crates/x/src/lib.rs", src),
            vec![(RuleCode::Fss005, 1), (RuleCode::Fss005, 2)]
        );
        assert!(codes("crates/x/tests/it.rs", src).is_empty());
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f(o: Option<u8>) -> u8 { o.unwrap() }\n}\n";
        assert!(codes("crates/x/src/lib.rs", test_src).is_empty());
    }

    #[test]
    fn cfg_test_region_ends_at_matching_brace() {
        let src = "#[cfg(test)]\nmod tests { fn a() { o.unwrap(); } }\nfn shipped(o: Option<u8>) { o.unwrap(); }\n";
        assert_eq!(
            codes("crates/x/src/lib.rs", src),
            vec![(RuleCode::Fss005, 3)]
        );
    }

    #[test]
    fn cfg_test_with_extra_attributes() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn a() { o.unwrap(); } }\n";
        assert!(codes("crates/x/src/lib.rs", src).is_empty());
        let all = "#[cfg(all(test, feature = \"x\"))]\nfn t() { o.unwrap(); }\n";
        assert!(codes("crates/x/src/lib.rs", all).is_empty());
    }
}
