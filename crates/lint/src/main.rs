//! The `fss-lint` binary.
//!
//! ```text
//! fss-lint [--root DIR] [--list-waivers]
//! ```
//!
//! Exit status: 0 when the workspace is clean (no unwaived findings, no
//! stale waivers), 1 on violations, 2 on usage / configuration errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list_waivers = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("fss-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--list-waivers" => list_waivers = true,
            "--help" | "-h" => {
                println!("usage: fss-lint [--root DIR] [--list-waivers]");
                println!("lints the workspace against FSS001-FSS005 (see docs/lint.md)");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("fss-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("fss-lint: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match root.or_else(|| fss_lint::walk::find_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!(
                "fss-lint: no workspace root found from {} (pass --root)",
                cwd.display()
            );
            return ExitCode::from(2);
        }
    };

    match fss_lint::lint_workspace(&root) {
        Ok(outcome) => {
            if list_waivers {
                print!("{}", outcome.render_waivers());
            }
            print!("{}", outcome.render());
            if outcome.is_clean() {
                ExitCode::SUCCESS
            } else if outcome.annotation_errors.is_empty() {
                ExitCode::from(1)
            } else {
                ExitCode::from(2)
            }
        }
        Err(e) => {
            eprintln!("fss-lint: {e}");
            ExitCode::from(2)
        }
    }
}
