//! A purpose-built Rust surface lexer.
//!
//! `fss-lint` rules are textual (identifier and call-pattern matches), so the
//! one thing the lexer must get right is *where text stops being code*: line
//! comments, nested block comments, string / byte-string / raw-string / char
//! literals.  A rule that fires on `"Instant::now"` inside a doc comment or a
//! panic message would make the whole tool unusable.
//!
//! The lexer partitions a source file into contiguous [`Region`]s covering
//! every byte exactly once, and derives a **masked** copy of the source in
//! which every non-code byte (except newlines) is replaced by a space.  Rules
//! scan the masked text, so their matches can never land inside literals or
//! comments, while byte offsets — and therefore line/column numbers — remain
//! valid in the original source.
//!
//! The lexer never fails: unterminated literals and comments extend to end of
//! file (the compiler will reject such a file anyway; the linter just has to
//! not panic on it).

/// Classification of one source region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// Plain code (everything rules may look at).
    Code,
    /// `// ...` including doc comments `///` and `//!` (newline excluded).
    LineComment,
    /// `/* ... */`, nested arbitrarily deep.
    BlockComment,
    /// `"..."` or `b"..."` with escapes.
    Str,
    /// `r"..."` / `r#"..."#` / `br##"..."##` with any number of hashes.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'` — char and byte literals (not lifetimes).
    Char,
}

/// One contiguous byte range of a single kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    pub kind: RegionKind,
    /// Byte offset of the first byte of the region.
    pub start: usize,
    /// Byte offset one past the last byte of the region.
    pub end: usize,
}

/// Result of lexing one file.
#[derive(Debug, Clone)]
pub struct Lexed {
    /// Same byte length as the input; every byte of a non-code region is
    /// replaced by `b' '` unless it is `\n` (kept, so line numbers and byte
    /// offsets survive the masking).
    pub masked: Vec<u8>,
    /// Regions covering `0..source.len()` exactly, in order, without gaps.
    pub regions: Vec<Region>,
    /// Byte offset of the start of each line (`line_starts[0] == 0`).
    pub line_starts: Vec<usize>,
}

impl Lexed {
    /// 1-based line and column (in bytes) of a byte offset.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// The comment regions, with their original text extracted from `source`.
    ///
    /// Rules use this for the `// fss-lint: hot-path` region markers.
    pub fn comments<'a>(&self, source: &'a str) -> Vec<(Region, &'a str)> {
        self.regions
            .iter()
            .filter(|r| {
                matches!(r.kind, RegionKind::LineComment | RegionKind::BlockComment)
                    && source.is_char_boundary(r.start)
                    && source.is_char_boundary(r.end)
            })
            .map(|r| (r.clone(), &source[r.start..r.end]))
            .collect()
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `source` into code / comment / literal regions.  Never panics.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let len = bytes.len();
    let mut regions: Vec<Region> = Vec::new();
    let mut code_start = 0usize;
    let mut i = 0usize;

    // Closes the current code run (if non-empty) and pushes a non-code
    // region `start..end` of `kind`.
    fn push_region(
        regions: &mut Vec<Region>,
        code_start: &mut usize,
        kind: RegionKind,
        start: usize,
        end: usize,
    ) {
        if start > *code_start {
            regions.push(Region {
                kind: RegionKind::Code,
                start: *code_start,
                end: start,
            });
        }
        regions.push(Region { kind, start, end });
        *code_start = end;
    }

    while i < len {
        let b = bytes[i];
        match b {
            b'/' if i + 1 < len && bytes[i + 1] == b'/' => {
                let start = i;
                i += 2;
                while i < len && bytes[i] != b'\n' {
                    i += 1;
                }
                push_region(
                    &mut regions,
                    &mut code_start,
                    RegionKind::LineComment,
                    start,
                    i,
                );
            }
            b'/' if i + 1 < len && bytes[i + 1] == b'*' => {
                let start = i;
                i += 2;
                let mut depth = 1usize;
                while i < len && depth > 0 {
                    if i + 1 < len && bytes[i] == b'/' && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < len && bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                push_region(
                    &mut regions,
                    &mut code_start,
                    RegionKind::BlockComment,
                    start,
                    i,
                );
            }
            b'"' => {
                let start = i;
                i = scan_string(bytes, i + 1);
                push_region(&mut regions, &mut code_start, RegionKind::Str, start, i);
            }
            b'b' | b'r' if !prev_is_ident(bytes, i) => {
                // Possible prefixed literal: b"...", br"...", r"...", r#"..."#,
                // br#"..."#, b'x'.  `r#ident` (raw identifier) is code.
                if let Some((kind, end)) = scan_prefixed_literal(bytes, i) {
                    push_region(&mut regions, &mut code_start, kind, i, end);
                    i = end;
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal or lifetime.  A lifetime / loop label is `'`
                // followed by an identifier NOT closed by another `'`.
                if let Some(end) = scan_char_literal(bytes, i) {
                    push_region(&mut regions, &mut code_start, RegionKind::Char, i, end);
                    i = end;
                } else {
                    i += 1; // lifetime: the quote itself stays code
                }
            }
            _ => i += 1,
        }
    }
    if len > code_start {
        regions.push(Region {
            kind: RegionKind::Code,
            start: code_start,
            end: len,
        });
    }

    let mut masked = bytes.to_vec();
    for r in &regions {
        if r.kind != RegionKind::Code {
            for m in masked[r.start..r.end].iter_mut() {
                if *m != b'\n' {
                    *m = b' ';
                }
            }
        }
    }

    let mut line_starts = vec![0usize];
    for (pos, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            line_starts.push(pos + 1);
        }
    }

    Lexed {
        masked,
        regions,
        line_starts,
    }
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && is_ident_byte(bytes[i - 1])
}

/// Scans the body of a `"..."` string starting just after the opening quote;
/// returns the offset one past the closing quote (or EOF when unterminated).
fn scan_string(bytes: &[u8], mut i: usize) -> usize {
    let len = bytes.len();
    while i < len {
        match bytes[i] {
            b'\\' if i + 1 < len => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    len
}

/// Scans a literal starting with `b` or `r` at `start`.  Returns its kind and
/// end offset, or `None` when `start` begins a plain identifier instead.
fn scan_prefixed_literal(bytes: &[u8], start: usize) -> Option<(RegionKind, usize)> {
    let len = bytes.len();
    let mut i = start;
    let mut raw = false;
    if bytes[i] == b'b' {
        i += 1;
        if i < len && bytes[i] == b'r' {
            raw = true;
            i += 1;
        }
    } else {
        // bytes[start] == b'r'
        raw = true;
        i += 1;
    }
    if raw {
        let mut hashes = 0usize;
        while i < len && bytes[i] == b'#' {
            hashes += 1;
            i += 1;
        }
        if i < len && bytes[i] == b'"' {
            i += 1;
            // Ends at `"` followed by `hashes` hashes.
            while i < len {
                if bytes[i] == b'"'
                    && bytes[i + 1..].len() >= hashes
                    && bytes[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
                {
                    return Some((RegionKind::RawStr, i + 1 + hashes));
                }
                i += 1;
            }
            return Some((RegionKind::RawStr, len));
        }
        // `r#ident` raw identifier, or plain ident starting with b/r.
        return None;
    }
    // Non-raw b-prefix: b"..." or b'x'.
    if i < len && bytes[i] == b'"' {
        return Some((RegionKind::Str, scan_string(bytes, i + 1)));
    }
    if i < len && bytes[i] == b'\'' {
        return scan_char_literal(bytes, i).map(|end| (RegionKind::Char, end));
    }
    None
}

/// Scans a char literal whose opening quote is at `i`; returns its end, or
/// `None` when the quote starts a lifetime / loop label instead.
fn scan_char_literal(bytes: &[u8], i: usize) -> Option<usize> {
    let len = bytes.len();
    if i + 1 >= len {
        return None;
    }
    let next = bytes[i + 1];
    if next == b'\\' {
        // Escape: scan to the closing quote.
        let mut j = i + 2;
        while j < len {
            match bytes[j] {
                b'\\' if j + 1 < len => j += 2,
                b'\'' => return Some(j + 1),
                b'\n' => return None, // malformed; treat the quote as code
                _ => j += 1,
            }
        }
        return None;
    }
    if next == b'\'' {
        return None; // `''` is not a literal
    }
    if is_ident_byte(next) {
        // `'x'` is a char only when a quote follows immediately after ONE
        // character; `'abc` or `'a ` is a lifetime/label.  The character may
        // be multi-byte UTF-8.
        let char_len = utf8_len(next);
        let close = i + 1 + char_len;
        if close < len && bytes[close] == b'\'' {
            return Some(close + 1);
        }
        return None;
    }
    // Punctuation char like '(' — always a char literal if closed.
    let char_len = utf8_len(next);
    let close = i + 1 + char_len;
    if close < len && bytes[close] == b'\'' {
        return Some(close + 1);
    }
    None
}

/// Length in bytes of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        b if b >= 0xC0 => 2,
        _ => 1, // continuation byte: malformed input, advance one byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked(src: &str) -> String {
        String::from_utf8_lossy(&lex(src).masked).into_owned()
    }

    #[test]
    fn line_comment_is_masked_to_newline() {
        let m = masked("let x = 1; // Instant::now\nlet y = 2;");
        assert!(!m.contains("Instant"));
        assert!(m.contains("let y = 2;"));
        assert_eq!(m.len(), "let x = 1; // Instant::now\nlet y = 2;".len());
    }

    #[test]
    fn nested_block_comments() {
        let m = masked("a /* outer /* inner */ still comment */ b");
        assert_eq!(m, "a                                       b");
    }

    #[test]
    fn strings_and_escapes() {
        let m = masked(r#"call("quoted \" HashMap::new", x)"#);
        assert!(!m.contains("HashMap"));
        assert!(m.starts_with("call("));
        assert!(m.ends_with(", x)"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"vec![" unterminated? no "]"# ; done"###;
        let m = masked(src);
        assert!(!m.contains("vec!"));
        assert!(m.contains("; done"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let m = masked(r##"let b = b"Box::new"; let rb = br#"format!"#; x"##);
        assert!(!m.contains("Box::new"));
        assert!(!m.contains("format!"));
        assert!(m.contains("; x"));
    }

    #[test]
    fn raw_identifier_is_code() {
        let m = masked("fn r#match(r#type: u8) {}");
        assert_eq!(m, "fn r#match(r#type: u8) {}");
    }

    #[test]
    fn char_literals_masked_lifetimes_kept() {
        let m = masked(r#"fn f<'a>(x: &'a str) { let c = '\''; let d = '\u{41}'; let q = '"'; }"#);
        assert!(m.contains("fn f<'a>(x: &'a str)"));
        assert!(!m.contains(r"\u{41}"));
        // The comment-opening trap: '/' as a char must not start a comment.
        let m2 = masked("let s = '/'; let t = '*'; real()");
        assert!(m2.contains("real()"));
        assert!(!m2.contains('/'));
    }

    #[test]
    fn quote_in_string_does_not_open_char() {
        // A string containing an apostrophe must not derail later lexing.
        let m = masked(r#"let s = "it's"; Instant::now()"#);
        assert!(m.contains("Instant::now()"));
        assert!(!m.contains("it's"));
    }

    #[test]
    fn comment_markers_inside_strings_are_inert() {
        let m = masked(r#"let s = "// not a comment"; after()"#);
        assert!(m.contains("after()"));
        let m2 = masked(r#"let s = "/* not"; open()"#);
        assert!(m2.contains("open()"));
    }

    #[test]
    fn string_markers_inside_comments_are_inert() {
        let m = masked("// a \" dangling quote\nreal_code()");
        assert!(m.contains("real_code()"));
        let m2 = masked("/* \" */ after()");
        assert!(m2.contains("after()"));
    }

    #[test]
    fn unterminated_constructs_reach_eof_without_panicking() {
        for src in [
            "/* never closed",
            "\"never closed",
            "r#\"never closed",
            "b'",
        ] {
            let lexed = lex(src);
            assert_eq!(
                lexed.regions.last().map(|r| r.end),
                Some(src.len()),
                "input {src:?}"
            );
        }
    }

    #[test]
    fn regions_partition_the_input() {
        let src = "fn main() { /* c */ let s = \"x\"; } // tail";
        let lexed = lex(src);
        let mut cursor = 0;
        for r in &lexed.regions {
            assert_eq!(r.start, cursor, "gap before region {r:?}");
            assert!(r.end > r.start);
            cursor = r.end;
        }
        assert_eq!(cursor, src.len());
    }

    #[test]
    fn line_col_is_one_based() {
        let lexed = lex("ab\ncd\n");
        assert_eq!(lexed.line_col(0), (1, 1));
        assert_eq!(lexed.line_col(1), (1, 2));
        assert_eq!(lexed.line_col(3), (2, 1));
        assert_eq!(lexed.line_col(4), (2, 2));
    }

    #[test]
    fn comments_extract_original_text() {
        let src = "x(); // fss-lint: hot-path\n/* block */";
        let lexed = lex(src);
        let comments = lexed.comments(src);
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].1, "// fss-lint: hot-path");
        assert_eq!(comments[1].1, "/* block */");
    }
}
