//! `lint.toml` — the checked-in waiver baseline.
//!
//! The linter suppresses findings **only** through this file.  Every waiver
//! names a rule code, a file-scoped path pattern, and a mandatory non-empty
//! reason; a waiver that matches no current finding is *stale* and fails the
//! run, so the baseline can only shrink unless someone consciously widens it
//! in review.
//!
//! The parser accepts the small TOML subset the file needs (the workspace
//! builds offline, so no `toml` crate):
//!
//! ```toml
//! # comment
//! [[waiver]]
//! code = "FSS005"
//! path = "crates/gossip/src/buffer.rs"
//! reason = "why aborting / truncating here is correct"
//! ```
//!
//! `path` is matched against workspace-relative `/`-separated file paths;
//! `*` matches within one path segment, `**` matches across segments.

use crate::rules::RuleCode;
use std::fmt;

/// One waiver entry from `lint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    pub code: RuleCode,
    pub path: String,
    pub reason: String,
    /// 1-based line of the `[[waiver]]` header, for error reporting.
    pub line: usize,
}

impl Waiver {
    /// Whether this waiver covers a finding of `code` in `rel_path`.
    pub fn matches(&self, code: RuleCode, rel_path: &str) -> bool {
        self.code == code && glob_match(&self.path, rel_path)
    }
}

/// A `lint.toml` syntax or validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

/// Parses the waiver baseline.  An empty or missing file means no waivers.
pub fn parse_waivers(text: &str) -> Result<Vec<Waiver>, ConfigError> {
    struct Partial {
        line: usize,
        code: Option<RuleCode>,
        path: Option<String>,
        reason: Option<String>,
    }

    fn finish(p: Partial) -> Result<Waiver, ConfigError> {
        let err = |message: String| ConfigError {
            line: p.line,
            message,
        };
        let code = p
            .code
            .ok_or_else(|| err("waiver is missing `code`".into()))?;
        let path = p
            .path
            .ok_or_else(|| err("waiver is missing `path`".into()))?;
        let reason = p
            .reason
            .ok_or_else(|| err("waiver is missing `reason`".into()))?;
        if reason.trim().is_empty() {
            return Err(err("waiver `reason` must not be empty".into()));
        }
        if path.trim().is_empty() {
            return Err(err("waiver `path` must not be empty".into()));
        }
        Ok(Waiver {
            code,
            path,
            reason,
            line: p.line,
        })
    }

    let mut waivers = Vec::new();
    let mut current: Option<Partial> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[waiver]]" {
            if let Some(prev) = current.take() {
                waivers.push(finish(prev)?);
            }
            current = Some(Partial {
                line: lineno,
                code: None,
                path: None,
                reason: None,
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(ConfigError {
                line: lineno,
                message: format!("unsupported table `{line}` (only [[waiver]] entries)"),
            });
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ConfigError {
                line: lineno,
                message: format!("expected `key = \"value\"`, got `{line}`"),
            });
        };
        let Some(current) = current.as_mut() else {
            return Err(ConfigError {
                line: lineno,
                message: "key outside a [[waiver]] entry".into(),
            });
        };
        let value = parse_string(value.trim()).ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("value for `{}` must be a double-quoted string", key.trim()),
        })?;
        match key.trim() {
            "code" => {
                let code = RuleCode::parse(&value).ok_or_else(|| ConfigError {
                    line: lineno,
                    message: format!("unknown rule code `{value}`"),
                })?;
                current.code = Some(code);
            }
            "path" => current.path = Some(value),
            "reason" => current.reason = Some(value),
            other => {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("unknown waiver key `{other}`"),
                })
            }
        }
    }
    if let Some(prev) = current.take() {
        waivers.push(finish(prev)?);
    }
    Ok(waivers)
}

/// Parses a double-quoted TOML basic string (no escapes beyond `\"` and
/// `\\`, which the baseline never needs but costs nothing to accept).
fn parse_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '"' {
            return None; // unescaped quote: the suffix we stripped wasn't the end
        }
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Glob match over `/`-separated paths: `*` within a segment, `**` across.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    fn segments(s: &str) -> Vec<&str> {
        s.split('/').collect()
    }
    fn match_segments(pat: &[&str], path: &[&str]) -> bool {
        match pat.first() {
            None => path.is_empty(),
            Some(&"**") => (0..=path.len()).any(|skip| match_segments(&pat[1..], &path[skip..])),
            Some(seg) => match path.first() {
                Some(head) => match_segment(seg, head) && match_segments(&pat[1..], &path[1..]),
                None => false,
            },
        }
    }
    fn match_segment(pat: &str, text: &str) -> bool {
        // Simple `*` wildcard within one segment.
        let parts: Vec<&str> = pat.split('*').collect();
        if parts.len() == 1 {
            return pat == text;
        }
        let mut rest = text;
        for (i, part) in parts.iter().enumerate() {
            if i == 0 {
                rest = match rest.strip_prefix(part) {
                    Some(r) => r,
                    None => return false,
                };
            } else if i == parts.len() - 1 {
                return part.is_empty() || rest.ends_with(part);
            } else if !part.is_empty() {
                match rest.find(part) {
                    Some(pos) => rest = &rest[pos + part.len()..],
                    None => return false,
                }
            }
        }
        true
    }
    match_segments(&segments(pattern), &segments(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_waivers() {
        let text = r#"
# baseline
[[waiver]]
code = "FSS005"
path = "crates/gossip/src/buffer.rs"
reason = "invariant-backed"

[[waiver]]
code = "FSS002"
path = "examples/*.rs"
reason = "wall-clock display only"
"#;
        let waivers = parse_waivers(text).unwrap();
        assert_eq!(waivers.len(), 2);
        assert_eq!(waivers[0].code, RuleCode::Fss005);
        assert!(waivers[0].matches(RuleCode::Fss005, "crates/gossip/src/buffer.rs"));
        assert!(!waivers[0].matches(RuleCode::Fss004, "crates/gossip/src/buffer.rs"));
        assert!(waivers[1].matches(RuleCode::Fss002, "examples/flash_crowd.rs"));
        assert!(!waivers[1].matches(RuleCode::Fss002, "examples/sub/deep.rs"));
    }

    #[test]
    fn missing_or_empty_reason_is_rejected() {
        let missing = "[[waiver]]\ncode = \"FSS001\"\npath = \"src/lib.rs\"\n";
        assert!(parse_waivers(missing).is_err());
        let empty = "[[waiver]]\ncode = \"FSS001\"\npath = \"src/lib.rs\"\nreason = \"  \"\n";
        assert!(parse_waivers(empty).is_err());
    }

    #[test]
    fn unknown_code_and_keys_are_rejected() {
        assert!(
            parse_waivers("[[waiver]]\ncode = \"FSS999\"\npath = \"x\"\nreason = \"r\"\n").is_err()
        );
        assert!(parse_waivers("[[waiver]]\nbogus = \"v\"\n").is_err());
        assert!(parse_waivers("code = \"FSS001\"\n").is_err());
        assert!(parse_waivers("[other]\n").is_err());
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match("crates/**/*.rs", "crates/gossip/src/buffer.rs"));
        assert!(glob_match("**/buffer.rs", "crates/gossip/src/buffer.rs"));
        assert!(glob_match("examples/*.rs", "examples/demo.rs"));
        assert!(!glob_match("examples/*.rs", "examples/a/b.rs"));
        assert!(glob_match(
            "crates/gossip/src/**",
            "crates/gossip/src/net.rs"
        ));
        assert!(!glob_match(
            "crates/gossip/src/*.rs",
            "crates/core/src/fast.rs"
        ));
        assert!(glob_match("a/**", "a"));
    }
}
