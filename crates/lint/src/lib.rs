//! `fss-lint` — the workspace invariant checker.
//!
//! The reproduction's headline claims are *invariants*: byte-identical
//! [`RuntimeReport`]s across worker/shard/stepping configurations, zero
//! steady-state heap allocation on the period hot path, and exact protocol
//! state arithmetic.  The test suite enforces them dynamically (golden
//! digests, counting allocators); this crate enforces them **statically**, at
//! the source level, where a single stray `HashMap` iteration or silently
//! truncating `as u16` would otherwise surface days later as a failed digest
//! bisect.
//!
//! The pipeline: a purpose-built Rust surface [`lexer`] masks out comments
//! and string/char literals so textual [`rules`] can never misfire inside
//! them; the [`engine`] walks the workspace, applies the rules, and resolves
//! findings against the checked-in `lint.toml` baseline ([`config`]), where
//! every waiver carries a rule code, a file-scoped pattern and a mandatory
//! reason.  Unwaived findings *and* stale waivers fail the run.
//!
//! Rule catalogue (details in `docs/lint.md`):
//!
//! | code   | enforces                                                        |
//! |--------|-----------------------------------------------------------------|
//! | FSS001 | no default-`RandomState` hash collections in library code       |
//! | FSS002 | no wall-clock / OS-entropy reads outside `crates/bench`         |
//! | FSS003 | no allocating calls inside annotated `hot-path` regions         |
//! | FSS004 | no unchecked narrowing `as` casts in protocol-state crates      |
//! | FSS005 | no `unwrap()` / `expect()` in non-test library code             |
//!
//! [`RuntimeReport`]: ../fss_metrics/report/struct.RuntimeReport.html

pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use engine::{lint_workspace, LintError, Outcome};
pub use rules::{check_file, Finding, RuleCode};
