//! The persistent, deterministic worker pool.
//!
//! `StreamingSystem::step` used to spawn `std::thread::scope` workers every
//! scheduling period — tens of microseconds of spawn/join cost per period,
//! multiplied by every period of every session.  [`WorkerPool`] replaces
//! that with long-lived worker threads that park between jobs, amortising
//! thread creation to **zero per period**, and implements the
//! [`JobExecutor`] contract so the same pool serves all three fan-out call
//! sites: the per-period scheduling sweep (`fss-gossip`), multi-channel
//! session stepping ([`SessionManager`](crate::SessionManager)) and scenario
//! sweeps (`fss-experiments`).
//!
//! # Determinism model
//!
//! Workers *steal chunks dynamically* (a shared cursor), which is the
//! fastest schedule — yet results are byte-identical for every pool size,
//! including the size-1 in-line pool, because of two invariants inherited
//! from the [`ScopedJob`] contract:
//!
//! 1. **chunk-pinned state** — a chunk writes only to state indexed by its
//!    *chunk index* (a scratch slot, a result slot), never to per-thread or
//!    shared state, so the thread→chunk assignment is unobservable;
//! 2. **completion barrier** — [`execute`](WorkerPool::execute) returns only
//!    after every chunk finished, so callers can merge chunk outputs in
//!    chunk order, reproducing the sequential order exactly.
//!
//! # Hot-path properties
//!
//! Dispatching a job publishes one raw (lifetime-erased) trait-object
//! pointer under a mutex and wakes the workers — no boxing, no channel
//! nodes, **no heap allocation**.  The zero-allocation test in `fss-bench`
//! covers the pool-backed parallel period loop.  A pool of size `n` runs
//! `n - 1` background threads; the submitting thread participates in chunk
//! execution, so `WorkerPool::new(1)` spawns nothing and degrades to an
//! in-line loop.
//!
//! A panicking chunk does not poison the pool: the panic is caught on the
//! worker, the job is still driven to completion, and the payload is
//! re-thrown on the submitting thread.

use fss_sim::exec::{JobExecutor, ScopedJob};
use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

thread_local! {
    /// True while this thread is executing a pool chunk.  A nested
    /// `execute` from inside a chunk (e.g. a channel's scheduling sweep
    /// dispatched from a session-stepping chunk) runs in-line instead of
    /// deadlocking on the busy pool — byte-identical by the `ScopedJob`
    /// contract.
    static IN_CHUNK: Cell<bool> = const { Cell::new(false) };
}

/// Lifetime-erased pointer to the job being executed.
///
/// Sound because [`WorkerPool::execute`] never returns before every chunk
/// has finished, so the borrow it erases strictly outlives all uses.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn ScopedJob + 'static));

// SAFETY: `ScopedJob: Sync`, so the underlying reference may be used from
// any thread; the pointer itself is only a capability to re-create that
// shared reference while `execute` blocks.
unsafe impl Send for JobPtr {}

/// State shared between the submitter and the workers, guarded by one mutex.
struct PoolState {
    /// The job currently being executed, if any.
    job: Option<JobPtr>,
    /// Total chunks of the current job.
    chunks: usize,
    /// Next chunk index to claim (the dynamic-stealing cursor).
    next_chunk: usize,
    /// Chunks that have finished running.
    finished: usize,
    /// First panic payload observed while running the current job.
    panic: Option<Box<dyn Any + Send + 'static>>,
    /// Set once, on drop: workers exit their loop.
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new job (or shutdown).
    work_cv: Condvar,
    /// The submitter waits here for the last chunk to finish.
    done_cv: Condvar,
}

/// A persistent pool of worker threads executing [`ScopedJob`]s.
///
/// See the module docs for the determinism model.  The pool is meant to be
/// created once per process (or per experiment) and shared via
/// [`Arc`]: `StreamingSystem::set_executor`, the
/// [`SessionManager`](crate::SessionManager) and
/// `fss_experiments::sweep_sizes_on` all borrow the same pool.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Jobs dispatched so far (in-line or fanned out) — an observability
    /// counter for benchmarks comparing execution strategies.
    dispatches: AtomicU64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool of `workers` total workers (the submitting thread
    /// counts as one, so `workers - 1` background threads are spawned;
    /// `new(1)` spawns none and executes jobs in-line).
    ///
    /// # Panics
    /// Panics if `workers` is zero or a worker thread cannot be spawned.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a worker pool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                chunks: 0,
                next_chunk: 0,
                finished: 0,
                panic: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fss-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            dispatches: AtomicU64::new(0),
        }
    }

    /// Creates a pool sized to the machine (`available_parallelism`, at
    /// least 1).
    pub fn with_available_parallelism() -> Self {
        Self::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Total worker count (background threads + the submitting thread).
    pub fn workers(&self) -> usize {
        self.handles.len() + 1
    }

    /// Number of non-empty jobs dispatched through this pool so far
    /// (in-line fast-path jobs included).  Purely observational: barrier
    /// session stepping pays one dispatch per period, pipelined stepping
    /// one per *round* — this counter is how benchmarks report that
    /// difference without wall-clock noise.
    pub fn dispatches(&self) -> u64 {
        self.dispatches.load(Ordering::Relaxed)
    }

    /// Shares the pool as a [`JobExecutor`] trait object, the form
    /// `StreamingSystem::set_executor` takes.
    pub fn as_executor(self: &Arc<Self>) -> Arc<dyn JobExecutor> {
        Arc::clone(self) as Arc<dyn JobExecutor>
    }

    /// Runs all `chunks` of `job` and returns once every chunk finished.
    ///
    /// The submitting thread participates in chunk execution.  A nested
    /// call from inside a chunk runs in-line (no deadlock); concurrent
    /// submitters from other threads queue for the job slot.  If any chunk
    /// panicked, the first payload is re-thrown here after the job has
    /// fully drained (the pool itself stays usable).
    ///
    /// # Panics
    /// Re-throws the first chunk panic.
    pub fn execute(&self, chunks: usize, job: &dyn ScopedJob) {
        if chunks == 0 {
            return;
        }
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        if self.handles.is_empty() || chunks == 1 || IN_CHUNK.with(Cell::get) {
            // In-line path: nothing worth handing to background workers, or
            // a nested dispatch from inside a chunk of this (or another)
            // pool — running serially is byte-identical either way.
            for chunk in 0..chunks {
                job.run_chunk(chunk);
            }
            return;
        }

        // Publish the job.  SAFETY (of the transmute): this function blocks
        // until `finished == chunks`, and workers never touch the pointer
        // after finishing their last chunk, so the erased borrow outlives
        // every dereference.
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<*const (dyn ScopedJob + '_), *const (dyn ScopedJob + 'static)>(
                job as *const dyn ScopedJob,
            )
        });
        {
            let mut state = self.shared.state.lock().expect("pool mutex");
            // Another submitting thread may be mid-job; queue behind it.
            while state.job.is_some() {
                state = self.shared.done_cv.wait(state).expect("pool mutex");
            }
            state.job = Some(ptr);
            state.chunks = chunks;
            state.next_chunk = 0;
            state.finished = 0;
            debug_assert!(state.panic.is_none());
        }
        // The submitting thread takes chunks too, so at most `chunks - 1`
        // background workers can find work: waking more would only cost
        // spurious context switches on small jobs.
        if chunks > self.handles.len() {
            self.shared.work_cv.notify_all();
        } else {
            for _ in 0..chunks - 1 {
                self.shared.work_cv.notify_one();
            }
        }

        // Participate, then wait for the stragglers.  Only this thread can
        // clear the job slot it published, so `finished`/`chunks` cannot be
        // recycled by a queued submitter while we wait.
        let state = self.shared.state.lock().expect("pool mutex");
        let mut state = run_chunks(state, &self.shared, ptr);
        while state.finished < state.chunks {
            state = self.shared.done_cv.wait(state).expect("pool mutex");
        }
        state.job = None;
        let panic = state.panic.take();
        // Wake any submitter queued for the job slot.
        self.shared.done_cv.notify_all();
        drop(state);
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }
}

impl JobExecutor for WorkerPool {
    fn execute(&self, chunks: usize, job: &dyn ScopedJob) {
        WorkerPool::execute(self, chunks, job);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool mutex");
            state.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Claims and runs chunks of the current job until the cursor is exhausted.
/// Entered and exited holding the state lock; the lock is released around
/// each chunk execution.
fn run_chunks<'a>(
    mut state: MutexGuard<'a, PoolState>,
    shared: &'a Shared,
    job: JobPtr,
) -> MutexGuard<'a, PoolState> {
    while state.next_chunk < state.chunks {
        let chunk = state.next_chunk;
        state.next_chunk += 1;
        drop(state);
        // SAFETY: the submitter blocks in `execute` until every chunk
        // finished, so the job reference is live for the whole run.
        let result = catch_unwind(AssertUnwindSafe(|| {
            IN_CHUNK.with(|flag| flag.set(true));
            unsafe { (*job.0).run_chunk(chunk) };
            IN_CHUNK.with(|flag| flag.set(false));
        }));
        if result.is_err() {
            // The panic unwound past the reset above.
            IN_CHUNK.with(|flag| flag.set(false));
        }
        state = shared.state.lock().expect("pool mutex");
        state.finished += 1;
        if let Err(payload) = result {
            state.panic.get_or_insert(payload);
        }
        if state.finished == state.chunks {
            shared.done_cv.notify_all();
        }
    }
    state
}

fn worker_loop(shared: &Shared) {
    let mut state = shared.state.lock().expect("pool mutex");
    loop {
        if state.shutdown {
            return;
        }
        if let Some(job) = state.job.filter(|_| state.next_chunk < state.chunks) {
            state = run_chunks(state, shared, job);
        } else {
            state = shared.work_cv.wait(state).expect("pool mutex");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_sim::exec::DisjointSlots;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn fill_slots(pool: &WorkerPool, chunks: usize) -> Vec<usize> {
        let mut out = vec![0usize; chunks];
        let slots = DisjointSlots::new(&mut out);
        pool.execute(chunks, &|i: usize| {
            // SAFETY: chunk i touches only slot i.
            let slot = unsafe { slots.slot(i) };
            *slot = i * i;
        });
        out
    }

    #[test]
    fn results_are_identical_across_pool_sizes() {
        let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
        for workers in [1, 2, 4, 7] {
            let pool = WorkerPool::new(workers);
            assert_eq!(pool.workers(), workers);
            assert_eq!(fill_slots(&pool, 37), expected, "workers = {workers}");
        }
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = WorkerPool::new(4);
        for round in 0..50 {
            let hits = AtomicUsize::new(0);
            pool.execute(round % 9, &|_i: usize| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), round % 9);
        }
    }

    #[test]
    fn single_worker_pool_runs_in_line() {
        let pool = WorkerPool::new(1);
        assert!(pool.handles.is_empty());
        assert_eq!(fill_slots(&pool, 5), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn chunk_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(3);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.execute(8, &|i: usize| {
                if i == 5 {
                    panic!("chunk 5 exploded");
                }
            });
        }));
        assert!(outcome.is_err(), "panic must propagate to the submitter");
        // The pool keeps working after a panicked job.
        assert_eq!(fill_slots(&pool, 4), vec![0, 1, 4, 9]);
    }

    #[test]
    fn executor_trait_object_dispatch() {
        let pool = Arc::new(WorkerPool::new(2));
        let executor = pool.as_executor();
        let counter = AtomicUsize::new(0);
        executor.execute(16, &|_i: usize| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = WorkerPool::new(0);
    }
}
