//! `fss-runtime` — the execution layer above a single [`StreamingSystem`].
//!
//! The reproduction's lower crates simulate *one* stream; the ROADMAP's
//! north star (millions of users, many scenarios, hardware-speed execution)
//! needs a runtime that hosts many sessions and keeps the hardware busy
//! without ever sacrificing determinism.  This crate provides the two
//! tightly coupled pieces:
//!
//! * [`WorkerPool`] — a **persistent, deterministic worker pool**.  Long-
//!   lived workers execute [`fss_sim::ScopedJob`]s with dynamically stolen
//!   chunks whose outputs land in chunk-indexed slots, so results are
//!   byte-identical for every pool size.  It replaces the per-period
//!   `std::thread::scope` fan-out of the gossip scheduling sweep
//!   (`StreamingSystem::set_executor`), steps the session manager's
//!   channels, and runs `fss-experiments` scenario sweeps — one pool, three
//!   call sites, zero thread spawns per period.
//!
//! * [`SessionManager`] — a **multi-channel session manager**.  Hosts `N`
//!   concurrent channels (independent streaming systems) sharded across the
//!   pool and drives a viewer *channel-zapping* workload: every period a
//!   fraction of each channel's viewers leave and join another channel,
//!   and the time until their playback starts there is recorded as that
//!   viewer's zap latency ([`fss_metrics::ZapSummary`]).  The aggregated
//!   [`RuntimeReport`] is deterministic — identical bytes for 1 or N
//!   workers.
//!
//! See `docs/runtime.md` for the determinism model and the zap-latency
//! definition.
//!
//! [`StreamingSystem`]: fss_gossip::StreamingSystem

#![warn(missing_docs)]

pub mod pool;
pub mod session;

pub use pool::WorkerPool;
pub use session::{ChannelReport, RuntimeReport, SessionConfig, SessionManager};
