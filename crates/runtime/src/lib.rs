//! `fss-runtime` — the execution layer above a single [`StreamingSystem`].
//!
//! The reproduction's lower crates simulate *one* stream; the ROADMAP's
//! north star (millions of users, many scenarios, hardware-speed execution)
//! needs a runtime that hosts many sessions and keeps the hardware busy
//! without ever sacrificing determinism.  This crate provides three tightly
//! coupled pieces:
//!
//! * [`WorkerPool`] — a **persistent, deterministic worker pool**.  Long-
//!   lived workers execute [`fss_sim::ScopedJob`]s with dynamically stolen
//!   chunks whose outputs land in chunk-indexed slots, so results are
//!   byte-identical for every pool size.  It replaces the per-period
//!   `std::thread::scope` fan-out of the gossip scheduling sweep
//!   (`StreamingSystem::set_executor`), steps the session manager's
//!   channels, and runs `fss-experiments` scenario sweeps — one pool, three
//!   call sites, zero thread spawns per period.
//!
//! * [`SessionManager`] — a **multi-channel session manager**.  Hosts `N`
//!   concurrent channels (independent streaming systems) on the pool and
//!   drives a viewer *channel-zapping* workload; each arrival's time-to-
//!   playback is its zap latency ([`fss_metrics::ZapSummary`]).  Channels
//!   advance either in lockstep ([`SteppingMode::Barrier`]) or as a
//!   **dependency-tracked pipeline** ([`SteppingMode::Pipelined`]) in which
//!   a zap batch synchronises only its two endpoint channels and everyone
//!   else runs ahead (bounded by `run_ahead`) — with byte-identical
//!   [`RuntimeReport`]s either way, for any pool size.
//!
//! * [`zap`] — **pluggable zap workloads** ([`ZapSchedule`]): uniform
//!   targets, Zipf(α) popularity skew ([`zap::ZipfSampler`]) and
//!   flash-crowd storms ([`zap::Storm`]), all generating their batches
//!   from configuration and seed alone so the pipeline can compute every
//!   channel's sync points up front.
//!
//! See `docs/runtime.md` for the determinism model, the pipelining design
//! and the zap-latency definition.
//!
//! [`StreamingSystem`]: fss_gossip::StreamingSystem

#![warn(missing_docs)]

pub mod pool;
pub mod session;
pub mod zap;

pub use pool::WorkerPool;
pub use session::{
    AdmissionControl, ChannelReport, RuntimeReport, SessionConfig, SessionManager, SteppingMode,
};
pub use zap::{ZapSchedule, ZapWorkload};
