//! Multi-channel session management with pipelined stepping and pluggable
//! zap workloads.
//!
//! The paper evaluates *one* stream per process; real deployments (and the
//! CliqueStream / live-entertainment settings in PAPERS.md) serve many
//! concurrent channels with viewers hopping between them — which makes
//! channel-switch latency a first-class metric.  [`SessionManager`] hosts
//! `N` independent [`StreamingSystem`]s (one per channel) on the persistent
//! [`WorkerPool`] and drives a deterministic viewer-zapping workload
//! described by a [`ZapSchedule`] (uniform, Zipf-skewed or flash-crowd —
//! see [`crate::zap`]).
//!
//! # Stepping modes
//!
//! * [`SteppingMode::Barrier`] — the classic lockstep: every period, zap
//!   batches are applied, then **all** channels step one period together on
//!   the pool.  One global barrier per period.
//! * [`SteppingMode::Pipelined`] — channels advance independently: each
//!   channel runs ahead as a pool job until it hits either its next *sync
//!   point* (a period boundary where a zap batch names it) or the
//!   `run_ahead` bound (at most `K` periods ahead of the slowest channel).
//!   A zap batch synchronises **only its two endpoint channels**; channels
//!   not named by any nearby batch never wait.
//!
//! Both modes produce **byte-identical** [`RuntimeReport`]s, for every pool
//! size — the test-suite asserts it at 1/2/4/7 workers under churn and
//! flash-crowd storms.  The equivalence rests on three invariants:
//!
//! 1. **state-independent planning** — the schedule decides *when* and
//!    *between which channels* viewers move from its own seed and
//!    population model alone (see [`crate::zap`]), so the plan exists
//!    before any channel steps;
//! 2. **per-batch RNG streams** — *which* viewers move and *where* they
//!    attach is resolved against live channel state with an RNG seeded
//!    from the batch's global index, so resolution reads only the two
//!    endpoint channels at their shared boundary;
//! 3. **channel-local everything else** — stepping, churn, membership
//!    repair and zap-latency harvesting touch one channel each, so their
//!    interleaving across channels is unobservable.
//!
//! # Zap latency
//!
//! Each arrival is tracked until its playback starts (`Q` consecutive
//! segments); the elapsed time is that viewer's **zap latency**, harvested
//! channel-locally after every period step and aggregated through
//! [`fss_metrics::ZapSummary`] (per channel and cross-channel) plus
//! [`fss_metrics::ZapLoadSummary`] (the arrival skew across channels).
//!
//! [`StreamingSystem`]: fss_gossip::StreamingSystem

use crate::pool::WorkerPool;
use crate::zap::{ZapBatch, ZapSchedule, ZapWorkload};
use fss_gossip::{
    AdmissionPipeline, AdmissionScratch, GossipConfig, SegmentScheduler, StreamingSystem,
    TrafficCounters, ViewConfig,
};
use fss_metrics::{
    AdmissionSummary, DepthWindow, MemSummary, QoeWindow, QuantileSketch, Scorecard, Timeline,
    ZapLoadSummary, ZapSummary,
};
use fss_overlay::{
    BandwidthConfig, ChurnModel, NetworkConfig, OverlayBuilder, OverlayConfig, PeerAttrs, PeerId,
};
use fss_sim::exec::DisjointSlots;
use fss_trace::{GeneratorConfig, TraceGenerator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::Arc;

/// Configuration of a multi-channel session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SessionConfig {
    /// Number of concurrent channels (independent streaming systems).
    pub channels: usize,
    /// Overlay size of each channel at start-up.
    pub viewers_per_channel: usize,
    /// Fraction of each channel's viewers zapping away per period (the
    /// background rate of the default workload).
    pub zap_fraction: f64,
    /// Neighbours a zapping viewer attaches to in its target channel
    /// (the paper's `M`).
    pub zap_degree: usize,
    /// Minimum neighbour count maintained inside each channel.
    pub min_degree: usize,
    /// Master seed; every channel derives its own trace/overlay/zap streams.
    pub seed: u64,
    /// Protocol parameters shared by all channels.
    pub gossip: GossipConfig,
    /// Membership-directory admission control (rate-limited join queue and
    /// bounded candidate views).  The default reproduces the legacy
    /// admit-everything-at-the-boundary behaviour exactly.
    pub admission: AdmissionControl,
    /// Optional message-level network model (latency / loss / jitter).
    /// `None` (the default) keeps the channels in period-lockstep stepping;
    /// `Some` installs an event-driven [`fss_gossip::NetworkModel`] per
    /// channel, with per-channel fault-stream seeds derived from the master
    /// seed.  The ideal configuration reproduces period-mode reports
    /// byte-for-byte (pinned by the golden-digest suite).
    pub network: Option<NetworkConfig>,
}

/// Admission-control knobs of the membership directory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AdmissionControl {
    /// Per-channel cap on zap arrivals admitted per period boundary.  `None`
    /// (the default) admits every arrival at its batch boundary — the
    /// legacy behaviour, byte-identical to the pre-directory runtime.
    /// `Some(k)` routes arrivals through a FIFO join queue drained at up to
    /// `k` per boundary, so flash crowds admit over several boundaries.
    pub max_admits_per_period: Option<usize>,
    /// Bound on each channel's sampled candidate list (a CliqueStream-style
    /// partial view).  `None` (the default) hands newcomers the full
    /// membership.
    pub view_bound: Option<usize>,
}

impl AdmissionControl {
    /// The legacy behaviour: unlimited admissions, exact views.
    pub fn unlimited() -> Self {
        AdmissionControl {
            max_admits_per_period: None,
            view_bound: None,
        }
    }

    /// Rate-limits admissions to `k` per channel per period boundary.
    pub fn rate_limited(k: usize) -> Self {
        AdmissionControl {
            max_admits_per_period: Some(k),
            view_bound: None,
        }
    }
}

impl Default for AdmissionControl {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl SessionConfig {
    /// Paper-flavoured defaults: `M = 5`, 2 % of viewers zapping per period.
    pub fn paper_default(channels: usize, viewers_per_channel: usize) -> Self {
        SessionConfig {
            channels,
            viewers_per_channel,
            zap_fraction: 0.02,
            zap_degree: 5,
            min_degree: 5,
            seed: 0x5A50_0001,
            gossip: GossipConfig::paper_default(),
            admission: AdmissionControl::unlimited(),
            network: None,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels < 2 {
            return Err("a zapping session needs at least 2 channels".into());
        }
        if self.viewers_per_channel <= self.min_degree {
            return Err(format!(
                "{} viewers cannot sustain a minimum degree of {}",
                self.viewers_per_channel, self.min_degree
            ));
        }
        if !(0.0..=0.5).contains(&self.zap_fraction) || !self.zap_fraction.is_finite() {
            return Err(format!(
                "zap_fraction {} outside the sensible range [0, 0.5]",
                self.zap_fraction
            ));
        }
        if self.zap_degree == 0 {
            return Err("zap_degree must be positive".into());
        }
        if self.admission.max_admits_per_period == Some(0) {
            return Err("max_admits_per_period must be positive (use None to disable)".into());
        }
        if let Some(bound) = self.admission.view_bound {
            if bound < self.zap_degree {
                return Err(format!(
                    "view_bound {bound} cannot hand out {} neighbours per arrival",
                    self.zap_degree
                ));
            }
        }
        if let Some(network) = self.network {
            network.validate()?;
        }
        self.gossip.validate().map_err(|e| e.to_string())
    }
}

/// How the manager advances its channels through the measured periods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteppingMode {
    /// Lockstep: one global barrier per period (all channels step period
    /// `P` before any channel starts period `P + 1`).
    Barrier,
    /// Channels advance independently, pausing only at their own zap-batch
    /// boundaries and at the run-ahead bound.
    Pipelined {
        /// Maximum periods any channel may run ahead of the slowest one
        /// (clamped to at least 1).  Bounds the live state divergence
        /// between channels without affecting any result.
        run_ahead: u64,
    },
}

impl SteppingMode {
    /// The pipelined mode with the default 8-period run-ahead bound.
    pub fn pipelined() -> Self {
        SteppingMode::Pipelined { run_ahead: 8 }
    }
}

/// A zap arrival still waiting for playback to start.
#[derive(Debug, Clone, Copy)]
struct PendingZap {
    viewer: PeerId,
    joined_period: u64,
}

/// A zap arrival waiting in a channel's rate-limited admission queue: its
/// attributes are fixed (drawn from the batch's RNG stream when it was
/// requested) but it is not yet an overlay member — its neighbour set is
/// sampled from the live directory view at admission time.
#[derive(Debug, Clone, Copy)]
struct QueuedArrival {
    attrs: PeerAttrs,
    /// Boundary at which the arrival asked to join (zap latency and
    /// admission delay are both measured from here).
    requested_period: u64,
}

/// One hosted channel: a streaming system plus its zap bookkeeping.  All
/// fields are channel-local, so a pool chunk may advance one channel (steps,
/// admission-queue drains, harvesting) without observing any other.
struct Channel {
    system: StreamingSystem,
    source: PeerId,
    /// Periods this channel has completed (its position in the pipeline).
    period: u64,
    zaps_in: usize,
    zaps_out: usize,
    /// Startup delays of completed zap arrivals into this channel, folded
    /// into an O(1)-memory streaming sketch (unit = the period length `τ`,
    /// so every whole-period delay lands exactly on the sketch grid and the
    /// derived summary is bitwise equal to the old per-event vector's).
    arrival_latencies: QuantileSketch,
    /// Arrivals that departed again (zap or churn) before their playback
    /// started — they never completed and never will, so they stay in the
    /// never-reached-playback side of the zap statistics.
    zaps_abandoned: usize,
    /// Arrivals whose playback has not started yet.
    pending: Vec<PendingZap>,

    // --- rate-limited admission (active when `admit_limit` is set) -------
    /// Per-boundary admission cap (`config.admission.max_admits_per_period`).
    admit_limit: Option<usize>,
    /// Neighbours sampled per admitted arrival (`config.zap_degree`).
    zap_degree: usize,
    /// FIFO of arrivals waiting for an admission slot.
    queue: VecDeque<QueuedArrival>,
    /// Channel-local RNG stream of queue-drain neighbour sampling — drains
    /// happen at deterministic channel-local boundaries, so the stream is
    /// identical in barrier and pipelined mode.
    admission_rng: SmallRng,
    /// Admission delays of every arrival admitted via the queue, including
    /// zero-delay same-boundary admissions, folded into a streaming sketch
    /// (unit = `τ`, same exactness argument as `arrival_latencies`).
    admission_delays: QuantileSketch,
    /// Admissions that waited at least one boundary in the queue — kept as
    /// an explicit counter because the sketch's bucket 0 conflates zero
    /// with sub-tick delays.
    deferred: usize,
    /// Deepest the queue has run.
    max_queue_depth: usize,
    /// Queue depth observed after the drain at each boundary (index =
    /// period), recorded only while the limiter is active.
    queue_depth_by_period: Vec<usize>,
    /// Pooled buffers of the drain path.
    admit_scratch: AdmissionScratch,

    // --- streaming QoE telemetry (see `docs/observability.md`) -----------
    /// Bounded timeline of the channel's per-period QoE rows — one
    /// [`QoeWindow`] pushed per step, decimated 2× whenever the ring fills,
    /// so memory stays O([`TIMELINE_WINDOWS`]) for any run length.
    qoe_timeline: Timeline<QoeWindow>,
    /// Bounded timeline of the post-drain admission-queue depth, one gauge
    /// per boundary (zero while the limiter is off, keeping every
    /// channel's timeline shape-aligned for the report fold).
    depth_timeline: Timeline<DepthWindow>,
    /// Startup delays (first frame after joining), unit = `τ` — the exact
    /// sketch-grid argument of `arrival_latencies` applies.
    startup_delays: QuantileSketch,
    /// Completed stall-episode durations, unit = `τ`.
    stall_durations: QuantileSketch,
}

/// Windows kept per bounded telemetry timeline.  At 64 windows a run's
/// whole QoE history fits in a few KiB per channel; longer runs coarsen
/// (stride doubles) instead of growing.
const TIMELINE_WINDOWS: usize = 64;

/// The arrival-attribute draw shared by both admission branches of
/// `apply_batch` — the arrival population (ping, bandwidth) must not depend
/// on whether admissions are rate-limited.
fn draw_zap_attrs(bandwidth: BandwidthConfig, rng: &mut SmallRng) -> PeerAttrs {
    PeerAttrs {
        ping_ms: 80.0 * rng.gen_range(0.5..2.0),
        bandwidth: bandwidth.sample_peer(rng),
    }
}

/// The admission tail shared by the immediate zap path and the queue drain:
/// for each of `count` arrivals, samples a neighbour set from `system`'s
/// live candidate view and obtains the arrival's `(attrs, request period)`
/// from `next` — in that order, so the immediate path's per-arrival RNG
/// stream (neighbours, then attributes) is preserved — then admits the
/// whole group through one batched membership repair and registers its
/// pending-zap tracking.  The admitted ids and request stamps stay in
/// `scratch` for the caller's accounting.
fn admit_arrivals(
    system: &mut StreamingSystem,
    pending: &mut Vec<PendingZap>,
    scratch: &mut AdmissionScratch,
    zap_degree: usize,
    count: usize,
    rng: &mut SmallRng,
    mut next: impl FnMut(&mut SmallRng) -> (PeerAttrs, u64),
) {
    let pipeline = AdmissionPipeline;
    let degree = zap_degree.min(system.membership_view().candidates().len());
    for _ in 0..count {
        pipeline.sample_neighbours(system.membership_view(), degree, rng, scratch);
        let (attrs, requested_period) = next(rng);
        scratch.attrs.push(attrs);
        scratch.requested.push(requested_period);
    }
    let AdmissionScratch {
        attrs,
        neighbours,
        requested,
        admitted,
        ..
    } = scratch;
    system
        .admit_batch_grouped(attrs, neighbours, degree, admitted)
        .expect("zap arrivals join an active channel");
    for (i, &viewer) in admitted.iter().enumerate() {
        pending.push(PendingZap {
            viewer,
            joined_period: requested[i],
        });
    }
}

impl Channel {
    /// Advances the channel to `target` periods, draining its admission
    /// queue at every boundary and harvesting zap latencies after every
    /// step.  Channel-local: safe to run as a pool chunk.
    fn advance_to(&mut self, target: u64, tau: f64) {
        while self.period < target {
            self.drain_admissions(tau);
            self.depth_timeline.push(DepthWindow::from_depth(
                self.period,
                self.queue.len() as u64,
            ));
            self.system.advance();
            self.period += 1;
            self.harvest(tau);
            self.harvest_qoe(tau);
        }
    }

    /// Admits up to `admit_limit` queued arrivals at the current boundary:
    /// neighbour sets are sampled from the live directory view with the
    /// channel's own RNG stream, the group is admitted through one batched
    /// membership repair, and each arrival's admission delay (request
    /// boundary → now) is recorded.  A no-op unless rate limiting is on.
    fn drain_admissions(&mut self, tau: f64) {
        let Some(limit) = self.admit_limit else {
            return;
        };
        let boundary = self.period;
        let take = limit.min(self.queue.len());
        if take > 0 {
            let scratch = &mut self.admit_scratch;
            scratch.clear();
            let queue = &mut self.queue;
            admit_arrivals(
                &mut self.system,
                &mut self.pending,
                scratch,
                self.zap_degree,
                take,
                &mut self.admission_rng,
                |_| {
                    let arrival = queue.pop_front().expect("take <= queue length");
                    (arrival.attrs, arrival.requested_period)
                },
            );
            for &requested in &scratch.requested {
                let delay = (boundary - requested) as f64 * tau;
                if delay > 0.0 {
                    self.deferred += 1;
                }
                self.admission_delays.record(delay);
            }
        }
        self.queue_depth_by_period.push(self.queue.len());
    }

    /// Completes pending zaps whose playback has started and retires
    /// arrivals that departed again (zap or churn) before starting.
    fn harvest(&mut self, tau: f64) {
        let now = self.period;
        let system = &self.system;
        let latencies = &mut self.arrival_latencies;
        let abandoned = &mut self.zaps_abandoned;
        self.pending.retain(|zap| {
            if !system.overlay().graph().is_active(zap.viewer) {
                *abandoned += 1;
                return false;
            }
            if system.peer(zap.viewer).playback().has_started() {
                latencies.record((now - zap.joined_period) as f64 * tau);
                return false;
            }
            true
        });
    }

    /// Folds the period's QoE row (published by the gossip recorder during
    /// the step just taken) into the channel's bounded timeline and streams
    /// the period's startup / stall-duration events into the sketches.
    /// Channel-local and allocation-free in steady state.
    fn harvest_qoe(&mut self, tau: f64) {
        let recorder = self.system.qoe();
        if let Some(sample) = recorder.latest() {
            self.qoe_timeline.push(QoeWindow::from_sample(sample));
        }
        for &delay in recorder.startup_delays_periods() {
            self.startup_delays.record(delay as f64 * tau);
        }
        for &duration in recorder.stall_durations_periods() {
            self.stall_durations.record(duration as f64 * tau);
        }
    }
}

/// A batch emitted by the schedule, tagged with its global emission index
/// (the seed of its resolution RNG stream).
#[derive(Debug, Clone, Copy)]
struct PlannedBatch {
    batch: ZapBatch,
    index: u64,
}

/// Per-channel slice of the [`RuntimeReport`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChannelReport {
    /// Channel index.
    pub channel: usize,
    /// Active viewers (including the source) at report time.
    pub viewers: usize,
    /// Scheduling periods this channel executed.
    pub periods: u64,
    /// Total traffic of the channel's run.
    pub traffic: TrafficCounters,
    /// Zap arrivals into this channel.
    pub zaps_in: usize,
    /// Zap departures out of this channel.
    pub zaps_out: usize,
    /// Startup delays of arrivals into this channel.
    pub zap_latency: ZapSummary,
}

/// Aggregated outcome of a multi-channel zapping run.
///
/// Deterministic: identical bytes for every worker-pool size **and** for
/// barrier versus pipelined stepping (asserted by the test-suite), so
/// reports can be diffed across hardware and execution strategies.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RuntimeReport {
    /// Periods driven through every channel.
    pub periods: u64,
    /// Label of the zap workload that drove the run (e.g. `"zipf(1.2)"`).
    pub workload: String,
    /// Per-channel breakdown, in channel order.
    pub channels: Vec<ChannelReport>,
    /// Zap latency aggregated across all channels.
    pub cross_channel_zaps: ZapSummary,
    /// How zap arrivals are distributed over channels (the popularity skew
    /// actually realised by the workload).
    pub zap_load: ZapLoadSummary,
    /// Per-peer memory footprint aggregated across all channels (active
    /// peers' protocol state — a pure function of the simulated history,
    /// so it cannot break mode/pool-size report equivalence).
    pub mem: MemSummary,
    /// Membership-directory admission metrics: queue depth, admission-delay
    /// distribution and candidate-view staleness.  Structurally zero when
    /// admission control is off (the default).
    pub admission: AdmissionSummary,
    /// Bounded QoE timeline folded across all channels in channel order:
    /// startups, stall episodes, continuity and switch progress per window
    /// (empty when QoE recording is disabled).
    pub qoe_timeline: Timeline<QoeWindow>,
    /// Bounded post-drain admission-queue depth timeline, folded across
    /// channels (all-zero windows while the limiter is off).
    pub queue_depth: Timeline<DepthWindow>,
    /// The run's scalar QoE scorecard — the diffable summary the
    /// experiment harness compares across configurations.
    pub scorecard: Scorecard,
}

impl RuntimeReport {
    /// Total zap arrivals observed across all channels.
    pub fn total_zaps(&self) -> usize {
        self.cross_channel_zaps.zaps()
    }
}

/// Hosts `N` concurrent channels on a persistent [`WorkerPool`] and drives
/// a schedule-defined viewer-zapping workload, in barrier or pipelined
/// stepping mode.  See the module docs.
pub struct SessionManager {
    config: SessionConfig,
    pool: Arc<WorkerPool>,
    channels: Vec<Channel>,
    schedule: Box<dyn ZapSchedule>,
    /// Set once the schedule has been consulted; workload swaps are only
    /// allowed before that.
    schedule_consulted: bool,
    mode: SteppingMode,
    /// Bandwidth distribution for zap arrivals (same as churn joiners).
    bandwidth: BandwidthConfig,
    /// Completed session periods (every channel has reached this).
    period: u64,
    /// Global zap-batch emission counter (seeds per-batch RNG streams).
    batch_counter: u64,
    /// Pooled zap-batch resolution buffers — batches are applied serially
    /// on the manager thread, so one scratch serves every channel pair.
    zap_scratch: AdmissionScratch,
}

impl SessionManager {
    /// Builds the channels and starts each channel's initial source, with
    /// the uniform zap workload and barrier stepping installed by default
    /// (see [`set_workload`](Self::set_workload) /
    /// [`set_mode`](Self::set_mode)).
    ///
    /// `scheduler` instantiates one scheduling policy per channel (e.g.
    /// `|| Box::new(FastSwitchScheduler::new())`).
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new<F>(config: SessionConfig, pool: Arc<WorkerPool>, mut scheduler: F) -> Self
    where
        F: FnMut() -> Box<dyn SegmentScheduler>,
    {
        config
            .validate()
            .expect("valid multi-channel session configuration");
        let tau = config.gossip.tau_secs;
        let channels = (0..config.channels)
            .map(|c| {
                let channel_seed = Self::channel_seed(config.seed, c);
                let trace = TraceGenerator::new(GeneratorConfig::sized(
                    config.viewers_per_channel,
                    channel_seed,
                ))
                .generate(format!("channel-{c}"));
                let overlay_config = OverlayConfig {
                    min_degree: config.min_degree,
                    seed: channel_seed ^ 0x00C4_A11E,
                    ..OverlayConfig::default()
                };
                let overlay = OverlayBuilder::new(overlay_config)
                    .expect("valid overlay config")
                    .build(&trace)
                    .expect("channel overlay construction");
                let source = overlay.active_peers().next().expect("non-empty channel");
                let mut system = StreamingSystem::new(overlay, config.gossip, scheduler());
                system.set_executor(pool.as_executor());
                if let Some(network) = config.network {
                    // Every channel gets its own fault streams; an ideal
                    // model stays ideal whatever the seed.
                    system
                        .set_network(network.with_seed(network.seed ^ channel_seed ^ 0x00FA_0175));
                }
                system.start_initial_source(source);
                if let Some(bound) = config.admission.view_bound {
                    system.configure_view(ViewConfig {
                        candidate_bound: Some(bound),
                        seed: channel_seed ^ 0x0B0D_B0D0,
                    });
                }
                Channel {
                    system,
                    source,
                    period: 0,
                    zaps_in: 0,
                    zaps_out: 0,
                    arrival_latencies: QuantileSketch::new(tau),
                    zaps_abandoned: 0,
                    pending: Vec::new(),
                    admit_limit: config.admission.max_admits_per_period,
                    zap_degree: config.zap_degree,
                    queue: VecDeque::new(),
                    admission_rng: SmallRng::seed_from_u64(channel_seed ^ 0x0AD3_170A),
                    admission_delays: QuantileSketch::new(tau),
                    deferred: 0,
                    max_queue_depth: 0,
                    queue_depth_by_period: Vec::new(),
                    admit_scratch: AdmissionScratch::default(),
                    qoe_timeline: Timeline::new(TIMELINE_WINDOWS),
                    depth_timeline: Timeline::new(TIMELINE_WINDOWS),
                    startup_delays: QuantileSketch::new(tau),
                    stall_durations: QuantileSketch::new(tau),
                }
            })
            .collect();
        SessionManager {
            schedule: ZapWorkload::Uniform.build(
                config.channels,
                config.viewers_per_channel,
                config.zap_fraction,
                config.seed,
            ),
            schedule_consulted: false,
            mode: SteppingMode::Barrier,
            bandwidth: BandwidthConfig::default(),
            config,
            pool,
            channels,
            period: 0,
            batch_counter: 0,
            zap_scratch: AdmissionScratch::default(),
        }
    }

    /// Golden-ratio stride keeps per-channel seed streams apart.
    fn channel_seed(seed: u64, channel: usize) -> u64 {
        seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(channel as u64 + 1))
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The pool the channels are sharded over.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Number of hosted channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Periods driven so far.
    pub fn periods(&self) -> u64 {
        self.period
    }

    /// The current stepping mode.
    pub fn mode(&self) -> SteppingMode {
        self.mode
    }

    /// Selects barrier or pipelined stepping.  May be changed at any time;
    /// the mode cannot influence any result (asserted by the test-suite),
    /// only the execution schedule.
    pub fn set_mode(&mut self, mode: SteppingMode) {
        self.mode = mode;
    }

    /// Replaces the zap workload with one of the built-in shapes.
    ///
    /// # Panics
    /// Panics if measured periods have already consulted the old schedule.
    pub fn set_workload(&mut self, workload: ZapWorkload) {
        self.set_zap_schedule(workload.build(
            self.config.channels,
            self.config.viewers_per_channel,
            self.config.zap_fraction,
            self.config.seed,
        ));
    }

    /// Replaces the zap schedule with an arbitrary implementation.
    ///
    /// # Panics
    /// Panics if measured periods have already consulted the old schedule.
    pub fn set_zap_schedule(&mut self, schedule: Box<dyn ZapSchedule>) {
        assert!(
            !self.schedule_consulted,
            "the zap schedule must be installed before any measured period runs"
        );
        self.schedule = schedule;
    }

    /// Enables per-channel churn (paper-default rates), each channel with
    /// its own deterministic stream derived from `salt`.  Churn is
    /// channel-local, so it cannot affect barrier/pipelined equivalence.
    pub fn enable_channel_churn(&mut self, salt: u64) {
        let seed = self.config.seed;
        for (index, channel) in self.channels.iter_mut().enumerate() {
            let churn_seed = Self::channel_seed(seed, index) ^ salt ^ 0x0C4_112E;
            channel
                .system
                .set_churn(ChurnModel::paper_default(churn_seed));
        }
    }

    /// Read access to one channel's streaming system.
    pub fn channel_system(&self, channel: usize) -> &StreamingSystem {
        &self.channels[channel].system
    }

    /// Fans each channel's *internal* scheduling pass out over the pool as
    /// well (`chunks` chunks per channel; effective with the `parallel`
    /// feature, byte-identical results regardless).
    pub fn set_gossip_parallelism(&mut self, chunks: usize) {
        for channel in &mut self.channels {
            channel.system.set_parallelism(chunks);
        }
    }

    /// Reshards every channel's peer store into (approximately) `shards`
    /// struct-of-arrays shards, which become the chunk unit of each
    /// channel's internal scheduling pass.  Byte-identical reports for every
    /// shard count (asserted by the test-suite).
    pub fn set_shards(&mut self, shards: usize) {
        for channel in &mut self.channels {
            channel.system.set_shards(shards);
        }
    }

    /// Turns per-period QoE event recording on or off in every channel
    /// (on by default).  Off, the gossip hot path skips all QoE work and
    /// the report's QoE timeline and scorecard stay empty — the
    /// `qoe_overhead` bench lane measures the difference.
    pub fn set_qoe_enabled(&mut self, on: bool) {
        for channel in &mut self.channels {
            channel.system.set_qoe_enabled(on);
        }
    }

    /// Switches every channel to the phase-major period pipeline (the
    /// pre-fusion phase ordering) instead of the default shard-major fused
    /// one.  Reports are byte-identical either way — pinned by the fused
    /// equivalence suite; the knob exists as the fusion oracle and for the
    /// `locality` bench lanes, and is kept for one release.
    pub fn set_phase_major(&mut self, on: bool) {
        for channel in &mut self.channels {
            channel.system.set_phase_major(on);
        }
    }

    /// Runs `n` warm-up periods with the zapping workload disabled, letting
    /// every channel reach steady playback first.  Channels are fully
    /// independent here, so they advance in one unsynchronised pool job.
    pub fn warmup(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        let tau = self.config.gossip.tau_secs;
        let target = self.period + n;
        let slots = DisjointSlots::new(&mut self.channels[..]);
        self.pool.execute(slots.len(), &|chunk: usize| {
            // SAFETY: chunk indices are unique per execute() run, so each
            // channel is advanced by exactly one worker.
            let channel = unsafe { slots.slot(chunk) };
            channel.advance_to(target, tau);
        });
        self.period = target;
    }

    /// Runs one measured period (zap batches, stepping, harvesting).
    pub fn step(&mut self) {
        self.run_periods(1);
    }

    /// Runs `n` measured periods in the configured stepping mode.
    pub fn run_periods(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        let horizon = self.period + n;
        let plan = self.plan_batches(horizon);
        match self.mode {
            SteppingMode::Barrier => self.run_barrier(horizon, &plan),
            SteppingMode::Pipelined { run_ahead } => self.run_pipelined(horizon, run_ahead, &plan),
        }
        self.period = horizon;
    }

    /// Builds the aggregated report.
    pub fn report(&self) -> RuntimeReport {
        let channels: Vec<ChannelReport> = self
            .channels
            .iter()
            .enumerate()
            .map(|(index, channel)| {
                // "Pending" covers every arrival that never reached
                // playback: still waiting (in the overlay or in the
                // admission queue), or departed again first (abandoned) —
                // so `zaps_in == zap_latency.zaps()` and the completion
                // rate honestly penalizes failed zaps.
                let unresolved =
                    channel.pending.len() + channel.zaps_abandoned + channel.queue.len();
                ChannelReport {
                    channel: index,
                    viewers: channel.system.overlay().active_count(),
                    periods: channel.system.periods(),
                    traffic: channel.system.traffic_total(),
                    zaps_in: channel.zaps_in,
                    zaps_out: channel.zaps_out,
                    zap_latency: ZapSummary::from_sketch(&channel.arrival_latencies, unresolved),
                }
            })
            .collect();
        // Cross-channel aggregate: merge the per-channel sketches in channel
        // order.  The merge is an elementwise counter sum — exactly
        // associative — so this equals one sketch fed every event.
        let tau = self.config.gossip.tau_secs;
        let mut all = QuantileSketch::new(tau);
        let mut unresolved = 0;
        for channel in &self.channels {
            all.merge_from(&channel.arrival_latencies);
            unresolved += channel.pending.len() + channel.zaps_abandoned + channel.queue.len();
        }
        let arrivals: Vec<usize> = self.channels.iter().map(|c| c.zaps_in).collect();
        let usages: Vec<fss_gossip::MemUsage> = self
            .channels
            .iter()
            .map(|c| c.system.memory_usage())
            .collect();
        let staleness: Vec<f64> = self
            .channels
            .iter()
            .map(|c| c.system.membership_view().staleness())
            .collect();
        let (admission, admission_p95_delay_secs) =
            if self.config.admission.max_admits_per_period.is_some() {
                let mut delays = QuantileSketch::new(tau);
                let mut deferred = 0;
                let mut still_queued = 0;
                let mut max_queue_depth = 0;
                for channel in &self.channels {
                    delays.merge_from(&channel.admission_delays);
                    deferred += channel.deferred;
                    still_queued += channel.queue.len();
                    max_queue_depth = max_queue_depth.max(channel.max_queue_depth);
                }
                let p95 = if delays.is_empty() {
                    0.0
                } else {
                    delays.quantile(0.95)
                };
                (
                    AdmissionSummary::from_sketch(
                        true,
                        &delays,
                        deferred,
                        still_queued,
                        max_queue_depth,
                        &staleness,
                    ),
                    p95,
                )
            } else {
                let admitted: usize = self.channels.iter().map(|c| c.zaps_in).sum();
                (AdmissionSummary::pass_through(admitted, &staleness), 0.0)
            };
        // Telemetry fold: every channel runs the same periods, so the
        // per-channel timelines share one shape and fold window-by-window
        // in channel order — an elementwise counter sum, exactly
        // associative, hence byte-identical for every stepping mode, pool
        // size and shard count (asserted by the test-suite).
        let mut qoe_timeline = Timeline::new(TIMELINE_WINDOWS);
        let mut queue_depth = Timeline::new(TIMELINE_WINDOWS);
        let mut startup_delays = QuantileSketch::new(tau);
        let mut stall_durations = QuantileSketch::new(tau);
        for (index, channel) in self.channels.iter().enumerate() {
            if index == 0 {
                qoe_timeline = channel.qoe_timeline.clone();
                queue_depth = channel.depth_timeline.clone();
            } else {
                qoe_timeline.fold_channel(&channel.qoe_timeline);
                queue_depth.fold_channel(&channel.depth_timeline);
            }
            startup_delays.merge_from(&channel.startup_delays);
            stall_durations.merge_from(&channel.stall_durations);
        }
        let cross_channel_zaps = ZapSummary::from_sketch(&all, unresolved);
        let viewers: usize = channels.iter().map(|c| c.viewers).sum();
        let scorecard = Scorecard::from_observations(
            self.period,
            viewers as u64,
            &startup_delays,
            &stall_durations,
            &qoe_timeline,
            &queue_depth,
            cross_channel_zaps.p95_startup_secs,
            admission_p95_delay_secs,
            tau,
        );
        RuntimeReport {
            periods: self.period,
            workload: self.schedule.name(),
            channels,
            cross_channel_zaps,
            zap_load: ZapLoadSummary::from_arrivals(&arrivals),
            mem: MemSummary::from_usages(&usages),
            admission,
            qoe_timeline,
            queue_depth,
            scorecard,
        }
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    /// Asks the schedule for every batch in `[self.period, horizon)`,
    /// tagging each with its global emission index.
    fn plan_batches(&mut self, horizon: u64) -> Vec<PlannedBatch> {
        self.schedule_consulted = true;
        let mut plan = Vec::new();
        let mut raw = Vec::new();
        for period in self.period..horizon {
            raw.clear();
            self.schedule.batches_at(period, &mut raw);
            for batch in &raw {
                assert!(
                    batch.period == period
                        && batch.from != batch.to
                        && batch.from < self.channels.len()
                        && batch.to < self.channels.len()
                        && batch.viewers > 0,
                    "schedule emitted an invalid batch {batch:?} at period {period}"
                );
                plan.push(PlannedBatch {
                    batch: *batch,
                    index: self.batch_counter,
                });
                self.batch_counter += 1;
            }
        }
        plan
    }

    /// Lockstep execution: apply boundary batches, then step every channel
    /// one period on the pool; repeat.
    fn run_barrier(&mut self, horizon: u64, plan: &[PlannedBatch]) {
        let tau = self.config.gossip.tau_secs;
        let mut cursor = 0;
        for period in self.period..horizon {
            while cursor < plan.len() && plan[cursor].batch.period == period {
                self.apply_batch(plan[cursor]);
                cursor += 1;
            }
            let slots = DisjointSlots::new(&mut self.channels[..]);
            self.pool.execute(slots.len(), &|chunk: usize| {
                // SAFETY: chunk indices are unique per execute() run.
                let channel = unsafe { slots.slot(chunk) };
                let target = channel.period + 1;
                channel.advance_to(target, tau);
            });
        }
    }

    /// Dependency-tracked pipeline: each round, every channel advances on
    /// the pool to the nearest of (its next batch boundary, the run-ahead
    /// bound, the horizon); then every batch whose two endpoints are parked
    /// at its boundary is applied.  No global barrier — a batch
    /// synchronises exactly its two channels.
    fn run_pipelined(&mut self, horizon: u64, run_ahead: u64, plan: &[PlannedBatch]) {
        let run_ahead = run_ahead.max(1);
        let tau = self.config.gossip.tau_secs;
        let n = self.channels.len();

        // Per-channel ordered involvement lists over the plan.
        let mut involvement: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, planned) in plan.iter().enumerate() {
            involvement[planned.batch.from].push(i);
            involvement[planned.batch.to].push(i);
        }
        let mut cursor = vec![0usize; n];
        let mut applied = vec![false; plan.len()];

        /// First unapplied batch involving channel `c`, advancing the
        /// channel's cursor past batches its partner already applied.
        fn next_unapplied(
            involvement: &[Vec<usize>],
            applied: &[bool],
            cursor: &mut [usize],
            c: usize,
        ) -> Option<usize> {
            while let Some(&i) = involvement[c].get(cursor[c]) {
                if applied[i] {
                    cursor[c] += 1;
                } else {
                    return Some(i);
                }
            }
            None
        }

        loop {
            let min_period = self
                .channels
                .iter()
                .map(|c| c.period)
                .min()
                .expect("at least one channel");
            if min_period == horizon {
                break;
            }

            // 1. Per-channel advance limits: next sync point, run-ahead
            //    bound, horizon — whichever is nearest.
            let cap = min_period.saturating_add(run_ahead).min(horizon);
            let limits: Vec<u64> = (0..n)
                .map(|c| {
                    let sync = next_unapplied(&involvement, &applied, &mut cursor, c)
                        .map_or(horizon, |i| plan[i].batch.period);
                    sync.min(cap).max(self.channels[c].period)
                })
                .collect();

            // 2. Advance the channels that can move, concurrently.  The
            //    dispatch is compacted to those channels only, so a round
            //    that unblocks a single straggler runs it in-line instead
            //    of waking the whole pool.
            let advancing: Vec<usize> = (0..n)
                .filter(|&c| limits[c] > self.channels[c].period)
                .collect();
            let advanced = !advancing.is_empty();
            if advanced {
                let limits = &limits[..];
                let advancing = &advancing[..];
                let slots = DisjointSlots::new(&mut self.channels[..]);
                self.pool.execute(advancing.len(), &|chunk: usize| {
                    let c = advancing[chunk];
                    // SAFETY: the advancing list holds distinct channel
                    // indices, so each slot is borrowed by exactly one
                    // chunk.
                    let channel = unsafe { slots.slot(c) };
                    channel.advance_to(limits[c], tau);
                });
            }

            // 3. Apply every batch whose endpoints are both parked at its
            //    boundary with it as their next batch, to fixpoint (one
            //    application can unblock the next at the same boundary).
            let mut applied_any = false;
            loop {
                let mut progressed = false;
                for c in 0..n {
                    while let Some(i) = next_unapplied(&involvement, &applied, &mut cursor, c) {
                        let planned = plan[i];
                        let (from, to) = (planned.batch.from, planned.batch.to);
                        let parked = self.channels[from].period == planned.batch.period
                            && self.channels[to].period == planned.batch.period;
                        if !parked
                            || next_unapplied(&involvement, &applied, &mut cursor, from) != Some(i)
                            || next_unapplied(&involvement, &applied, &mut cursor, to) != Some(i)
                        {
                            break;
                        }
                        self.apply_batch(planned);
                        applied[i] = true;
                        progressed = true;
                        applied_any = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
            assert!(
                advanced || applied_any,
                "pipelined scheduler stalled before the horizon (min period \
                 {min_period} of {horizon})"
            );
        }
    }

    /// Resolves and applies one zap batch through the membership directory:
    /// picks the concrete viewers from the origin channel's view, departs
    /// them (one batched membership repair), then either admits them into
    /// the target channel immediately (ditto) or enqueues them on its
    /// rate-limited admission queue.  All randomness comes from the batch's
    /// own RNG stream, so the outcome depends only on the two endpoint
    /// channels' states at the shared boundary.
    ///
    /// Allocation-free in steady state: every buffer lives in the pooled
    /// [`AdmissionScratch`] (enforced by the `zap_admission` counting-
    /// allocator test in `fss-bench`), and the directory's incremental
    /// views replace the per-batch `active_peers()` collections of the
    /// pre-directory runtime.
    fn apply_batch(&mut self, planned: PlannedBatch) {
        let ZapBatch {
            period,
            from,
            to,
            viewers,
        } = planned.batch;
        let zap_degree = self.config.zap_degree;
        let bandwidth = self.bandwidth;
        let mut rng = SmallRng::seed_from_u64(
            self.config
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(planned.index + 1))
                ^ 0x0BA7_0CAD,
        );
        let pipeline = AdmissionPipeline;
        let scratch = &mut self.zap_scratch;
        scratch.clear();
        let (origin, target) = pair_mut(&mut self.channels, from, to);

        // Departures: any member except the source and same-boundary
        // arrivals (a viewer cannot zap twice at one boundary).  The
        // pipeline also enforces the live survival floor, mirroring the
        // schedule's modelled MIN_CHANNEL_POPULATION (source + 1): the
        // schedule plans against its own population model, but concurrent
        // churn, clamped earlier batches or a custom `ZapSchedule` can
        // leave the live channel smaller than modelled — and a plan-sized
        // take would then drain it to source-only membership.
        {
            let pending = &origin.pending;
            pipeline.select_movers(
                origin.system.membership_view(),
                origin.source,
                |p| {
                    pending
                        .iter()
                        .any(|zap| zap.viewer == p && zap.joined_period == period)
                },
                viewers,
                &mut rng,
                scratch,
            );
        }
        if scratch.movers.is_empty() {
            return;
        }
        origin
            .system
            .depart_batch(&scratch.movers)
            .expect("zapping viewers are active non-sources");
        origin.zaps_out += scratch.movers.len();
        let mover_count = scratch.movers.len();

        if target.admit_limit.is_none() {
            // Immediate admission (the default): attach each arrival to
            // `zap_degree` random members of the target channel's view and
            // follow their playback steps (the churn-join rule).  The view's
            // candidate list is frozen for the whole batch — arrivals do not
            // neighbour each other — because admission happens after every
            // neighbour set is sampled.
            admit_arrivals(
                &mut target.system,
                &mut target.pending,
                scratch,
                zap_degree,
                mover_count,
                &mut rng,
                |rng| (draw_zap_attrs(bandwidth, rng), period),
            );
            target.zaps_in += scratch.admitted.len();
        } else {
            // Rate-limited admission: the arrival's identity (attributes) is
            // fixed from the batch stream now, but it only becomes a member
            // when the target channel's queue drain grants it a slot — its
            // neighbour set is sampled *then*, from the then-live view.
            for _ in 0..mover_count {
                target.queue.push_back(QueuedArrival {
                    attrs: draw_zap_attrs(bandwidth, &mut rng),
                    requested_period: period,
                });
            }
            target.zaps_in += mover_count;
            target.max_queue_depth = target.max_queue_depth.max(target.queue.len());
        }
    }

    /// Total admission-queue depth across channels after the drain at each
    /// period boundary (empty unless `max_admits_per_period` is set).  The
    /// timeline is deterministic across stepping modes and pool sizes, like
    /// the report.
    pub fn queue_depth_timeline(&self) -> Vec<(u64, usize)> {
        let periods = self
            .channels
            .iter()
            .map(|c| c.queue_depth_by_period.len())
            .max()
            .unwrap_or(0);
        (0..periods)
            .map(|p| {
                let depth = self
                    .channels
                    .iter()
                    .map(|c| c.queue_depth_by_period.get(p).copied().unwrap_or(0))
                    .sum();
                (p as u64, depth)
            })
            .collect()
    }
}

/// Distinct mutable borrows of two channels.
fn pair_mut(channels: &mut [Channel], a: usize, b: usize) -> (&mut Channel, &mut Channel) {
    assert_ne!(a, b, "a zap batch needs two distinct channels");
    if a < b {
        let (lo, hi) = channels.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = channels.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zap::{CrowdZap, Storm};
    use fss_core::FastSwitchScheduler;

    fn manager(workers: usize, channels: usize, seed: u64) -> SessionManager {
        let config = SessionConfig {
            seed,
            ..SessionConfig::paper_default(channels, 40)
        };
        SessionManager::new(config, Arc::new(WorkerPool::new(workers)), || {
            Box::new(FastSwitchScheduler::new())
        })
    }

    #[test]
    fn zapping_session_runs_end_to_end() {
        let mut m = manager(2, 4, 7);
        assert_eq!(m.channels(), 4);
        m.warmup(30);
        m.run_periods(40);
        assert_eq!(m.periods(), 70);

        let report = m.report();
        assert_eq!(report.channels.len(), 4);
        assert_eq!(report.workload, "uniform");
        assert!(report.total_zaps() > 0, "no zaps happened");
        assert!(
            report.cross_channel_zaps.completed > 0,
            "no zap reached playback"
        );
        assert!(report.cross_channel_zaps.avg_startup_secs > 0.0);
        let zaps_in: usize = report.channels.iter().map(|c| c.zaps_in).sum();
        let zaps_out: usize = report.channels.iter().map(|c| c.zaps_out).sum();
        assert_eq!(zaps_in, zaps_out, "viewership must be conserved");
        // Every arrival is accounted for: completed, still waiting, or
        // abandoned (departed again before playback started).
        for c in &report.channels {
            assert_eq!(
                c.zaps_in,
                c.zap_latency.zaps(),
                "channel {} loses zaps from its statistics",
                c.channel
            );
        }
        assert_eq!(report.total_zaps(), zaps_in);
        assert_eq!(report.zap_load.total_arrivals, zaps_in);
        // Every channel keeps streaming throughout.
        for c in &report.channels {
            assert_eq!(c.periods, 70);
            assert!(c.traffic.data_bits > 0);
            assert!(c.viewers > 5);
        }
    }

    #[test]
    fn report_is_identical_across_pool_sizes() {
        let run = |workers: usize| {
            let mut m = manager(workers, 4, 11);
            m.warmup(25);
            m.run_periods(30);
            m.report()
        };
        let reference = run(1);
        for workers in [2, 4, 7] {
            assert_eq!(run(workers), reference, "workers = {workers}");
        }
    }

    /// The tentpole invariant: pipelined stepping (any run-ahead bound, any
    /// pool size) produces a byte-identical report to barrier stepping,
    /// under per-channel churn AND a Zipf workload with flash-crowd storms.
    #[test]
    fn pipelined_matches_barrier_under_churn_and_storms() {
        let run = |workers: usize, mode: SteppingMode| {
            let mut m = manager(workers, 5, 13);
            m.set_zap_schedule(Box::new(CrowdZap::zipf(5, 40, 0.03, 1.2, 13).with_storms(
                vec![
                    Storm {
                        at: 30,
                        target: 2,
                        size: 25,
                    },
                    Storm {
                        at: 45,
                        target: 0,
                        size: 30,
                    },
                ],
            )));
            m.enable_channel_churn(5);
            m.set_mode(mode);
            m.warmup(25);
            m.run_periods(35);
            m.report()
        };
        let reference = run(1, SteppingMode::Barrier);
        assert!(reference.total_zaps() > 0);
        assert!(reference.cross_channel_zaps.completed > 0);
        for workers in [1, 2, 4, 7] {
            for run_ahead in [1, 4, 8] {
                assert_eq!(
                    run(workers, SteppingMode::Pipelined { run_ahead }),
                    reference,
                    "workers = {workers}, run_ahead = {run_ahead}"
                );
            }
            assert_eq!(
                run(workers, SteppingMode::Barrier),
                reference,
                "barrier, workers = {workers}"
            );
        }
    }

    /// A storm shows up as arrival skew: the target channel dominates.
    #[test]
    fn flash_crowd_concentrates_arrivals() {
        let mut m = manager(2, 4, 17);
        m.set_workload(ZapWorkload::FlashCrowd {
            target: 1,
            at: 40,
            size: 50,
        });
        m.warmup(30);
        m.run_periods(30);
        let report = m.report();
        assert_eq!(report.workload, "uniform+storms");
        let busiest = &report.channels[report.zap_load.busiest_channel];
        assert_eq!(busiest.channel, 1, "the storm target must be busiest");
        assert!(
            report.zap_load.busiest_share > 0.4,
            "storm share too small: {:?}",
            report.zap_load
        );
        assert!(report.zap_load.gini > 0.15);
    }

    /// Satellite audit (survival floor vs concurrent churn): the schedule's
    /// population model floors *modelled* channels at source + 1, but the
    /// live channel can be smaller than modelled (churn, clamped earlier
    /// batches, or a custom schedule that plans from stale data).  The
    /// session-level clamp must therefore enforce the floor on the *live*
    /// population: without it, this drain-everything schedule empties
    /// channel 0 to source-only membership at the first measured boundary.
    #[test]
    fn zap_batches_respect_the_live_survival_floor() {
        struct DrainEverything;
        impl ZapSchedule for DrainEverything {
            fn name(&self) -> String {
                "drain-everything".to_string()
            }
            fn batches_at(&mut self, period: u64, out: &mut Vec<ZapBatch>) {
                // Far more viewers than channel 0 will ever hold.
                out.push(ZapBatch {
                    period,
                    from: 0,
                    to: 1,
                    viewers: 1_000,
                });
            }
        }

        let mut m = manager(2, 3, 31);
        m.set_zap_schedule(Box::new(DrainEverything));
        m.enable_channel_churn(7);
        m.warmup(15);
        for step in 0..10 {
            m.step();
            for c in 0..m.channels() {
                assert!(
                    m.channel_system(c).overlay().active_count() >= 2,
                    "channel {c} drained below the survival floor at step {step}"
                );
            }
        }
        let report = m.report();
        // The drain really ran (almost the whole channel moved out)...
        assert!(report.channels[0].zaps_out > 30);
        // ...and the floored channel keeps streaming.
        assert!(report.channels[0].traffic.data_bits > 0);
        assert_eq!(report.periods, 25);
    }

    /// Satellite determinism sweep: with the rate-limited admission queue
    /// *and* bounded candidate views active, under churn and a flash-crowd
    /// storm, reports and queue-depth timelines stay byte-identical across
    /// pool sizes and stepping modes — directory updates are the only
    /// cross-channel synchronisation points, and they happen at the same
    /// boundaries regardless of execution strategy.
    #[test]
    fn rate_limited_admission_is_deterministic_across_modes_and_pools() {
        let run = |workers: usize, mode: SteppingMode| {
            let config = SessionConfig {
                seed: 29,
                admission: AdmissionControl {
                    max_admits_per_period: Some(6),
                    view_bound: Some(16),
                },
                ..SessionConfig::paper_default(4, 40)
            };
            let mut m = SessionManager::new(config, Arc::new(WorkerPool::new(workers)), || {
                Box::new(FastSwitchScheduler::new())
            });
            m.set_zap_schedule(Box::new(CrowdZap::zipf(4, 40, 0.03, 1.1, 29).with_storms(
                vec![Storm {
                    at: 30,
                    target: 1,
                    size: 40,
                }],
            )));
            m.enable_channel_churn(3);
            m.set_mode(mode);
            m.warmup(25);
            m.run_periods(30);
            (m.report(), m.queue_depth_timeline())
        };
        let (reference, reference_timeline) = run(1, SteppingMode::Barrier);
        assert!(reference.admission.rate_limited);
        assert!(reference.total_zaps() > 0);
        for workers in [1, 2, 4, 7] {
            for run_ahead in [1, 4, 8] {
                let (report, timeline) = run(workers, SteppingMode::Pipelined { run_ahead });
                assert_eq!(report, reference, "workers={workers} run_ahead={run_ahead}");
                assert_eq!(timeline, reference_timeline, "timeline workers={workers}");
            }
            let (report, timeline) = run(workers, SteppingMode::Barrier);
            assert_eq!(report, reference, "barrier workers={workers}");
            assert_eq!(timeline, reference_timeline);
        }
    }

    /// The queue semantics: a flash crowd larger than the per-boundary cap
    /// admits over several boundaries — deferred arrivals, a non-trivial
    /// queue-depth timeline, and admission delays in the summary — while
    /// every arrival is still accounted for in the zap statistics.
    #[test]
    fn admission_queue_spreads_a_flash_crowd_over_boundaries() {
        let run = |limit: Option<usize>| {
            let config = SessionConfig {
                seed: 33,
                admission: AdmissionControl {
                    max_admits_per_period: limit,
                    view_bound: None,
                },
                ..SessionConfig::paper_default(3, 50)
            };
            let mut m = SessionManager::new(config, Arc::new(WorkerPool::new(2)), || {
                Box::new(FastSwitchScheduler::new())
            });
            m.set_workload(ZapWorkload::FlashCrowd {
                target: 1,
                at: 25,
                size: 60,
            });
            m.warmup(20);
            m.run_periods(30);
            (m.report(), m.queue_depth_timeline())
        };

        let (unlimited, unlimited_timeline) = run(None);
        assert!(!unlimited.admission.rate_limited);
        assert_eq!(unlimited.admission.deferred, 0);
        assert_eq!(unlimited.admission.max_queue_depth, 0);
        assert!(unlimited_timeline.is_empty(), "no limiter, no timeline");

        let (limited, timeline) = run(Some(8));
        assert!(limited.admission.rate_limited);
        // Both runs observe the same storm...
        assert_eq!(limited.total_zaps(), unlimited.total_zaps());
        // ...but the limited one queues most of it at the storm boundary.
        assert!(
            limited.admission.max_queue_depth >= 40,
            "storm must overflow the 8-per-boundary cap: {:?}",
            limited.admission
        );
        assert!(limited.admission.deferred > 0);
        assert!(limited.admission.avg_delay_secs > 0.0);
        assert!(limited.admission.max_delay_secs >= limited.admission.p95_delay_secs);
        // The queue drains over the following boundaries and ends empty.
        assert_eq!(limited.admission.still_queued, 0);
        assert_eq!(limited.admission.admitted, limited.total_zaps());
        let peak = timeline.iter().map(|&(_, d)| d).max().unwrap();
        assert!(peak >= 40);
        assert_eq!(timeline.last().unwrap().1, 0, "queue must fully drain");
        // Accounting: every arrival is completed, pending or abandoned.
        for c in &limited.channels {
            assert_eq!(c.zaps_in, c.zap_latency.zaps());
        }
        // Deferred admission delays playback: the storm channel's zap
        // latency cannot beat the unlimited run's.
        assert!(
            limited.cross_channel_zaps.avg_startup_secs
                >= unlimited.cross_channel_zaps.avg_startup_secs - 1e-9
        );
    }

    /// A still-loaded queue at the horizon shows up as `still_queued` and
    /// keeps the zap accounting honest (queued arrivals are unresolved).
    #[test]
    fn arrivals_still_queued_at_the_horizon_stay_accounted() {
        let config = SessionConfig {
            seed: 41,
            admission: AdmissionControl::rate_limited(1),
            ..SessionConfig::paper_default(3, 40)
        };
        let mut m = SessionManager::new(config, Arc::new(WorkerPool::new(2)), || {
            Box::new(FastSwitchScheduler::new())
        });
        m.set_workload(ZapWorkload::FlashCrowd {
            target: 0,
            at: 21,
            size: 50,
        });
        m.warmup(20);
        m.run_periods(5);
        let report = m.report();
        assert!(report.admission.still_queued > 0);
        assert_eq!(
            report.admission.requested(),
            report.total_zaps(),
            "every requested arrival is a zap"
        );
        let zaps_in: usize = report.channels.iter().map(|c| c.zaps_in).sum();
        assert_eq!(report.total_zaps(), zaps_in);
        for c in &report.channels {
            assert_eq!(c.zaps_in, c.zap_latency.zaps());
        }
    }

    #[test]
    fn pool_reuse_across_sessions_leaks_no_state() {
        let pool = Arc::new(WorkerPool::new(3));
        let run_on = |pool: &Arc<WorkerPool>, seed: u64| {
            let config = SessionConfig {
                seed,
                ..SessionConfig::paper_default(3, 40)
            };
            let mut m = SessionManager::new(config, Arc::clone(pool), || {
                Box::new(FastSwitchScheduler::new())
            });
            m.set_mode(SteppingMode::pipelined());
            m.warmup(20);
            m.run_periods(25);
            m.report()
        };
        // Two different sessions back to back on one pool...
        let first = run_on(&pool, 1);
        let second = run_on(&pool, 2);
        // ...must match the same sessions on fresh pools.
        assert_eq!(first, run_on(&Arc::new(WorkerPool::new(3)), 1));
        assert_eq!(second, run_on(&Arc::new(WorkerPool::new(3)), 2));
        assert_ne!(first, second, "different seeds produce different runs");
    }

    #[test]
    #[should_panic(expected = "at least 2 channels")]
    fn single_channel_session_panics() {
        let _ = manager(1, 1, 3);
    }

    #[test]
    #[should_panic(expected = "before any measured period")]
    fn workload_swap_after_measuring_panics() {
        let mut m = manager(1, 2, 3);
        m.run_periods(1);
        m.set_workload(ZapWorkload::Zipf { alpha: 1.0 });
    }

    #[test]
    fn config_validation() {
        let good = SessionConfig::paper_default(4, 50);
        good.validate().unwrap();
        assert!(SessionConfig {
            viewers_per_channel: 4,
            ..good
        }
        .validate()
        .is_err());
        assert!(SessionConfig {
            zap_fraction: 0.9,
            ..good
        }
        .validate()
        .is_err());
        assert!(SessionConfig {
            zap_degree: 0,
            ..good
        }
        .validate()
        .is_err());
        assert!(SessionConfig {
            admission: AdmissionControl::rate_limited(0),
            ..good
        }
        .validate()
        .is_err());
        assert!(SessionConfig {
            admission: AdmissionControl {
                max_admits_per_period: None,
                view_bound: Some(2), // < zap_degree 5
            },
            ..good
        }
        .validate()
        .is_err());
        SessionConfig {
            admission: AdmissionControl {
                max_admits_per_period: Some(4),
                view_bound: Some(8),
            },
            ..good
        }
        .validate()
        .unwrap();
    }
}
