//! Multi-channel session management with channel-zapping viewers.
//!
//! The paper evaluates *one* stream per process; real deployments (and the
//! CliqueStream / live-entertainment settings in PAPERS.md) serve many
//! concurrent channels with viewers hopping between them — which makes
//! channel-switch latency a first-class metric.  [`SessionManager`] hosts
//! `N` independent [`StreamingSystem`]s (one per channel), shards their
//! period stepping across the persistent [`WorkerPool`], and drives a
//! deterministic viewer-zapping workload:
//!
//! * every period, a configured fraction of each channel's viewers *zap*:
//!   they leave their channel's overlay and join another channel, attaching
//!   to `M` random peers there and following those neighbours' playback
//!   steps — exactly the paper's churn-join rule, but correlated across
//!   channels so total viewership is conserved;
//! * each arrival is tracked until its playback starts (`Q` consecutive
//!   segments); the elapsed time is that viewer's **zap latency**,
//!   aggregated per channel and across channels through
//!   [`fss_metrics::ZapSummary`].
//!
//! # Determinism
//!
//! All randomness (who zaps, where to, which neighbours) is drawn from one
//! seeded RNG on the submitting thread; the pool only executes the
//! per-channel `step()` calls, whose state sets are disjoint.  The resulting
//! [`RuntimeReport`] is therefore byte-identical for every pool size — a
//! property the test-suite asserts at 1/2/4/7 workers.

use crate::pool::WorkerPool;
use fss_gossip::{GossipConfig, SegmentScheduler, StreamingSystem, TrafficCounters};
use fss_metrics::ZapSummary;
use fss_overlay::{BandwidthConfig, OverlayBuilder, OverlayConfig, PeerAttrs, PeerId};
use fss_sim::exec::DisjointSlots;
use fss_trace::{GeneratorConfig, TraceGenerator};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::sync::Arc;

/// Configuration of a multi-channel session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SessionConfig {
    /// Number of concurrent channels (independent streaming systems).
    pub channels: usize,
    /// Overlay size of each channel at start-up.
    pub viewers_per_channel: usize,
    /// Fraction of each channel's viewers zapping away per period.
    pub zap_fraction: f64,
    /// Neighbours a zapping viewer attaches to in its target channel
    /// (the paper's `M`).
    pub zap_degree: usize,
    /// Minimum neighbour count maintained inside each channel.
    pub min_degree: usize,
    /// Master seed; every channel derives its own trace/overlay/zap streams.
    pub seed: u64,
    /// Protocol parameters shared by all channels.
    pub gossip: GossipConfig,
}

impl SessionConfig {
    /// Paper-flavoured defaults: `M = 5`, 2 % of viewers zapping per period.
    pub fn paper_default(channels: usize, viewers_per_channel: usize) -> Self {
        SessionConfig {
            channels,
            viewers_per_channel,
            zap_fraction: 0.02,
            zap_degree: 5,
            min_degree: 5,
            seed: 0x5A50_0001,
            gossip: GossipConfig::paper_default(),
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels < 2 {
            return Err("a zapping session needs at least 2 channels".into());
        }
        if self.viewers_per_channel <= self.min_degree {
            return Err(format!(
                "{} viewers cannot sustain a minimum degree of {}",
                self.viewers_per_channel, self.min_degree
            ));
        }
        if !(0.0..=0.5).contains(&self.zap_fraction) || !self.zap_fraction.is_finite() {
            return Err(format!(
                "zap_fraction {} outside the sensible range [0, 0.5]",
                self.zap_fraction
            ));
        }
        if self.zap_degree == 0 {
            return Err("zap_degree must be positive".into());
        }
        self.gossip.validate().map_err(|e| e.to_string())
    }
}

/// One hosted channel: a streaming system plus its zap bookkeeping.
struct Channel {
    system: StreamingSystem,
    source: PeerId,
    zaps_in: usize,
    zaps_out: usize,
    /// Startup delays (seconds) of completed zap arrivals into this channel.
    arrival_latencies: Vec<f64>,
    /// Arrivals that departed again (zap or churn) before their playback
    /// started — they never completed and never will, so they stay in the
    /// never-reached-playback side of the zap statistics.
    zaps_abandoned: usize,
}

/// A zap arrival still waiting for playback to start.
struct PendingZap {
    channel: usize,
    viewer: PeerId,
    joined_period: u64,
}

/// Per-channel slice of the [`RuntimeReport`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChannelReport {
    /// Channel index.
    pub channel: usize,
    /// Active viewers (including the source) at report time.
    pub viewers: usize,
    /// Scheduling periods this channel executed.
    pub periods: u64,
    /// Total traffic of the channel's run.
    pub traffic: TrafficCounters,
    /// Zap arrivals into this channel.
    pub zaps_in: usize,
    /// Zap departures out of this channel.
    pub zaps_out: usize,
    /// Startup delays of arrivals into this channel.
    pub zap_latency: ZapSummary,
}

/// Aggregated outcome of a multi-channel zapping run.
///
/// Deterministic: identical bytes for every worker-pool size (asserted by
/// the test-suite), so reports can be diffed across hardware.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RuntimeReport {
    /// Periods driven through every channel.
    pub periods: u64,
    /// Per-channel breakdown, in channel order.
    pub channels: Vec<ChannelReport>,
    /// Zap latency aggregated across all channels.
    pub cross_channel_zaps: ZapSummary,
}

impl RuntimeReport {
    /// Total zap arrivals observed across all channels.
    pub fn total_zaps(&self) -> usize {
        self.cross_channel_zaps.zaps()
    }
}

/// Hosts `N` concurrent channels sharded over a persistent [`WorkerPool`]
/// and drives the viewer-zapping workload.  See the module docs.
pub struct SessionManager {
    config: SessionConfig,
    pool: Arc<WorkerPool>,
    channels: Vec<Channel>,
    /// The single RNG behind every zap decision (submitting thread only).
    rng: SmallRng,
    /// Bandwidth distribution for zap arrivals (same as churn joiners).
    bandwidth: BandwidthConfig,
    period: u64,
    pending: Vec<PendingZap>,
}

impl SessionManager {
    /// Builds the channels and starts each channel's initial source.
    ///
    /// `scheduler` instantiates one scheduling policy per channel (e.g.
    /// `|| Box::new(FastSwitchScheduler::new())`).
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new<F>(config: SessionConfig, pool: Arc<WorkerPool>, mut scheduler: F) -> Self
    where
        F: FnMut() -> Box<dyn SegmentScheduler>,
    {
        config
            .validate()
            .expect("valid multi-channel session configuration");
        let channels = (0..config.channels)
            .map(|c| {
                // Golden-ratio stride keeps per-channel seed streams apart.
                let channel_seed = config
                    .seed
                    .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(c as u64 + 1));
                let trace = TraceGenerator::new(GeneratorConfig::sized(
                    config.viewers_per_channel,
                    channel_seed,
                ))
                .generate(format!("channel-{c}"));
                let overlay_config = OverlayConfig {
                    min_degree: config.min_degree,
                    seed: channel_seed ^ 0x00C4_A11E,
                    ..OverlayConfig::default()
                };
                let overlay = OverlayBuilder::new(overlay_config)
                    .expect("valid overlay config")
                    .build(&trace)
                    .expect("channel overlay construction");
                let source = overlay.active_peers().next().expect("non-empty channel");
                let mut system = StreamingSystem::new(overlay, config.gossip, scheduler());
                system.set_executor(pool.as_executor());
                system.start_initial_source(source);
                Channel {
                    system,
                    source,
                    zaps_in: 0,
                    zaps_out: 0,
                    arrival_latencies: Vec::new(),
                    zaps_abandoned: 0,
                }
            })
            .collect();
        SessionManager {
            rng: SmallRng::seed_from_u64(config.seed ^ 0x5A50_5EED),
            bandwidth: BandwidthConfig::default(),
            config,
            pool,
            channels,
            period: 0,
            pending: Vec::new(),
        }
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The pool the channels are sharded over.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Number of hosted channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Periods driven so far.
    pub fn periods(&self) -> u64 {
        self.period
    }

    /// Read access to one channel's streaming system.
    pub fn channel_system(&self, channel: usize) -> &StreamingSystem {
        &self.channels[channel].system
    }

    /// Fans each channel's *internal* scheduling pass out over the pool as
    /// well (`chunks` chunks per channel; effective with the `parallel`
    /// feature, byte-identical results regardless).
    pub fn set_gossip_parallelism(&mut self, chunks: usize) {
        for channel in &mut self.channels {
            channel.system.set_parallelism(chunks);
        }
    }

    /// Runs `n` warm-up periods with the zapping workload disabled, letting
    /// every channel reach steady playback first.
    pub fn warmup(&mut self, n: u64) {
        for _ in 0..n {
            self.step_channels();
            self.period += 1;
        }
    }

    /// Runs one period: zap events, then all channels step in parallel on
    /// the pool, then zap-latency harvesting.
    pub fn step(&mut self) {
        self.apply_zaps();
        self.step_channels();
        self.period += 1;
        self.harvest_zap_latencies();
    }

    /// Runs `n` full periods.
    pub fn run_periods(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Builds the aggregated report.
    pub fn report(&self) -> RuntimeReport {
        let channels: Vec<ChannelReport> = self
            .channels
            .iter()
            .enumerate()
            .map(|(index, channel)| {
                // "Pending" covers every arrival that never reached
                // playback: still waiting, or departed again first
                // (abandoned) — so `zaps_in == zap_latency.zaps()` and the
                // completion rate honestly penalizes failed zaps.
                let waiting = self.pending.iter().filter(|z| z.channel == index).count();
                ChannelReport {
                    channel: index,
                    viewers: channel.system.overlay().active_count(),
                    periods: channel.system.periods(),
                    traffic: channel.system.report().traffic_total,
                    zaps_in: channel.zaps_in,
                    zaps_out: channel.zaps_out,
                    zap_latency: ZapSummary::from_latencies(
                        &channel.arrival_latencies,
                        waiting + channel.zaps_abandoned,
                    ),
                }
            })
            .collect();
        let mut all: Vec<f64> = Vec::new();
        let mut abandoned = 0;
        for channel in &self.channels {
            all.extend_from_slice(&channel.arrival_latencies);
            abandoned += channel.zaps_abandoned;
        }
        RuntimeReport {
            periods: self.period,
            channels,
            cross_channel_zaps: ZapSummary::from_latencies(&all, self.pending.len() + abandoned),
        }
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    /// Steps every channel once, sharded across the pool (one chunk per
    /// channel; chunk-pinned state keeps this deterministic for any pool
    /// size).
    fn step_channels(&mut self) {
        let slots = DisjointSlots::new(&mut self.channels[..]);
        self.pool.execute(slots.len(), &|chunk: usize| {
            // SAFETY: chunk indices are unique per execute() run, so each
            // channel is stepped by exactly one worker.
            let channel = unsafe { slots.slot(chunk) };
            channel.system.step();
        });
    }

    /// Moves the period's zapping viewers between channels.  Entirely
    /// sequential and RNG-driven on the submitting thread.
    fn apply_zaps(&mut self) {
        let channel_count = self.channels.len();
        // Plan departures first so a viewer cannot be picked twice and
        // freshly arrived viewers are not immediately re-zapped this period.
        let mut moves: Vec<(usize, usize)> = Vec::new(); // (from, to)
        for from in 0..channel_count {
            let channel = &mut self.channels[from];
            let eligible: Vec<PeerId> = channel
                .system
                .overlay()
                .active_peers()
                .filter(|&p| p != channel.source)
                .collect();
            let zap_count = ((eligible.len() as f64) * self.config.zap_fraction).round() as usize;
            let zappers: Vec<PeerId> = eligible
                .choose_multiple(&mut self.rng, zap_count.min(eligible.len()))
                .copied()
                .collect();
            for viewer in zappers {
                // Uniform target among the other channels.
                let offset = self.rng.gen_range(1..channel_count);
                let to = (from + offset) % channel_count;
                self.channels[from]
                    .system
                    .depart_peer(viewer)
                    .expect("zapping viewer is active");
                self.channels[from].zaps_out += 1;
                moves.push((from, to));
            }
        }

        // Arrivals: attach to `zap_degree` random peers of the target
        // channel and follow their playback steps (the churn-join rule).
        for (_, to) in moves {
            let candidates: Vec<PeerId> =
                self.channels[to].system.overlay().active_peers().collect();
            let degree = self.config.zap_degree.min(candidates.len());
            let neighbours: Vec<PeerId> = candidates
                .choose_multiple(&mut self.rng, degree)
                .copied()
                .collect();
            let attrs = PeerAttrs {
                ping_ms: 80.0 * self.rng.gen_range(0.5..2.0),
                bandwidth: self.bandwidth.sample_peer(&mut self.rng),
            };
            let viewer = self.channels[to]
                .system
                .admit_peer(attrs, &neighbours)
                .expect("zap arrival joins an active channel");
            self.channels[to].zaps_in += 1;
            self.pending.push(PendingZap {
                channel: to,
                viewer,
                joined_period: self.period,
            });
        }

        // One repair pass per channel heals the holes departures left.
        for channel in &mut self.channels {
            channel.system.repair_membership();
        }
    }

    /// Completes pending zaps whose playback has started.
    fn harvest_zap_latencies(&mut self) {
        let tau = self.config.gossip.tau_secs;
        let now = self.period;
        let channels = &mut self.channels;
        self.pending.retain(|zap| {
            let channel = &mut channels[zap.channel];
            // A zapped-in viewer may itself zap away (or churn out) before
            // starting playback: that zap can never complete, so it moves
            // to the abandoned count (still part of the never-reached-
            // playback statistics).
            if !channel.system.overlay().graph().is_active(zap.viewer) {
                channel.zaps_abandoned += 1;
                return false;
            }
            if channel.system.peer(zap.viewer).playback().has_started() {
                let latency = (now - zap.joined_period) as f64 * tau;
                channel.arrival_latencies.push(latency);
                return false;
            }
            true
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_core::FastSwitchScheduler;

    fn manager(workers: usize, channels: usize, seed: u64) -> SessionManager {
        let config = SessionConfig {
            seed,
            ..SessionConfig::paper_default(channels, 40)
        };
        SessionManager::new(config, Arc::new(WorkerPool::new(workers)), || {
            Box::new(FastSwitchScheduler::new())
        })
    }

    #[test]
    fn zapping_session_runs_end_to_end() {
        let mut m = manager(2, 4, 7);
        assert_eq!(m.channels(), 4);
        m.warmup(30);
        m.run_periods(40);
        assert_eq!(m.periods(), 70);

        let report = m.report();
        assert_eq!(report.channels.len(), 4);
        assert!(report.total_zaps() > 0, "no zaps happened");
        assert!(
            report.cross_channel_zaps.completed > 0,
            "no zap reached playback"
        );
        assert!(report.cross_channel_zaps.avg_startup_secs > 0.0);
        let zaps_in: usize = report.channels.iter().map(|c| c.zaps_in).sum();
        let zaps_out: usize = report.channels.iter().map(|c| c.zaps_out).sum();
        assert_eq!(zaps_in, zaps_out, "viewership must be conserved");
        // Every arrival is accounted for: completed, still waiting, or
        // abandoned (departed again before playback started).
        for c in &report.channels {
            assert_eq!(
                c.zaps_in,
                c.zap_latency.zaps(),
                "channel {} loses zaps from its statistics",
                c.channel
            );
        }
        assert_eq!(report.total_zaps(), zaps_in);
        // Every channel keeps streaming throughout.
        for c in &report.channels {
            assert_eq!(c.periods, 70);
            assert!(c.traffic.data_bits > 0);
            assert!(c.viewers > 5);
        }
    }

    #[test]
    fn report_is_identical_across_pool_sizes() {
        let run = |workers: usize| {
            let mut m = manager(workers, 4, 11);
            m.warmup(25);
            m.run_periods(30);
            m.report()
        };
        let reference = run(1);
        for workers in [2, 4, 7] {
            assert_eq!(run(workers), reference, "workers = {workers}");
        }
    }

    #[test]
    fn pool_reuse_across_sessions_leaks_no_state() {
        let pool = Arc::new(WorkerPool::new(3));
        let run_on = |pool: &Arc<WorkerPool>, seed: u64| {
            let config = SessionConfig {
                seed,
                ..SessionConfig::paper_default(3, 40)
            };
            let mut m = SessionManager::new(config, Arc::clone(pool), || {
                Box::new(FastSwitchScheduler::new())
            });
            m.warmup(20);
            m.run_periods(25);
            m.report()
        };
        // Two different sessions back to back on one pool...
        let first = run_on(&pool, 1);
        let second = run_on(&pool, 2);
        // ...must match the same sessions on fresh pools.
        assert_eq!(first, run_on(&Arc::new(WorkerPool::new(3)), 1));
        assert_eq!(second, run_on(&Arc::new(WorkerPool::new(3)), 2));
        assert_ne!(first, second, "different seeds produce different runs");
    }

    #[test]
    #[should_panic(expected = "at least 2 channels")]
    fn single_channel_session_panics() {
        let _ = manager(1, 1, 3);
    }

    #[test]
    fn config_validation() {
        let good = SessionConfig::paper_default(4, 50);
        good.validate().unwrap();
        assert!(SessionConfig {
            viewers_per_channel: 4,
            ..good
        }
        .validate()
        .is_err());
        assert!(SessionConfig {
            zap_fraction: 0.9,
            ..good
        }
        .validate()
        .is_err());
        assert!(SessionConfig {
            zap_degree: 0,
            ..good
        }
        .validate()
        .is_err());
    }
}
