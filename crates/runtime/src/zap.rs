//! Pluggable channel-zapping workloads: who zaps where, and when.
//!
//! The paper's evaluation zaps viewers uniformly between channels; real
//! viewer populations are nothing like that — channel popularity is
//! Zipf-skewed and big live events trigger *flash crowds*, a burst of
//! viewers converging on one channel within one period (cf. the
//! live-entertainment and CliqueStream settings in PAPERS.md).  This module
//! defines the workload abstraction and its three built-in shapes:
//!
//! * [`ZapSchedule`] — a deterministic generator of [`ZapBatch`]es, each a
//!   `(from, to, viewers)` movement at one period boundary;
//! * [`CrowdZap`] — the built-in schedule family: uniform targets, Zipf(α)
//!   popularity-skewed targets ([`ZipfSampler`]), and optional
//!   [`Storm`]s layered on top of either;
//! * [`ZapWorkload`] — a serialisable, copyable description of a workload,
//!   used by `fss-experiments` sweeps to label their points.
//!
//! # The state-independence contract
//!
//! A schedule decides *how many* viewers move between which channel pair at
//! which boundary using only its own configuration, seed and an internal
//! population model — never the live channel state.  This is what lets the
//! pipelined [`SessionManager`](crate::SessionManager) step channels
//! independently and synchronise **only the two channels named by a
//! batch**: every channel can compute (be handed) its future sync points
//! without waiting for any other channel to reach them.  Which *specific*
//! viewers move, and where they attach, is resolved later against live
//! channel state using a per-batch RNG stream, so resolution depends only
//! on the two endpoint channels — the key to byte-identical reports in
//! barrier and pipelined mode alike.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// One planned viewer movement between two channels at a period boundary.
///
/// `viewers` is the *requested* count; the session clamps it when the batch
/// is applied — to the source channel's eligible population, and further to
/// its live survival floor (at least one non-source peer always stays, so a
/// plan drawn from a stale population model can never drain a channel to
/// source-only membership).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ZapBatch {
    /// Period boundary at which the batch applies (viewers move before the
    /// channels execute this period).
    pub period: u64,
    /// Channel the viewers leave.
    pub from: usize,
    /// Channel the viewers join.
    pub to: usize,
    /// Requested number of viewers to move.
    pub viewers: usize,
}

/// A deterministic generator of zap batches.
///
/// The session calls [`batches_at`](Self::batches_at) exactly once per
/// period boundary, in strictly increasing period order, before any channel
/// steps that period.  Implementations may keep internal state (an RNG, a
/// population model) but must never observe live channel state — see the
/// module docs for why.
pub trait ZapSchedule: Send {
    /// A short human-readable label for reports (e.g. `"zipf(1.2)"`).
    fn name(&self) -> String;

    /// Appends this boundary's batches to `out`, in a deterministic order
    /// with `from != to` and `viewers > 0` for every batch.
    fn batches_at(&mut self, period: u64, out: &mut Vec<ZapBatch>);
}

/// No zapping at all — every channel streams in isolation.
///
/// Useful as a baseline and for pipelining benchmarks where channels never
/// synchronise.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoZap;

impl ZapSchedule for NoZap {
    fn name(&self) -> String {
        "none".to_string()
    }

    fn batches_at(&mut self, _period: u64, _out: &mut Vec<ZapBatch>) {}
}

/// Deterministic sampler of a Zipf(α) distribution over ranks `0..n`.
///
/// Rank `r` has weight `1 / (r + 1)^α`, so rank 0 is the most popular.  The
/// sampler draws by inverse-CDF binary search over the precomputed
/// cumulative weights: one `f64` draw from the caller's RNG per sample,
/// which makes sequences a pure function of the seed (asserted by the
/// test-suite).  `α = 0` degenerates to the uniform distribution.
///
/// ```
/// use fss_runtime::zap::ZipfSampler;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let sampler = ZipfSampler::new(4, 1.0);
/// let draw = |seed| {
///     let mut rng = SmallRng::seed_from_u64(seed);
///     (0..16).map(|_| sampler.sample(&mut rng)).collect::<Vec<_>>()
/// };
/// // A fixed seed fixes the channel sequence; rank 0 carries the most mass.
/// assert_eq!(draw(7), draw(7));
/// assert!(sampler.share(0) > sampler.share(3));
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with exponent `alpha`.
    ///
    /// # Panics
    /// Panics if `n` is zero or `alpha` is negative or non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "a Zipf distribution needs at least one rank");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "Zipf exponent must be finite and non-negative, got {alpha}"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(alpha);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        // Guard the binary search against floating-point round-off.
        *cdf.last_mut().expect("n > 0") = 1.0;
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler has no ranks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The probability mass of `rank`.
    ///
    /// # Panics
    /// Panics if `rank` is out of range.
    pub fn share(&self, rank: usize) -> f64 {
        let above = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - above
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First rank whose cumulative weight exceeds `u`.
        self.cdf.partition_point(|&c| c <= u).min(self.len() - 1)
    }

    /// Draws one rank different from `excluded` (rejection sampling — the
    /// acceptance probability is at least `1 − share(excluded)`).
    ///
    /// # Panics
    /// Panics if the sampler has fewer than two ranks.
    pub fn sample_excluding<R: Rng + ?Sized>(&self, rng: &mut R, excluded: usize) -> usize {
        assert!(self.len() > 1, "cannot exclude the only rank");
        loop {
            let rank = self.sample(rng);
            if rank != excluded {
                return rank;
            }
        }
    }
}

/// One flash-crowd event: `size` viewers converge on channel `target` at
/// period boundary `at`, drawn from the other channels in proportion to the
/// schedule's modelled populations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Storm {
    /// Period boundary of the burst.  Must fall within the *measured*
    /// periods (the schedule is never consulted during warm-up; a missed
    /// storm panics rather than silently vanishing).
    pub at: u64,
    /// Channel the crowd converges on.
    pub target: usize,
    /// Total viewers converging in this one period.
    pub size: usize,
}

/// The built-in schedule family: a background zap rate with uniform or
/// Zipf-skewed targets, plus optional flash-crowd [`Storm`]s.
///
/// Internally the schedule maintains a *population model* — its own view of
/// each channel's viewer count, updated by the batches it emits — so that
/// per-channel departure counts track channel size as popular channels grow,
/// without ever reading live channel state (see the module docs).
pub struct CrowdZap {
    label: String,
    channels: usize,
    /// Fraction of a channel's modelled population zapping away per period.
    fraction: f64,
    rng: SmallRng,
    /// `None` = uniform targets; `Some` = Zipf-skewed targets by channel
    /// index (channel 0 the most popular).
    sampler: Option<ZipfSampler>,
    /// Pending storms, sorted by period.
    storms: Vec<Storm>,
    /// Modelled viewer count per channel (including the source).
    pops: Vec<usize>,
    /// Fractional departure credit per channel (deterministic rounding).
    credit: Vec<f64>,
    /// Dense `channels × channels` movement tally, reused per boundary.
    matrix: Vec<usize>,
    /// Last boundary handed out, to enforce the in-order contract.
    last_period: Option<u64>,
}

/// A channel never gives up its last viewers: the source plus one peer stay
/// behind so the overlay survives arbitrarily unpopular channels.
const MIN_CHANNEL_POPULATION: usize = 2;

impl CrowdZap {
    /// Background zapping with uniformly chosen target channels — the
    /// workload of the original multi-channel runtime.
    pub fn uniform(channels: usize, viewers_per_channel: usize, fraction: f64, seed: u64) -> Self {
        Self::build(
            "uniform".to_string(),
            channels,
            viewers_per_channel,
            fraction,
            seed,
            None,
        )
    }

    /// Background zapping with Zipf(α)-skewed target channels: channel 0 is
    /// the most popular, channel `c` has weight `1/(c+1)^α`.
    ///
    /// # Panics
    /// Panics if `alpha` is negative or non-finite.
    pub fn zipf(
        channels: usize,
        viewers_per_channel: usize,
        fraction: f64,
        alpha: f64,
        seed: u64,
    ) -> Self {
        Self::build(
            format!("zipf({alpha})"),
            channels,
            viewers_per_channel,
            fraction,
            seed,
            Some(ZipfSampler::new(channels, alpha)),
        )
    }

    /// Layers flash-crowd storms on top of the background schedule.
    ///
    /// # Panics
    /// Panics if a storm targets an unknown channel.
    pub fn with_storms(mut self, mut storms: Vec<Storm>) -> Self {
        for storm in &storms {
            assert!(
                storm.target < self.channels,
                "storm targets channel {} of {}",
                storm.target,
                self.channels
            );
        }
        if !storms.is_empty() {
            self.label = format!("{}+storms", self.label);
        }
        storms.sort_by_key(|s| s.at);
        self.storms = storms;
        self
    }

    fn build(
        label: String,
        channels: usize,
        viewers_per_channel: usize,
        fraction: f64,
        seed: u64,
        sampler: Option<ZipfSampler>,
    ) -> Self {
        assert!(
            channels >= 2,
            "a zapping workload needs at least 2 channels"
        );
        assert!(
            (0.0..=0.5).contains(&fraction) && fraction.is_finite(),
            "zap fraction {fraction} outside the sensible range [0, 0.5]"
        );
        CrowdZap {
            label,
            channels,
            fraction,
            rng: SmallRng::seed_from_u64(seed ^ 0x5A50_0CAD),
            sampler,
            storms: Vec::new(),
            pops: vec![viewers_per_channel; channels],
            credit: vec![0.0; channels],
            matrix: vec![0; channels * channels],
            last_period: None,
        }
    }

    /// The schedule's modelled per-channel populations (for tests and
    /// reports; the live populations track these up to clamping).
    pub fn modelled_populations(&self) -> &[usize] {
        &self.pops
    }

    /// Draws a target channel for a viewer leaving `from`.
    fn draw_target(&mut self, from: usize) -> usize {
        match &self.sampler {
            Some(sampler) => sampler.sample_excluding(&mut self.rng, from),
            None => {
                let offset = self.rng.gen_range(1..self.channels);
                (from + offset) % self.channels
            }
        }
    }

    /// Apportions a storm of `size` viewers onto the non-target channels,
    /// proportional to modelled populations (largest-remainder rounding so
    /// the total is exact), clamped so no channel drops below the survival
    /// floor.
    fn apportion_storm(&mut self, storm: Storm) {
        // A donor's capacity is its modelled population minus the survival
        // floor minus the departures *already tallied this boundary* (the
        // background rate and any earlier co-boundary storm), so the total
        // outflow of a channel can never exceed its population.
        let committed_outflow = |matrix: &[usize], c: usize| -> usize {
            matrix[c * self.channels..(c + 1) * self.channels]
                .iter()
                .sum()
        };
        let available: Vec<(usize, usize)> = (0..self.channels)
            .filter(|&c| c != storm.target)
            .map(|c| {
                let reserved = MIN_CHANNEL_POPULATION + committed_outflow(&self.matrix, c);
                (c, self.pops[c].saturating_sub(reserved))
            })
            .collect();
        let total_available: usize = available.iter().map(|&(_, a)| a).sum();
        let size = storm.size.min(total_available);
        if size == 0 {
            return;
        }
        // Largest-remainder apportionment of `size` over the donors.
        let mut shares: Vec<(usize, usize, usize, f64)> = available
            .iter()
            .map(|&(c, a)| {
                let exact = size as f64 * a as f64 / total_available as f64;
                let floor = (exact.floor() as usize).min(a);
                (c, floor, a, exact - floor as f64)
            })
            .collect();
        let mut assigned: usize = shares.iter().map(|&(_, f, _, _)| f).sum();
        // Hand the remainder out by descending fractional part (ties by
        // channel index, so the result is deterministic).
        let mut order: Vec<usize> = (0..shares.len()).collect();
        order.sort_by(|&a, &b| {
            shares[b]
                .3
                .partial_cmp(&shares[a].3)
                .expect("finite fractions")
                .then(shares[a].0.cmp(&shares[b].0))
        });
        for &i in order.iter().cycle() {
            if assigned == size {
                break;
            }
            let (_, ref mut count, cap, _) = shares[i];
            if *count < cap {
                *count += 1;
                assigned += 1;
            }
        }
        for (c, count, _, _) in shares {
            self.matrix[c * self.channels + storm.target] += count;
        }
    }
}

impl ZapSchedule for CrowdZap {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn batches_at(&mut self, period: u64, out: &mut Vec<ZapBatch>) {
        assert!(
            self.last_period.is_none_or(|last| period > last),
            "batches_at must be called in strictly increasing period order \
             (got {period} after {:?})",
            self.last_period
        );
        self.last_period = Some(period);

        self.matrix.fill(0);

        // Background zapping: departures proportional to the modelled
        // population, rounded deterministically via per-channel credit.
        for from in 0..self.channels {
            self.credit[from] += self.pops[from] as f64 * self.fraction;
            let mut leaving = self.credit[from].floor() as usize;
            self.credit[from] -= leaving as f64;
            leaving = leaving.min(self.pops[from].saturating_sub(MIN_CHANNEL_POPULATION));
            for _ in 0..leaving {
                let to = self.draw_target(from);
                self.matrix[from * self.channels + to] += 1;
            }
        }

        // Flash crowds scheduled for this boundary.  A storm whose boundary
        // was never consulted (it fell into the zap-free warm-up window, or
        // before this schedule was driven at all) would silently invalidate
        // the measurement, so it fails loudly instead.
        while let Some(&storm) = self.storms.first() {
            assert!(
                storm.at >= period,
                "storm at period {} was missed: the schedule's first consulted \
                 boundary is {period} — storms must land in measured periods \
                 (after the warm-up)",
                storm.at
            );
            if storm.at != period {
                break;
            }
            self.storms.remove(0);
            self.apportion_storm(storm);
        }

        // Emit batches in (from, to) order and update the population model.
        for from in 0..self.channels {
            for to in 0..self.channels {
                let viewers = self.matrix[from * self.channels + to];
                if viewers == 0 {
                    continue;
                }
                out.push(ZapBatch {
                    period,
                    from,
                    to,
                    viewers,
                });
                self.pops[from] -= viewers;
                self.pops[to] += viewers;
            }
        }
    }
}

/// A serialisable description of a zap workload, used to parameterise
/// experiment sweeps and label their points.
///
/// [`build`](Self::build) turns the description into the concrete
/// [`ZapSchedule`] for a given session shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum ZapWorkload {
    /// No zapping at all.
    None,
    /// Uniform target channels at the session's background zap rate.
    Uniform,
    /// Zipf(α)-skewed target channels (channel 0 the most popular).
    Zipf {
        /// The Zipf exponent; 0 degenerates to uniform.
        alpha: f64,
    },
    /// Uniform background zapping plus one flash-crowd storm.
    FlashCrowd {
        /// Channel the crowd converges on.
        target: usize,
        /// Period boundary of the burst (must land in a measured period,
        /// after the warm-up — see [`Storm::at`]).
        at: u64,
        /// Viewers converging in that one period.
        size: usize,
    },
}

impl ZapWorkload {
    /// Builds the schedule for a session of `channels` channels with
    /// `viewers_per_channel` starting viewers, a background `fraction` zap
    /// rate and the given `seed`.
    pub fn build(
        &self,
        channels: usize,
        viewers_per_channel: usize,
        fraction: f64,
        seed: u64,
    ) -> Box<dyn ZapSchedule> {
        match *self {
            ZapWorkload::None => Box::new(NoZap),
            ZapWorkload::Uniform => Box::new(CrowdZap::uniform(
                channels,
                viewers_per_channel,
                fraction,
                seed,
            )),
            ZapWorkload::Zipf { alpha } => Box::new(CrowdZap::zipf(
                channels,
                viewers_per_channel,
                fraction,
                alpha,
                seed,
            )),
            ZapWorkload::FlashCrowd { target, at, size } => Box::new(
                CrowdZap::uniform(channels, viewers_per_channel, fraction, seed)
                    .with_storms(vec![Storm { at, target, size }]),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(schedule: &mut dyn ZapSchedule, periods: std::ops::Range<u64>) -> Vec<ZapBatch> {
        let mut out = Vec::new();
        for p in periods {
            schedule.batches_at(p, &mut out);
        }
        out
    }

    #[test]
    fn zipf_sampler_fixed_seed_fixed_sequence() {
        let sampler = ZipfSampler::new(8, 1.1);
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..64).map(|_| sampler.sample(&mut rng)).collect()
        };
        assert_eq!(draw(42), draw(42), "same seed must give the same sequence");
        assert_ne!(draw(42), draw(43), "different seeds must diverge");
    }

    #[test]
    fn zipf_sampler_frequencies_follow_rank() {
        let sampler = ZipfSampler::new(6, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 6];
        let n = 60_000;
        for _ in 0..n {
            counts[sampler.sample(&mut rng)] += 1;
        }
        // Popularity must decrease with rank, and the empirical share of
        // each rank must be close to the analytic share.
        for w in counts.windows(2) {
            assert!(w[0] > w[1], "counts not rank-ordered: {counts:?}");
        }
        for (rank, &count) in counts.iter().enumerate() {
            let expected = sampler.share(rank);
            let observed = count as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {rank}: observed {observed:.3} vs analytic {expected:.3}"
            );
        }
        let total_share: f64 = (0..6).map(|r| sampler.share(r)).sum();
        assert!((total_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_zero_alpha_is_uniform() {
        let sampler = ZipfSampler::new(5, 0.0);
        for rank in 0..5 {
            assert!((sampler.share(rank) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sample_excluding_never_returns_excluded() {
        let sampler = ZipfSampler::new(4, 2.0);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..2_000 {
            assert_ne!(sampler.sample_excluding(&mut rng, 0), 0);
        }
    }

    #[test]
    fn crowd_schedule_is_deterministic_and_conserves_population() {
        let build = || CrowdZap::zipf(5, 80, 0.04, 1.2, 99);
        let a = drain(&mut build(), 0..60);
        let b = drain(&mut build(), 0..60);
        assert_eq!(a, b, "same configuration must give identical batches");
        assert!(!a.is_empty());
        for batch in &a {
            assert_ne!(batch.from, batch.to);
            assert!(batch.viewers > 0);
            assert!(batch.from < 5 && batch.to < 5);
        }

        let mut schedule = build();
        let _ = drain(&mut schedule, 0..60);
        let total: usize = schedule.modelled_populations().iter().sum();
        assert_eq!(total, 5 * 80, "the model must conserve total viewership");
        for &pop in schedule.modelled_populations() {
            assert!(pop >= MIN_CHANNEL_POPULATION);
        }
    }

    #[test]
    fn zipf_schedule_concentrates_arrivals_on_popular_channels() {
        let mut schedule = CrowdZap::zipf(6, 100, 0.05, 1.5, 11);
        let batches = drain(&mut schedule, 0..200);
        let mut arrivals = [0usize; 6];
        for b in &batches {
            arrivals[b.to] += b.viewers;
        }
        assert!(
            arrivals[0] > arrivals[5] * 2,
            "channel 0 must dominate arrivals: {arrivals:?}"
        );
        let pops = schedule.modelled_populations();
        assert!(pops[0] > pops[5], "popular channels must grow: {pops:?}");
    }

    #[test]
    fn storm_converges_on_the_target_in_one_period() {
        let mut schedule = CrowdZap::uniform(4, 100, 0.0, 5).with_storms(vec![Storm {
            at: 10,
            target: 2,
            size: 90,
        }]);
        assert_eq!(schedule.name(), "uniform+storms");
        let mut out = Vec::new();
        for p in 0..20 {
            let before = out.len();
            schedule.batches_at(p, &mut out);
            if p != 10 {
                assert_eq!(out.len(), before, "no background rate, no batches");
            }
        }
        let total: usize = out.iter().map(|b| b.viewers).sum();
        assert_eq!(total, 90, "the whole storm must be apportioned");
        assert!(out.iter().all(|b| b.to == 2 && b.period == 10));
        // Proportional apportionment over three equal donors: 30 each.
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|b| b.viewers == 30));
    }

    /// Regression test: a storm sharing its boundary with background
    /// departures must account for the outflow already tallied — otherwise
    /// a donor's total departures could exceed its population and underflow
    /// the model.
    #[test]
    fn storm_on_top_of_background_zapping_never_overdraws_a_donor() {
        let mut schedule = CrowdZap::uniform(4, 100, 0.05, 7).with_storms(vec![Storm {
            at: 0,
            target: 0,
            size: 400,
        }]);
        let batches = drain(&mut schedule, 0..20);
        assert!(!batches.is_empty());
        let pops = schedule.modelled_populations();
        let total: usize = pops.iter().sum();
        assert_eq!(total, 4 * 100, "population must be conserved");
        for &pop in pops {
            assert!(pop >= MIN_CHANNEL_POPULATION, "pops {pops:?}");
        }
    }

    #[test]
    #[should_panic(expected = "was missed")]
    fn storm_missed_by_the_first_consulted_boundary_panics() {
        let mut schedule = CrowdZap::uniform(3, 50, 0.02, 1).with_storms(vec![Storm {
            at: 10,
            target: 0,
            size: 20,
        }]);
        let mut out = Vec::new();
        // First consultation happens after the storm's boundary — e.g. a
        // storm scheduled into the zap-free warm-up window.
        schedule.batches_at(40, &mut out);
    }

    #[test]
    fn storm_is_clamped_to_the_survival_floor() {
        let mut schedule = CrowdZap::uniform(3, 10, 0.0, 1).with_storms(vec![Storm {
            at: 0,
            target: 0,
            size: 1_000,
        }]);
        let batches = drain(&mut schedule, 0..1);
        let total: usize = batches.iter().map(|b| b.viewers).sum();
        // Two donor channels of 10 can give up at most 8 each.
        assert_eq!(total, 16);
        let pops = schedule.modelled_populations();
        assert_eq!(pops[1], MIN_CHANNEL_POPULATION);
        assert_eq!(pops[2], MIN_CHANNEL_POPULATION);
    }

    #[test]
    fn workload_descriptions_build_matching_schedules() {
        let mut uniform = ZapWorkload::Uniform.build(4, 50, 0.02, 7);
        assert_eq!(uniform.name(), "uniform");
        let batches = drain(uniform.as_mut(), 0..30);
        assert!(!batches.is_empty());

        let zipf = ZapWorkload::Zipf { alpha: 0.9 }.build(4, 50, 0.02, 7);
        assert_eq!(zipf.name(), "zipf(0.9)");

        let mut storm = ZapWorkload::FlashCrowd {
            target: 1,
            at: 5,
            size: 40,
        }
        .build(4, 50, 0.02, 7);
        assert_eq!(storm.name(), "uniform+storms");
        let batches = drain(storm.as_mut(), 0..6);
        let into_target: usize = batches
            .iter()
            .filter(|b| b.period == 5 && b.to == 1)
            .map(|b| b.viewers)
            .sum();
        assert!(into_target >= 40, "storm arrivals missing: {into_target}");

        let mut none = ZapWorkload::None.build(4, 50, 0.02, 7);
        assert_eq!(none.name(), "none");
        assert!(drain(none.as_mut(), 0..30).is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_boundary_queries_panic() {
        let mut schedule = CrowdZap::uniform(3, 20, 0.1, 1);
        let mut out = Vec::new();
        schedule.batches_at(5, &mut out);
        schedule.batches_at(5, &mut out);
    }
}
