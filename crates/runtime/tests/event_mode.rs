//! Fault-injection regression suite for the event-driven stepping mode.
//!
//! Two invariants are pinned here:
//!
//! 1. **Degenerate equivalence** — installing the *ideal* network model
//!    (zero latency, zero loss, zero jitter) must reproduce the
//!    period-lockstep golden digests of `golden_report.rs` byte for byte.
//!    The event core is a strict generalisation: at the ideal point every
//!    grant arrives at the boundary that resolved it, in resolver order,
//!    and no fault stream is ever sampled.
//!
//! 2. **Faulty-run determinism** — a lossy, delayed, jittered run is itself
//!    digest-pinned and byte-identical across pool sizes {1, 2, 4, 7} ×
//!    shard counts {1, 2, 4, 8} × barrier/pipelined stepping.  Loss and
//!    jitter draws are stateless hashes (no RNG cursor), so no execution
//!    interleaving can perturb them.

use fss_core::FastSwitchScheduler;
use fss_overlay::NetworkConfig;
use fss_runtime::zap::{CrowdZap, Storm};
use fss_runtime::{RuntimeReport, SessionConfig, SessionManager, SteppingMode, WorkerPool};
use std::hash::Hasher;
use std::sync::Arc;

/// FxHash-style digest (deterministic across processes, unlike the std
/// `RandomState`).  Mirrors `fss_gossip::hasher::FxHasher64`.
fn fx_digest(text: &str) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    struct Fx(u64);
    impl Hasher for Fx {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 = (self.0.rotate_left(5) ^ b as u64).wrapping_mul(SEED);
            }
        }
    }
    let mut h = Fx(0);
    h.write(text.as_bytes());
    h.finish()
}

/// The pre-directory report surface `golden_report.rs` pins.
fn legacy_surface(report: &RuntimeReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    write!(s, "periods={} workload={}", report.periods, report.workload).unwrap();
    for c in &report.channels {
        write!(
            s,
            " | ch{} viewers={} periods={} traffic={:?} in={} out={} lat={:?}",
            c.channel, c.viewers, c.periods, c.traffic, c.zaps_in, c.zaps_out, c.zap_latency
        )
        .unwrap();
    }
    write!(
        s,
        " | cross={:?} load={:?} mem={:?}",
        report.cross_channel_zaps, report.zap_load, report.mem
    )
    .unwrap();
    s
}

/// The streaming-QoE telemetry surface `golden_report.rs` pins.
fn qoe_surface(report: &RuntimeReport) -> String {
    format!(
        "qoe={:?} depth={:?} card={}",
        report.qoe_timeline,
        report.queue_depth,
        report.scorecard.to_text()
    )
}

/// Mirrors `golden_report::run`, with a network model installed.
fn run_golden(
    channels: usize,
    seed: u64,
    mode: SteppingMode,
    churn: bool,
    storms: bool,
    network: NetworkConfig,
) -> RuntimeReport {
    let config = SessionConfig {
        seed,
        network: Some(network),
        ..SessionConfig::paper_default(channels, 40)
    };
    let pool = Arc::new(WorkerPool::new(3));
    let mut m = SessionManager::new(config, pool, || Box::new(FastSwitchScheduler::new()));
    if storms {
        m.set_zap_schedule(Box::new(
            CrowdZap::zipf(channels, 40, config.zap_fraction, 1.2, seed).with_storms(vec![Storm {
                at: 32,
                target: 1,
                size: 25,
            }]),
        ));
    }
    if churn {
        m.enable_channel_churn(5);
    }
    m.set_mode(mode);
    m.warmup(25);
    m.run_periods(30);
    m.report()
}

/// The golden digests of `golden_report.rs`, captured from period-lockstep
/// runs.  The ideal event-driven runs below must land on the same bytes.
const LEGACY_UNIFORM_BARRIER: u64 = 421153501399809134;
const LEGACY_CHURN_STORM_PIPELINED: u64 = 844092618700673579;
const QOE_UNIFORM_BARRIER: u64 = 7323453145858924477;
const QOE_CHURN_STORM_PIPELINED: u64 = 12569093327864263347;

#[test]
fn ideal_event_mode_reproduces_the_uniform_barrier_pins() {
    let report = run_golden(
        4,
        11,
        SteppingMode::Barrier,
        false,
        false,
        NetworkConfig::ideal(),
    );
    let surface = legacy_surface(&report);
    assert_eq!(
        fx_digest(&surface),
        LEGACY_UNIFORM_BARRIER,
        "ideal event mode diverged from period-lockstep:\n{surface}"
    );
    assert_eq!(
        fx_digest(&qoe_surface(&report)),
        QOE_UNIFORM_BARRIER,
        "ideal event mode perturbed the QoE telemetry surface"
    );
}

#[test]
fn ideal_event_mode_reproduces_the_churn_storm_pipelined_pins() {
    let report = run_golden(
        5,
        13,
        SteppingMode::Pipelined { run_ahead: 4 },
        true,
        true,
        NetworkConfig::ideal(),
    );
    let surface = legacy_surface(&report);
    assert_eq!(
        fx_digest(&surface),
        LEGACY_CHURN_STORM_PIPELINED,
        "ideal event mode diverged from period-lockstep:\n{surface}"
    );
    assert_eq!(
        fx_digest(&qoe_surface(&report)),
        QOE_CHURN_STORM_PIPELINED,
        "ideal event mode perturbed the QoE telemetry surface"
    );
}

/// A faulty network that exercises every code path: 12% per-message loss,
/// trace latencies scaled past the period length, and enough jitter to
/// reorder same-link messages.
fn faulty_network() -> NetworkConfig {
    NetworkConfig {
        latency_scale: 3.0,
        loss_rate: 0.12,
        jitter_ms: 25,
        seed: 0xFA_0175,
    }
}

/// One lossy run of the full nasty configuration (churn + Zipf storms) at
/// the given pool size / shard count / stepping mode.
fn run_faulty(workers: usize, shards: usize, mode: SteppingMode) -> RuntimeReport {
    let config = SessionConfig {
        seed: 29,
        network: Some(faulty_network()),
        ..SessionConfig::paper_default(3, 35)
    };
    let pool = Arc::new(WorkerPool::new(workers));
    let mut m = SessionManager::new(config, pool, || Box::new(FastSwitchScheduler::new()));
    m.set_zap_schedule(Box::new(
        CrowdZap::zipf(3, 35, config.zap_fraction, 1.2, 29).with_storms(vec![Storm {
            at: 20,
            target: 1,
            size: 15,
        }]),
    ));
    m.enable_channel_churn(5);
    m.set_gossip_parallelism(workers);
    m.set_shards(shards);
    m.set_mode(mode);
    m.warmup(14);
    m.run_periods(18);
    m.report()
}

/// Digest of the (workers=1, shards=1, barrier) faulty reference run.
/// Every other combination must reproduce its surfaces byte for byte.
const FAULTY_PINNED_DIGEST: u64 = 13441145006459968134;

#[test]
fn faulty_runs_are_pinned_and_identical_across_pools_shards_and_modes() {
    let reference = run_faulty(1, 1, SteppingMode::Barrier);
    let reference_surface = format!(
        "{}\n{}",
        legacy_surface(&reference),
        qoe_surface(&reference)
    );
    assert_eq!(
        fx_digest(&reference_surface),
        FAULTY_PINNED_DIGEST,
        "faulty event-mode run drifted from the pinned baseline:\n{reference_surface}"
    );

    for &workers in &[2usize, 4, 7] {
        for &shards in &[2usize, 4, 8] {
            for mode in [
                SteppingMode::Barrier,
                SteppingMode::Pipelined { run_ahead: 4 },
            ] {
                let report = run_faulty(workers, shards, mode);
                let surface = format!("{}\n{}", legacy_surface(&report), qoe_surface(&report));
                assert_eq!(
                    surface, reference_surface,
                    "faulty run diverged at workers={workers} shards={shards} mode={mode:?}"
                );
            }
        }
    }
}

#[test]
fn loss_shows_up_as_reduced_data_traffic() {
    let ideal = run_golden(
        4,
        11,
        SteppingMode::Barrier,
        false,
        false,
        NetworkConfig::ideal(),
    );
    let lossy = run_golden(
        4,
        11,
        SteppingMode::Barrier,
        false,
        false,
        NetworkConfig::lossy(0.2, 7),
    );
    let data = |r: &RuntimeReport| r.channels.iter().map(|c| c.traffic.data_bits).sum::<u64>();
    assert!(
        data(&lossy) < data(&ideal),
        "20% loss must strictly reduce delivered data traffic"
    );
    let control = |r: &RuntimeReport| {
        r.channels
            .iter()
            .map(|c| c.traffic.control_bits)
            .sum::<u64>()
    };
    assert!(
        control(&lossy) > 0 && data(&lossy) > 0,
        "a 20%-lossy overlay must still stream"
    );
}
