//! Sharded peer storage must be unobservable in every report: a channel's
//! struct-of-arrays shard count changes *where* peer columns live and how
//! the scheduling pass is chunked over the worker pool — never a single
//! byte of any result.
//!
//! The sweep below drives the nastiest configuration the runtime offers —
//! per-channel churn, a Zipf zap workload with a flash-crowd storm, the
//! rate-limited admission queue and bounded candidate views — across shard
//! counts {1, 2, 4, 8} × pool sizes {1, 2, 4, 7} × both stepping modes, and
//! additionally pins the report digest so a shard-dependent result cannot
//! sneak in together with a compensating test update.

use fss_core::FastSwitchScheduler;
use fss_runtime::zap::{CrowdZap, Storm};
use fss_runtime::{
    AdmissionControl, RuntimeReport, SessionConfig, SessionManager, SteppingMode, WorkerPool,
};
use std::hash::Hasher;
use std::sync::Arc;

/// FxHash-style digest (deterministic across processes, unlike the std
/// `RandomState`).  Mirrors `fss_gossip::hasher::FxHasher64`.
fn fx_digest(text: &str) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    struct Fx(u64);
    impl Hasher for Fx {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 = (self.0.rotate_left(5) ^ b as u64).wrapping_mul(SEED);
            }
        }
    }
    let mut h = Fx(0);
    h.write(text.as_bytes());
    h.finish()
}

/// The full report surface, admission metrics included (this sweep exists
/// to exercise the rate-limited admission path under sharding).  `{:?}` on
/// `f64` prints the shortest round-trip representation, so the digest is
/// exact, not rounded.
fn surface(report: &RuntimeReport, timeline: &[(u64, usize)]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    write!(s, "periods={} workload={}", report.periods, report.workload).unwrap();
    for c in &report.channels {
        write!(
            s,
            " | ch{} viewers={} periods={} traffic={:?} in={} out={} lat={:?}",
            c.channel, c.viewers, c.periods, c.traffic, c.zaps_in, c.zaps_out, c.zap_latency
        )
        .unwrap();
    }
    write!(
        s,
        " | cross={:?} load={:?} mem={:?} adm={:?} q={timeline:?}",
        report.cross_channel_zaps, report.zap_load, report.mem, report.admission
    )
    .unwrap();
    s
}

fn run(shards: usize, workers: usize, mode: SteppingMode) -> (RuntimeReport, Vec<(u64, usize)>) {
    let config = SessionConfig {
        seed: 47,
        admission: AdmissionControl {
            max_admits_per_period: Some(6),
            view_bound: Some(16),
        },
        ..SessionConfig::paper_default(4, 40)
    };
    let mut m = SessionManager::new(config, Arc::new(WorkerPool::new(workers)), || {
        Box::new(FastSwitchScheduler::new())
    });
    m.set_zap_schedule(Box::new(CrowdZap::zipf(4, 40, 0.03, 1.2, 47).with_storms(
        vec![Storm {
            at: 30,
            target: 1,
            size: 40,
        }],
    )));
    m.enable_channel_churn(9);
    m.set_shards(shards);
    m.set_mode(mode);
    m.warmup(25);
    m.run_periods(30);
    (m.report(), m.queue_depth_timeline())
}

/// The digest of the single-shard, single-worker barrier run.  Every other
/// (shards, workers, mode) combination must reproduce it byte for byte.
const PINNED_DIGEST: u64 = 17188237993819082087;

/// Digest of the same reference run's streaming-QoE telemetry surface
/// (bounded timelines + scorecard), pinned separately so the legacy pin
/// above keeps its pre-telemetry value.
const QOE_PINNED_DIGEST: u64 = 17697973354510269892;

/// The telemetry surface of one report: the folded QoE / queue-depth
/// timelines and the scorecard's exact text form.
fn qoe_surface(report: &RuntimeReport) -> String {
    format!(
        "qoe={:?} depth={:?} card={}",
        report.qoe_timeline,
        report.queue_depth,
        report.scorecard.to_text()
    )
}

#[test]
fn reports_are_byte_identical_across_shard_counts_and_pool_sizes() {
    let (reference, reference_timeline) = run(1, 1, SteppingMode::Barrier);
    assert!(reference.total_zaps() > 0);
    assert!(reference.cross_channel_zaps.completed > 0);
    assert!(reference.admission.rate_limited);
    assert!(reference.admission.deferred > 0, "the storm must queue");

    assert_eq!(
        fx_digest(&surface(&reference, &reference_timeline)),
        PINNED_DIGEST,
        "sharded run drifted from the pinned baseline:\n{}",
        surface(&reference, &reference_timeline)
    );
    assert!(
        reference.scorecard.admission_peak_queue > 0,
        "the storm must register on the depth timeline"
    );
    assert_eq!(
        fx_digest(&qoe_surface(&reference)),
        QOE_PINNED_DIGEST,
        "QoE telemetry drifted from the pinned baseline:\n{}",
        qoe_surface(&reference)
    );

    for &shards in &[1usize, 2, 4, 8] {
        for &workers in &[1usize, 2, 4, 7] {
            let (report, timeline) = run(shards, workers, SteppingMode::Barrier);
            assert_eq!(report, reference, "shards={shards} workers={workers}");
            assert_eq!(
                timeline, reference_timeline,
                "timeline shards={shards} workers={workers}"
            );
        }
        // Pipelined stepping composes with sharding too.
        let (report, timeline) = run(shards, 4, SteppingMode::Pipelined { run_ahead: 4 });
        assert_eq!(report, reference, "pipelined shards={shards}");
        assert_eq!(timeline, reference_timeline, "pipelined timeline");
    }
}
