//! Pins the exact `RuntimeReport` content of representative multi-channel
//! runs so refactors of the membership/admission machinery cannot silently
//! change results.
//!
//! The digests below were captured from the session manager **before** the
//! membership directory existed (the per-batch `active_peers()` collection
//! path of PR 4).  The directory refactor must reproduce those reports
//! byte-for-byte whenever the admission queue is disabled (the default):
//! every RNG draw of the zap, churn and repair paths has to stay in the
//! same order over the same candidate sets.
//!
//! Only fields that existed before the refactor contribute to the digest —
//! new additive metrics (e.g. the admission summary) are deliberately
//! excluded so they can evolve without invalidating the pin.

use fss_core::FastSwitchScheduler;
use fss_runtime::zap::{CrowdZap, Storm};
use fss_runtime::{RuntimeReport, SessionConfig, SessionManager, SteppingMode, WorkerPool};
use std::hash::Hasher;
use std::sync::Arc;

/// FxHash-style digest (deterministic across processes, unlike the std
/// `RandomState`).  Mirrors `fss_gossip::hasher::FxHasher64`.
fn fx_digest(text: &str) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    struct Fx(u64);
    impl Hasher for Fx {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 = (self.0.rotate_left(5) ^ b as u64).wrapping_mul(SEED);
            }
        }
    }
    let mut h = Fx(0);
    h.write(text.as_bytes());
    h.finish()
}

/// Formats the pre-refactor report surface.  `{:?}` on `f64` prints the
/// shortest round-trip representation, so the digest is exact, not rounded.
fn legacy_surface(report: &RuntimeReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    write!(s, "periods={} workload={}", report.periods, report.workload).unwrap();
    for c in &report.channels {
        write!(
            s,
            " | ch{} viewers={} periods={} traffic={:?} in={} out={} lat={:?}",
            c.channel, c.viewers, c.periods, c.traffic, c.zaps_in, c.zaps_out, c.zap_latency
        )
        .unwrap();
    }
    write!(
        s,
        " | cross={:?} load={:?} mem={:?}",
        report.cross_channel_zaps, report.zap_load, report.mem
    )
    .unwrap();
    s
}

/// The streaming-QoE telemetry surface (bounded timelines + scorecard),
/// pinned separately from the legacy surface so the pre-directory digests
/// above stay valid while the telemetry layer gets its own drift guard.
fn qoe_surface(report: &RuntimeReport) -> String {
    format!(
        "qoe={:?} depth={:?} card={}",
        report.qoe_timeline,
        report.queue_depth,
        report.scorecard.to_text()
    )
}

fn run(channels: usize, seed: u64, mode: SteppingMode, churn: bool, storms: bool) -> RuntimeReport {
    let config = SessionConfig {
        seed,
        ..SessionConfig::paper_default(channels, 40)
    };
    let pool = Arc::new(WorkerPool::new(3));
    let mut m = SessionManager::new(config, pool, || Box::new(FastSwitchScheduler::new()));
    if storms {
        m.set_zap_schedule(Box::new(
            CrowdZap::zipf(channels, 40, config.zap_fraction, 1.2, seed).with_storms(vec![Storm {
                at: 32,
                target: 1,
                size: 25,
            }]),
        ));
    }
    if churn {
        m.enable_channel_churn(5);
    }
    m.set_mode(mode);
    m.warmup(25);
    m.run_periods(30);
    m.report()
}

#[test]
fn uniform_barrier_report_matches_the_pre_directory_pin() {
    let report = run(4, 11, SteppingMode::Barrier, false, false);
    let surface = legacy_surface(&report);
    assert_eq!(
        fx_digest(&surface),
        421153501399809134,
        "report drifted from the pre-directory baseline:\n{surface}"
    );
}

#[test]
fn churn_storm_pipelined_report_matches_the_pre_directory_pin() {
    let report = run(5, 13, SteppingMode::Pipelined { run_ahead: 4 }, true, true);
    let surface = legacy_surface(&report);
    assert_eq!(
        fx_digest(&surface),
        844092618700673579,
        "report drifted from the pre-directory baseline:\n{surface}"
    );
}

#[test]
fn qoe_telemetry_is_pinned_for_the_uniform_barrier_run() {
    let report = run(4, 11, SteppingMode::Barrier, false, false);
    let surface = qoe_surface(&report);
    assert!(report.scorecard.startups > 0, "warmup must start playback");
    assert_eq!(
        fx_digest(&surface),
        7323453145858924477,
        "QoE telemetry drifted from the pinned baseline:\n{surface}"
    );
}

#[test]
fn qoe_telemetry_is_pinned_for_the_churn_storm_pipelined_run() {
    let report = run(5, 13, SteppingMode::Pipelined { run_ahead: 4 }, true, true);
    let surface = qoe_surface(&report);
    assert_eq!(
        fx_digest(&surface),
        12569093327864263347,
        "QoE telemetry drifted from the pinned baseline:\n{surface}"
    );
}
