//! The fused-pipeline oracle at the runtime level: the shard-major fused
//! period pipeline (the default) and the phase-major ordering it replaced
//! (`set_phase_major(true)`) must be unobservable in every report surface.
//!
//! Three invariants are pinned:
//!
//! 1. **Digest stability** — the phase-major run of the nastiest runtime
//!    scenario (per-channel churn, Zipf zaps with a flash-crowd storm,
//!    rate-limited admission, bounded views) reproduces the *same* pinned
//!    digests as `shard_determinism.rs`, whose runs go through the fused
//!    path.  One constant therefore pins both pipelines at once.
//! 2. **Matrix equality** — fused and phase-major reports are byte-equal
//!    across shard counts {1, 2, 4, 8} × pool sizes {1, 2, 4, 7} and under
//!    pipelined stepping.
//! 3. **Event-mode agreement** — with the ideal network installed, the
//!    event-driven core (which resolves deliveries through the same fused
//!    scheduling pass but applies them message by message) matches both
//!    period-lockstep pipelines byte for byte.
//!
//! The phase-major path is kept for one release as this suite's oracle;
//! when it is removed, invariant 1 keeps pinning the fused pipeline alone.

use fss_core::FastSwitchScheduler;
use fss_overlay::NetworkConfig;
use fss_runtime::zap::{CrowdZap, Storm};
use fss_runtime::{
    AdmissionControl, RuntimeReport, SessionConfig, SessionManager, SteppingMode, WorkerPool,
};
use std::hash::Hasher;
use std::sync::Arc;

/// FxHash-style digest (deterministic across processes, unlike the std
/// `RandomState`).  Mirrors `fss_gossip::hasher::FxHasher64`.
fn fx_digest(text: &str) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    struct Fx(u64);
    impl Hasher for Fx {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 = (self.0.rotate_left(5) ^ b as u64).wrapping_mul(SEED);
            }
        }
    }
    let mut h = Fx(0);
    h.write(text.as_bytes());
    h.finish()
}

/// The full report surface `shard_determinism.rs` pins (admission metrics
/// included).
fn surface(report: &RuntimeReport, timeline: &[(u64, usize)]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    write!(s, "periods={} workload={}", report.periods, report.workload).unwrap();
    for c in &report.channels {
        write!(
            s,
            " | ch{} viewers={} periods={} traffic={:?} in={} out={} lat={:?}",
            c.channel, c.viewers, c.periods, c.traffic, c.zaps_in, c.zaps_out, c.zap_latency
        )
        .unwrap();
    }
    write!(
        s,
        " | cross={:?} load={:?} mem={:?} adm={:?} q={timeline:?}",
        report.cross_channel_zaps, report.zap_load, report.mem, report.admission
    )
    .unwrap();
    s
}

/// The telemetry surface of one report: the folded QoE / queue-depth
/// timelines and the scorecard's exact text form.
fn qoe_surface(report: &RuntimeReport) -> String {
    format!(
        "qoe={:?} depth={:?} card={}",
        report.qoe_timeline,
        report.queue_depth,
        report.scorecard.to_text()
    )
}

/// The churn + storm scenario of `shard_determinism.rs`, with the pipeline
/// selector exposed.
fn run(
    shards: usize,
    workers: usize,
    mode: SteppingMode,
    phase_major: bool,
) -> (RuntimeReport, Vec<(u64, usize)>) {
    let config = SessionConfig {
        seed: 47,
        admission: AdmissionControl {
            max_admits_per_period: Some(6),
            view_bound: Some(16),
        },
        ..SessionConfig::paper_default(4, 40)
    };
    let mut m = SessionManager::new(config, Arc::new(WorkerPool::new(workers)), || {
        Box::new(FastSwitchScheduler::new())
    });
    m.set_zap_schedule(Box::new(CrowdZap::zipf(4, 40, 0.03, 1.2, 47).with_storms(
        vec![Storm {
            at: 30,
            target: 1,
            size: 40,
        }],
    )));
    m.enable_channel_churn(9);
    m.set_shards(shards);
    m.set_mode(mode);
    m.set_phase_major(phase_major);
    m.warmup(25);
    m.run_periods(30);
    (m.report(), m.queue_depth_timeline())
}

/// The pinned digests of `shard_determinism.rs` — captured from fused-path
/// runs; the phase-major oracle must land on the same bytes.
const PINNED_DIGEST: u64 = 17188237993819082087;
const QOE_PINNED_DIGEST: u64 = 17697973354510269892;

#[test]
fn phase_major_reproduces_the_fused_pins() {
    let (reference, timeline) = run(1, 1, SteppingMode::Barrier, true);
    assert_eq!(
        fx_digest(&surface(&reference, &timeline)),
        PINNED_DIGEST,
        "phase-major pipeline drifted from the pinned fused baseline:\n{}",
        surface(&reference, &timeline)
    );
    assert_eq!(
        fx_digest(&qoe_surface(&reference)),
        QOE_PINNED_DIGEST,
        "phase-major QoE telemetry drifted from the pinned fused baseline:\n{}",
        qoe_surface(&reference)
    );
}

#[test]
fn fused_and_phase_major_agree_across_shards_and_pools() {
    let (reference, reference_timeline) = run(1, 1, SteppingMode::Barrier, false);
    assert!(reference.total_zaps() > 0);
    assert!(reference.admission.deferred > 0, "the storm must queue");

    for &shards in &[1usize, 2, 4, 8] {
        for &workers in &[1usize, 2, 4, 7] {
            let (report, timeline) = run(shards, workers, SteppingMode::Barrier, true);
            assert_eq!(
                report, reference,
                "phase-major shards={shards} workers={workers}"
            );
            assert_eq!(
                timeline, reference_timeline,
                "phase-major timeline shards={shards} workers={workers}"
            );
        }
        // Pipelined stepping composes with the oracle too.
        let (report, timeline) = run(shards, 4, SteppingMode::Pipelined { run_ahead: 4 }, true);
        assert_eq!(report, reference, "pipelined phase-major shards={shards}");
        assert_eq!(timeline, reference_timeline, "pipelined timeline");
    }
}

/// Event-mode leg: with the ideal network, the event-driven core must match
/// both period-lockstep pipelines byte for byte, across shard counts.
fn run_event(shards: usize, network: Option<NetworkConfig>, phase_major: bool) -> RuntimeReport {
    let config = SessionConfig {
        seed: 13,
        network,
        ..SessionConfig::paper_default(4, 40)
    };
    let pool = Arc::new(WorkerPool::new(3));
    let mut m = SessionManager::new(config, pool, || Box::new(FastSwitchScheduler::new()));
    m.set_zap_schedule(Box::new(
        CrowdZap::zipf(4, 40, config.zap_fraction, 1.2, 13).with_storms(vec![Storm {
            at: 32,
            target: 1,
            size: 25,
        }]),
    ));
    m.enable_channel_churn(5);
    m.set_shards(shards);
    m.set_phase_major(phase_major);
    m.warmup(25);
    m.run_periods(30);
    m.report()
}

#[test]
fn ideal_event_mode_matches_both_pipelines() {
    let fused = run_event(1, None, false);
    for &shards in &[1usize, 2, 4, 8] {
        let event = run_event(shards, Some(NetworkConfig::ideal()), false);
        assert_eq!(event, fused, "event vs fused, shards={shards}");
        let phase_major = run_event(shards, None, true);
        assert_eq!(phase_major, fused, "phase-major vs fused, shards={shards}");
    }
}
