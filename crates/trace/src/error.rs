//! Error type for trace parsing and validation.

use std::fmt;

/// Errors produced while parsing or validating a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A line in the trace file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human readable description of the problem.
        message: String,
    },
    /// An edge references a node id that does not exist in the trace.
    UnknownNode {
        /// The offending node id.
        node: u32,
    },
    /// The same node id appears twice.
    DuplicateNode {
        /// The duplicated node id.
        node: u32,
    },
    /// An edge connects a node to itself.
    SelfLoop {
        /// The node with the self loop.
        node: u32,
    },
    /// The trace contains no nodes.
    Empty,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            TraceError::UnknownNode { node } => {
                write!(f, "edge references unknown node id {node}")
            }
            TraceError::DuplicateNode { node } => {
                write!(f, "duplicate node id {node} in trace")
            }
            TraceError::SelfLoop { node } => write!(f, "self loop on node {node}"),
            TraceError::Empty => write!(f, "trace contains no nodes"),
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TraceError::Parse {
            line: 3,
            message: "bad port".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("bad port"));
        assert!(TraceError::UnknownNode { node: 7 }
            .to_string()
            .contains('7'));
        assert!(TraceError::DuplicateNode { node: 9 }
            .to_string()
            .contains('9'));
        assert!(TraceError::SelfLoop { node: 2 }.to_string().contains('2'));
        assert!(TraceError::Empty.to_string().contains("no nodes"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(TraceError::Empty);
    }
}
