//! Gnutella-style overlay trace substrate.
//!
//! The ICPP 2008 paper evaluates on "30 real-trace P2P overlay topologies
//! whose data was collected from Dec. 2000 to Jun. 2001 on dss.clip2.com".
//! That crawl archive has been offline for two decades, so this crate provides
//! the closest synthetic equivalent:
//!
//! * [`TraceRecord`] — one crawled peer (ID, IP, host name, port, ping time,
//!   access speed), the exact fields the paper lists (it only *uses* ID, IP
//!   and ping time),
//! * [`Trace`] — a set of records plus the overlay edges observed between
//!   them,
//! * [`generator::TraceGenerator`] — a deterministic generator reproducing the
//!   statistical shape of the 2000/2001 Gnutella crawls (preferential-
//!   attachment power-law degree distribution, log-normal ping times,
//!   era-accurate access-speed mix),
//! * [`parser`] — a plain-text serialisation so traces can be stored,
//!   inspected and re-loaded like the original crawl files, and
//! * [`catalog::TraceCatalog`] — the 30 named topologies (100–10 000 nodes)
//!   the experiment harness sweeps over.
//!
//! What the experiments actually need from the trace is only the node count,
//! a sparse skewed base topology and per-node latency; the overlay builder in
//! `fss-overlay` then adds random edges until every node has at least `M`
//! neighbours, exactly as the paper does.

#![warn(missing_docs)]

pub mod catalog;
pub mod error;
pub mod generator;
pub mod parser;
pub mod record;
pub mod speed;

pub use catalog::{TraceCatalog, TraceSpec};
pub use error::TraceError;
pub use generator::{GeneratorConfig, TraceGenerator};
pub use record::{NodeId, Trace, TraceRecord};
pub use speed::AccessSpeed;
