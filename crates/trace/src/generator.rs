//! Synthetic Gnutella-2001-style trace generator.
//!
//! The generator reproduces the three properties of the clip2 crawls that the
//! paper's evaluation actually depends on:
//!
//! 1. **Scale** — any node count between a handful and tens of thousands.
//! 2. **A sparse, heavily skewed base topology** — Gnutella circa 2001 had a
//!    power-law degree distribution with a small average degree ("their
//!    average node degree is too small for media streaming", §5.1).  We use
//!    preferential attachment with `m` edges per arriving node, which yields
//!    a power-law tail and an average degree of roughly `2 m`.
//! 3. **Per-node latency** — ping times follow a log-normal distribution, the
//!    standard model of measured Internet RTTs.
//!
//! Everything is driven by an explicit seed so the 30-topology catalog is
//! fully reproducible.

use crate::record::{NodeId, Trace, TraceRecord};
use crate::speed::AccessSpeed;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Configuration for [`TraceGenerator`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of peers to generate.
    pub nodes: usize,
    /// Edges added per arriving node (preferential attachment parameter).
    /// The resulting average degree is ≈ `2 * edges_per_node`.
    pub edges_per_node: usize,
    /// Median ping time in milliseconds (log-normal location).
    pub ping_median_ms: f64,
    /// Log-normal shape parameter (sigma of ln(ping)).
    pub ping_sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            nodes: 1_000,
            // Gnutella crawls of the era showed an average degree well below
            // the M=5 the paper needs, hence the augmentation step; 1.7 keeps
            // the base graph sparse like the originals.
            edges_per_node: 2,
            ping_median_ms: 80.0,
            ping_sigma: 0.6,
            seed: 0xC11_222_001,
        }
    }
}

impl GeneratorConfig {
    /// Convenience constructor for a given size and seed with era defaults.
    pub fn sized(nodes: usize, seed: u64) -> Self {
        GeneratorConfig {
            nodes,
            seed,
            ..GeneratorConfig::default()
        }
    }
}

/// Deterministic synthetic trace generator.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: GeneratorConfig,
}

impl TraceGenerator {
    /// Creates a generator for the given configuration.
    ///
    /// # Panics
    /// Panics if `nodes == 0` or `edges_per_node == 0`; both would produce a
    /// degenerate trace that the rest of the pipeline rejects anyway.
    pub fn new(config: GeneratorConfig) -> Self {
        assert!(config.nodes > 0, "trace must contain at least one node");
        assert!(config.edges_per_node > 0, "edges_per_node must be positive");
        TraceGenerator { config }
    }

    /// The configuration this generator was built with.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates the trace.
    pub fn generate(&self, name: impl Into<String>) -> Trace {
        let cfg = &self.config;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        let nodes: Vec<TraceRecord> = (0..cfg.nodes as NodeId)
            .map(|id| self.generate_record(id, &mut rng))
            .collect();
        let edges = self.generate_edges(&mut rng);

        Trace::new(name, nodes, edges).expect("generator produces structurally valid traces")
    }

    fn generate_record(&self, id: NodeId, rng: &mut SmallRng) -> TraceRecord {
        let cfg = &self.config;
        // Log-normal ping time: exp(N(ln median, sigma)).
        let z = standard_normal(rng);
        let ping_ms = (cfg.ping_median_ms.ln() + cfg.ping_sigma * z).exp();
        let speed = sample_speed(rng);
        // Deterministic pseudo-IP derived from the id: 10.x.y.z private space.
        let ip = Ipv4Addr::new(
            10,
            ((id >> 16) & 0xff) as u8,
            ((id >> 8) & 0xff) as u8,
            (id & 0xff) as u8,
        );
        TraceRecord {
            id,
            ip,
            host: format!("node-{id}.gnutella.invalid"),
            port: 6346,
            ping_ms: ping_ms.clamp(1.0, 3_000.0),
            speed_kbps: speed.kbps(),
        }
    }

    /// Preferential-attachment edge construction (Barabási–Albert style).
    fn generate_edges(&self, rng: &mut SmallRng) -> Vec<(NodeId, NodeId)> {
        let n = self.config.nodes;
        let m = self.config.edges_per_node;
        if n == 1 {
            return Vec::new();
        }

        let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * m);
        // `targets` holds one entry per edge endpoint, so sampling uniformly
        // from it is sampling proportionally to degree.
        let mut endpoint_pool: Vec<NodeId> = Vec::with_capacity(2 * n * m);

        // Seed clique over the first min(m+1, n) nodes so early arrivals have
        // someone to attach to.
        let seed_size = (m + 1).min(n);
        for a in 0..seed_size {
            for b in (a + 1)..seed_size {
                edges.push((a as NodeId, b as NodeId));
                endpoint_pool.push(a as NodeId);
                endpoint_pool.push(b as NodeId);
            }
        }

        for new in seed_size..n {
            let new_id = new as NodeId;
            let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
            let mut attempts = 0;
            while chosen.len() < m.min(new) && attempts < 50 * m {
                attempts += 1;
                let target = if endpoint_pool.is_empty() {
                    rng.gen_range(0..new) as NodeId
                } else {
                    endpoint_pool[rng.gen_range(0..endpoint_pool.len())]
                };
                if target != new_id && !chosen.contains(&target) {
                    chosen.push(target);
                }
            }
            for target in chosen {
                edges.push((target.min(new_id), target.max(new_id)));
                endpoint_pool.push(target);
                endpoint_pool.push(new_id);
            }
        }
        edges
    }
}

/// Samples an access-speed class according to the era population shares.
fn sample_speed(rng: &mut SmallRng) -> AccessSpeed {
    let x: f64 = rng.gen();
    let mut acc = 0.0;
    for class in AccessSpeed::ALL {
        acc += class.population_share();
        if x < acc {
            return class;
        }
    }
    AccessSpeed::T3
}

/// Box–Muller standard normal sample.
fn standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(nodes: usize, seed: u64) -> Trace {
        TraceGenerator::new(GeneratorConfig::sized(nodes, seed)).generate("test")
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(gen(500, 7), gen(500, 7));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(gen(500, 7), gen(500, 8));
    }

    #[test]
    fn node_count_matches_config() {
        for n in [1, 2, 10, 257] {
            assert_eq!(gen(n, 1).node_count(), n);
        }
    }

    #[test]
    fn average_degree_is_sparse_but_positive() {
        let t = gen(2_000, 3);
        let avg = t.average_degree();
        assert!(avg > 1.0, "average degree {avg} too small");
        assert!(avg < 6.0, "average degree {avg} not sparse like the crawls");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let t = gen(3_000, 11);
        let mut deg = t.degrees();
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let max = deg[0];
        let median = deg[deg.len() / 2];
        // Power-law-ish: the hub degree dwarfs the median degree.
        assert!(
            max >= 8 * median.max(1),
            "max degree {max} vs median {median} not heavy-tailed"
        );
    }

    #[test]
    fn ping_times_are_positive_and_spread() {
        let t = gen(1_000, 5);
        let pings: Vec<f64> = t.nodes.iter().map(|n| n.ping_ms).collect();
        assert!(pings.iter().all(|&p| (1.0..=3_000.0).contains(&p)));
        let mean = pings.iter().sum::<f64>() / pings.len() as f64;
        assert!(
            mean > 40.0 && mean < 250.0,
            "mean ping {mean}ms implausible"
        );
    }

    #[test]
    fn speed_mix_matches_population_shares_roughly() {
        let t = gen(5_000, 9);
        let modems = t
            .nodes
            .iter()
            .filter(|n| n.speed_class() == AccessSpeed::Modem56k)
            .count() as f64
            / t.node_count() as f64;
        assert!(
            (modems - 0.35).abs() < 0.05,
            "modem share {modems} far from configured 0.35"
        );
    }

    #[test]
    fn single_node_trace_has_no_edges() {
        let t = gen(1, 1);
        assert_eq!(t.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = TraceGenerator::new(GeneratorConfig::sized(0, 1));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        /// Generated traces always validate and never contain self loops or
        /// duplicate edges, whatever the size/seed.
        #[test]
        fn prop_generated_traces_are_valid(n in 1usize..400, seed in 0u64..1_000) {
            let t = gen(n, seed);
            proptest::prop_assert_eq!(t.node_count(), n);
            let mut edges = t.edges.clone();
            edges.sort_unstable();
            edges.dedup();
            proptest::prop_assert_eq!(edges.len(), t.edge_count());
            proptest::prop_assert!(t.edges.iter().all(|(a, b)| a != b));
        }
    }
}
