//! Trace records and the in-memory trace representation.

use crate::error::TraceError;
use crate::speed::AccessSpeed;
use fss_sim::hasher::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Identifier of a node inside a trace (dense, 0-based).
pub type NodeId = u32;

/// One crawled peer, with the fields recorded by the clip2 crawls.
///
/// The paper lists "each node's ID, IP, host name, port, ping time, speed and
/// so on, but we just use the ID, IP and ping time information".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Dense node identifier.
    pub id: NodeId,
    /// IPv4 address of the peer.
    pub ip: Ipv4Addr,
    /// Reverse-DNS host name (possibly synthetic).
    pub host: String,
    /// Gnutella servent port (6346 was the default of the era).
    pub port: u16,
    /// Measured ping round-trip time in milliseconds.
    pub ping_ms: f64,
    /// Self-reported access link speed in kbit/s.
    pub speed_kbps: u32,
}

impl TraceRecord {
    /// The access-speed class closest to the advertised speed.
    pub fn speed_class(&self) -> AccessSpeed {
        AccessSpeed::from_kbps(self.speed_kbps)
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {:.1} {}",
            self.id, self.ip, self.host, self.port, self.ping_ms, self.speed_kbps
        )
    }
}

/// A complete overlay trace: peers plus the undirected overlay edges observed
/// between them.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Human readable name (e.g. `"clip2-synth-1000-a"`).
    pub name: String,
    /// The peers, indexed by their dense id.
    pub nodes: Vec<TraceRecord>,
    /// Undirected edges as `(smaller id, larger id)` pairs, deduplicated.
    pub edges: Vec<(NodeId, NodeId)>,
}

impl Trace {
    /// Creates a validated trace.
    ///
    /// Validation rules:
    /// * at least one node,
    /// * node ids are unique,
    /// * edges reference existing nodes and contain no self loops.
    ///
    /// Edges are normalised to `(min, max)` order and deduplicated.
    pub fn new(
        name: impl Into<String>,
        nodes: Vec<TraceRecord>,
        edges: Vec<(NodeId, NodeId)>,
    ) -> Result<Self, TraceError> {
        if nodes.is_empty() {
            return Err(TraceError::Empty);
        }
        let mut seen = FxHashSet::default();
        seen.reserve(nodes.len());
        for n in &nodes {
            if !seen.insert(n.id) {
                return Err(TraceError::DuplicateNode { node: n.id });
            }
        }
        let mut normalised: Vec<(NodeId, NodeId)> = Vec::with_capacity(edges.len());
        for (a, b) in edges {
            if a == b {
                return Err(TraceError::SelfLoop { node: a });
            }
            if !seen.contains(&a) {
                return Err(TraceError::UnknownNode { node: a });
            }
            if !seen.contains(&b) {
                return Err(TraceError::UnknownNode { node: b });
            }
            normalised.push((a.min(b), a.max(b)));
        }
        normalised.sort_unstable();
        normalised.dedup();
        Ok(Trace {
            name: name.into(),
            nodes,
            edges: normalised,
        })
    }

    /// Number of peers in the trace.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (deduplicated, undirected) edges in the trace.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Mean node degree of the base topology.
    pub fn average_degree(&self) -> f64 {
        if self.nodes.is_empty() {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.nodes.len() as f64
        }
    }

    /// Per-node degree histogram (index = node id position in `nodes`).
    pub fn degrees(&self) -> Vec<usize> {
        let index_of: FxHashMap<NodeId, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.id, i))
            .collect();
        let mut deg = vec![0usize; self.nodes.len()];
        for &(a, b) in &self.edges {
            deg[index_of[&a]] += 1;
            deg[index_of[&b]] += 1;
        }
        deg
    }

    /// Looks up a record by node id.
    pub fn record(&self, id: NodeId) -> Option<&TraceRecord> {
        self.nodes.iter().find(|n| n.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn record(id: NodeId) -> TraceRecord {
        TraceRecord {
            id,
            ip: Ipv4Addr::new(10, 0, (id >> 8) as u8, (id & 0xff) as u8),
            host: format!("peer{id}.example.net"),
            port: 6346,
            ping_ms: 80.0,
            speed_kbps: 768,
        }
    }

    #[test]
    fn valid_trace_normalises_edges() {
        let t = Trace::new(
            "t",
            vec![record(0), record(1), record(2)],
            vec![(1, 0), (2, 1), (0, 1)],
        )
        .unwrap();
        assert_eq!(t.edges, vec![(0, 1), (1, 2)]);
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.edge_count(), 2);
        assert!((t.average_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degrees_count_both_endpoints() {
        let t = Trace::new(
            "t",
            vec![record(0), record(1), record(2)],
            vec![(0, 1), (0, 2)],
        )
        .unwrap();
        assert_eq!(t.degrees(), vec![2, 1, 1]);
    }

    #[test]
    fn empty_trace_rejected() {
        assert_eq!(Trace::new("t", vec![], vec![]), Err(TraceError::Empty));
    }

    #[test]
    fn duplicate_node_rejected() {
        let err = Trace::new("t", vec![record(3), record(3)], vec![]).unwrap_err();
        assert_eq!(err, TraceError::DuplicateNode { node: 3 });
    }

    #[test]
    fn unknown_edge_endpoint_rejected() {
        let err = Trace::new("t", vec![record(0), record(1)], vec![(0, 9)]).unwrap_err();
        assert_eq!(err, TraceError::UnknownNode { node: 9 });
    }

    #[test]
    fn self_loop_rejected() {
        let err = Trace::new("t", vec![record(0)], vec![(0, 0)]).unwrap_err();
        assert_eq!(err, TraceError::SelfLoop { node: 0 });
    }

    #[test]
    fn record_lookup_and_speed_class() {
        let t = Trace::new("t", vec![record(0), record(5)], vec![]).unwrap();
        assert_eq!(t.record(5).unwrap().id, 5);
        assert!(t.record(6).is_none());
        assert_eq!(t.record(0).unwrap().speed_class(), AccessSpeed::Dsl);
    }

    #[test]
    fn display_round_trips_through_parser_format() {
        let r = record(12);
        let line = r.to_string();
        assert!(line.starts_with("12 10.0.0.12"));
        assert!(line.ends_with("768"));
    }
}
