//! The 30-topology catalog.
//!
//! The paper evaluates on 30 crawl snapshots scaling from 100 to 10 000
//! nodes.  This module fixes 30 named `(size, seed)` pairs so every
//! experiment in the harness draws from the same reproducible population.
//! The sizes cover the exact set used in the figures
//! (`{100, 500, 1000, 2000, 4000, 8000}`) plus intermediate and boundary
//! sizes up to 10 000.

use crate::generator::{GeneratorConfig, TraceGenerator};
use crate::record::Trace;
use serde::{Deserialize, Serialize};

/// A named entry of the catalog: enough information to regenerate one trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Catalog name, e.g. `"clip2-synth-1000-a"`.
    pub name: String,
    /// Number of peers.
    pub nodes: usize,
    /// Generator seed.
    pub seed: u64,
}

impl TraceSpec {
    /// Materialises the trace for this spec.
    pub fn generate(&self) -> Trace {
        TraceGenerator::new(GeneratorConfig::sized(self.nodes, self.seed)).generate(&self.name)
    }
}

/// The fixed catalog of 30 synthetic crawl snapshots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCatalog {
    specs: Vec<TraceSpec>,
}

impl TraceCatalog {
    /// The sizes swept by the paper's figures.
    pub const FIGURE_SIZES: [usize; 6] = [100, 500, 1_000, 2_000, 4_000, 8_000];

    /// Builds the standard 30-entry catalog (100–10 000 nodes).
    pub fn standard() -> Self {
        // Five replicas (a–e) of each figure size, plus 10 000-node entries,
        // gives 30 topologies spanning the paper's full range.
        let mut specs = Vec::with_capacity(30);
        let replicas = ["a", "b", "c", "d", "e"];
        let mut seed: u64 = 0x2001_0001;
        for &size in &[100usize, 500, 1_000, 2_000, 4_000, 8_000] {
            for (i, r) in replicas.iter().enumerate() {
                if specs.len() >= 28 {
                    break;
                }
                // Keep 2 slots for the 10 000-node snapshots.
                if i >= 5 {
                    break;
                }
                specs.push(TraceSpec {
                    name: format!("clip2-synth-{size}-{r}"),
                    nodes: size,
                    seed,
                });
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(size as u64);
            }
        }
        for r in ["a", "b"] {
            specs.push(TraceSpec {
                name: format!("clip2-synth-10000-{r}"),
                nodes: 10_000,
                seed,
            });
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(10_000);
        }
        debug_assert_eq!(specs.len(), 30);
        TraceCatalog { specs }
    }

    /// All specs, ordered by size then replica.
    pub fn specs(&self) -> &[TraceSpec] {
        &self.specs
    }

    /// Number of catalog entries.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the catalog has no entries (never for [`standard`](Self::standard)).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Looks an entry up by name.
    pub fn by_name(&self, name: &str) -> Option<&TraceSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// All entries with exactly `nodes` peers.
    pub fn by_size(&self, nodes: usize) -> Vec<&TraceSpec> {
        self.specs.iter().filter(|s| s.nodes == nodes).collect()
    }

    /// The first (replica "a") entry of the given size, used as the default
    /// topology for that scale in the figure harness.
    pub fn primary_for_size(&self, nodes: usize) -> Option<&TraceSpec> {
        self.by_size(nodes).into_iter().next()
    }
}

impl Default for TraceCatalog {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn has_exactly_thirty_entries() {
        assert_eq!(TraceCatalog::standard().len(), 30);
        assert!(!TraceCatalog::standard().is_empty());
    }

    #[test]
    fn covers_the_paper_size_range() {
        let cat = TraceCatalog::standard();
        let sizes: HashSet<usize> = cat.specs().iter().map(|s| s.nodes).collect();
        assert!(sizes.contains(&100));
        assert!(sizes.contains(&10_000));
        for s in TraceCatalog::FIGURE_SIZES {
            assert!(sizes.contains(&s), "figure size {s} missing from catalog");
        }
    }

    #[test]
    fn names_and_seeds_are_unique() {
        let cat = TraceCatalog::standard();
        let names: HashSet<&str> = cat.specs().iter().map(|s| s.name.as_str()).collect();
        let seeds: HashSet<u64> = cat.specs().iter().map(|s| s.seed).collect();
        assert_eq!(names.len(), 30);
        assert_eq!(seeds.len(), 30);
    }

    #[test]
    fn lookup_by_name_and_size() {
        let cat = TraceCatalog::standard();
        let spec = cat.by_name("clip2-synth-1000-a").expect("catalog entry");
        assert_eq!(spec.nodes, 1_000);
        assert_eq!(cat.by_size(1_000).len(), 5);
        assert_eq!(cat.by_size(7_777).len(), 0);
        assert_eq!(
            cat.primary_for_size(4_000).unwrap().name,
            "clip2-synth-4000-a"
        );
        assert!(cat.primary_for_size(1).is_none());
    }

    #[test]
    fn specs_generate_correctly_sized_traces() {
        let cat = TraceCatalog::standard();
        let spec = cat.by_name("clip2-synth-100-b").unwrap();
        let trace = spec.generate();
        assert_eq!(trace.node_count(), 100);
        assert_eq!(trace.name, "clip2-synth-100-b");
        // Deterministic: regenerating gives the identical trace.
        assert_eq!(trace, spec.generate());
    }

    #[test]
    fn catalog_is_deterministic() {
        assert_eq!(TraceCatalog::standard(), TraceCatalog::standard());
        assert_eq!(TraceCatalog::default(), TraceCatalog::standard());
    }
}
