//! Plain-text trace serialisation.
//!
//! The format mirrors the spirit of the clip2 crawl dumps: one record per
//! line, plus an explicit edge section so the observed overlay topology can be
//! reconstructed.  The format is line oriented and human inspectable:
//!
//! ```text
//! # trace <name>
//! node <id> <ip> <host> <port> <ping_ms> <speed_kbps>
//! ...
//! edge <id_a> <id_b>
//! ...
//! ```
//!
//! Blank lines and lines starting with `#` (other than the header) are
//! ignored.

use crate::error::TraceError;
use crate::record::{NodeId, Trace, TraceRecord};
use std::net::Ipv4Addr;

/// Serialises a trace into the plain-text format.
pub fn to_text(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.nodes.len() * 48 + trace.edges.len() * 12);
    out.push_str(&format!("# trace {}\n", trace.name));
    for n in &trace.nodes {
        out.push_str(&format!(
            "node {} {} {} {} {:.3} {}\n",
            n.id, n.ip, n.host, n.port, n.ping_ms, n.speed_kbps
        ));
    }
    for (a, b) in &trace.edges {
        out.push_str(&format!("edge {a} {b}\n"));
    }
    out
}

/// Parses a trace from the plain-text format.
pub fn from_text(text: &str) -> Result<Trace, TraceError> {
    let mut name = String::from("unnamed");
    let mut nodes: Vec<TraceRecord> = Vec::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# trace ") {
            name = rest.trim().to_string();
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("node") => {
                let record = parse_node(line_no, &mut parts)?;
                nodes.push(record);
            }
            Some("edge") => {
                let a = parse_field::<NodeId>(line_no, parts.next(), "edge endpoint a")?;
                let b = parse_field::<NodeId>(line_no, parts.next(), "edge endpoint b")?;
                edges.push((a, b));
            }
            Some(other) => {
                return Err(TraceError::Parse {
                    line: line_no,
                    message: format!("unknown record type '{other}'"),
                })
            }
            None => unreachable!("non-empty line has at least one token"),
        }
    }

    Trace::new(name, nodes, edges)
}

fn parse_node<'a>(
    line: usize,
    parts: &mut impl Iterator<Item = &'a str>,
) -> Result<TraceRecord, TraceError> {
    let id = parse_field::<NodeId>(line, parts.next(), "node id")?;
    let ip = parse_field::<Ipv4Addr>(line, parts.next(), "ip address")?;
    let host = parts
        .next()
        .ok_or_else(|| missing(line, "host name"))?
        .to_string();
    let port = parse_field::<u16>(line, parts.next(), "port")?;
    let ping_ms = parse_field::<f64>(line, parts.next(), "ping time")?;
    let speed_kbps = parse_field::<u32>(line, parts.next(), "speed")?;
    if ping_ms < 0.0 || !ping_ms.is_finite() {
        return Err(TraceError::Parse {
            line,
            message: format!("ping time {ping_ms} must be finite and non-negative"),
        });
    }
    Ok(TraceRecord {
        id,
        ip,
        host,
        port,
        ping_ms,
        speed_kbps,
    })
}

fn parse_field<T: std::str::FromStr>(
    line: usize,
    token: Option<&str>,
    what: &str,
) -> Result<T, TraceError> {
    let token = token.ok_or_else(|| missing(line, what))?;
    token.parse::<T>().map_err(|_| TraceError::Parse {
        line,
        message: format!("invalid {what}: '{token}'"),
    })
}

fn missing(line: usize, what: &str) -> TraceError {
    TraceError::Parse {
        line,
        message: format!("missing {what}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, TraceGenerator};

    #[test]
    fn round_trip_preserves_structure() {
        let trace = TraceGenerator::new(GeneratorConfig::sized(120, 42)).generate("round-trip");
        let text = to_text(&trace);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed.name, "round-trip");
        assert_eq!(parsed.node_count(), trace.node_count());
        assert_eq!(parsed.edges, trace.edges);
        for (a, b) in parsed.nodes.iter().zip(trace.nodes.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.ip, b.ip);
            assert_eq!(a.port, b.port);
            assert_eq!(a.speed_kbps, b.speed_kbps);
            assert!((a.ping_ms - b.ping_ms).abs() < 1e-3);
        }
    }

    #[test]
    fn parses_minimal_hand_written_trace() {
        let text = "\
# trace mini
# a comment
node 0 10.0.0.1 alpha.example 6346 12.5 768

node 1 10.0.0.2 beta.example 6347 99 56
edge 0 1
";
        let t = from_text(text).unwrap();
        assert_eq!(t.name, "mini");
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.edges, vec![(0, 1)]);
        assert_eq!(t.nodes[1].port, 6347);
    }

    #[test]
    fn rejects_unknown_record_type() {
        let err = from_text("peer 0 x").unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_bad_ip() {
        let err = from_text("node 0 300.1.1.1 h 6346 10 56").unwrap_err();
        assert!(err.to_string().contains("ip address"));
    }

    #[test]
    fn rejects_missing_fields() {
        let err = from_text("node 0 10.0.0.1 host 6346").unwrap_err();
        assert!(err.to_string().contains("missing ping time"));
    }

    #[test]
    fn rejects_negative_ping() {
        let err = from_text("node 0 10.0.0.1 host 6346 -3.0 56").unwrap_err();
        assert!(err.to_string().contains("non-negative"));
    }

    #[test]
    fn rejects_edge_to_unknown_node() {
        let text = "node 0 10.0.0.1 h 6346 10 56\nedge 0 4\n";
        assert_eq!(
            from_text(text).unwrap_err(),
            TraceError::UnknownNode { node: 4 }
        );
    }

    #[test]
    fn empty_input_is_an_empty_trace_error() {
        assert_eq!(from_text(""), Err(TraceError::Empty));
    }
}
