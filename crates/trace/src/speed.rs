//! Access-link speed classes of the 2000/2001 Gnutella population.
//!
//! The clip2 crawls recorded a self-reported "speed" field per peer.  The
//! generator reproduces the era-typical mix of dial-up, ISDN, DSL/cable and
//! institutional links.  The speed field is carried through the trace format
//! for fidelity but — like the paper — the simulator assigns its own inbound
//! and outbound segment rates (see `fss-overlay::bandwidth`), so this class
//! only influences generated metadata, not simulation results.

use serde::{Deserialize, Serialize};

/// Access-link class of a crawled peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessSpeed {
    /// 56 kbit/s dial-up modem.
    Modem56k,
    /// 128 kbit/s ISDN.
    Isdn,
    /// 768 kbit/s ADSL.
    Dsl,
    /// 1.5 Mbit/s cable.
    Cable,
    /// 1.5 Mbit/s T1 (institutional).
    T1,
    /// 45 Mbit/s T3 (institutional backbone).
    T3,
}

impl AccessSpeed {
    /// All classes, in increasing nominal speed order.
    pub const ALL: [AccessSpeed; 6] = [
        AccessSpeed::Modem56k,
        AccessSpeed::Isdn,
        AccessSpeed::Dsl,
        AccessSpeed::Cable,
        AccessSpeed::T1,
        AccessSpeed::T3,
    ];

    /// Nominal link speed in kbit/s, as a peer of the era would have
    /// advertised it.
    pub fn kbps(self) -> u32 {
        match self {
            AccessSpeed::Modem56k => 56,
            AccessSpeed::Isdn => 128,
            AccessSpeed::Dsl => 768,
            AccessSpeed::Cable => 1_500,
            AccessSpeed::T1 => 1_544,
            AccessSpeed::T3 => 45_000,
        }
    }

    /// Era-typical population share of each class (sums to 1.0).
    ///
    /// Approximates the measured composition of the Gnutella network around
    /// 2001: predominantly dial-up and early broadband with a small
    /// institutional tail.
    pub fn population_share(self) -> f64 {
        match self {
            AccessSpeed::Modem56k => 0.35,
            AccessSpeed::Isdn => 0.10,
            AccessSpeed::Dsl => 0.25,
            AccessSpeed::Cable => 0.20,
            AccessSpeed::T1 => 0.08,
            AccessSpeed::T3 => 0.02,
        }
    }

    /// Maps an advertised kbit/s value back to the closest class.
    pub fn from_kbps(kbps: u32) -> AccessSpeed {
        let mut best = AccessSpeed::Modem56k;
        let mut best_diff = u32::MAX;
        for class in AccessSpeed::ALL {
            let diff = class.kbps().abs_diff(kbps);
            if diff < best_diff {
                best = class;
                best_diff = diff;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = AccessSpeed::ALL.iter().map(|c| c.population_share()).sum();
        assert!((total - 1.0).abs() < 1e-12, "shares sum to {total}");
    }

    #[test]
    fn speeds_are_increasing() {
        let speeds: Vec<u32> = AccessSpeed::ALL.iter().map(|c| c.kbps()).collect();
        let mut sorted = speeds.clone();
        sorted.sort_unstable();
        assert_eq!(speeds, sorted);
    }

    #[test]
    fn from_kbps_round_trips_each_class() {
        for class in AccessSpeed::ALL {
            assert_eq!(AccessSpeed::from_kbps(class.kbps()), class);
        }
    }

    #[test]
    fn from_kbps_picks_nearest() {
        assert_eq!(AccessSpeed::from_kbps(60), AccessSpeed::Modem56k);
        assert_eq!(AccessSpeed::from_kbps(700), AccessSpeed::Dsl);
        assert_eq!(AccessSpeed::from_kbps(100_000), AccessSpeed::T3);
        assert_eq!(AccessSpeed::from_kbps(0), AccessSpeed::Modem56k);
    }
}
