//! Generic discrete-event engine.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Handle given to an [`EventHandler`] for scheduling follow-up events.
#[derive(Debug)]
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Scheduler<'a, E> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) {
        self.queue.push(self.now + delay, payload);
    }

    /// Schedules `payload` at an absolute time.  Times in the past are clamped
    /// to "now" so causality is never violated.
    pub fn schedule_at(&mut self, time: SimTime, payload: E) {
        self.queue.push(time.max(self.now), payload);
    }
}

/// User logic invoked for every dispatched event.
pub trait EventHandler<E> {
    /// Handles a single event.  New events may be scheduled via `scheduler`.
    fn handle(&mut self, event: E, scheduler: &mut Scheduler<'_, E>);
}

impl<E, F> EventHandler<E> for F
where
    F: FnMut(E, &mut Scheduler<'_, E>),
{
    fn handle(&mut self, event: E, scheduler: &mut Scheduler<'_, E>) {
        self(event, scheduler)
    }
}

/// The discrete-event simulation loop.
///
/// The engine owns the virtual clock and the event queue; the caller owns the
/// model state (inside its [`EventHandler`]).
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    dispatched: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at `t = 0` with an empty queue.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            dispatched: 0,
        }
    }

    /// The current virtual time (time of the most recently dispatched event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an event at an absolute time (clamped to the current time).
    pub fn schedule_at(&mut self, time: SimTime, payload: E) {
        self.queue.push(time.max(self.now), payload);
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) {
        self.queue.push(self.now + delay, payload);
    }

    /// Dispatches the next pending event, if any.  Returns `true` when an
    /// event was dispatched.
    pub fn step<H: EventHandler<E>>(&mut self, handler: &mut H) -> bool {
        match self.queue.pop() {
            Some(ev) => {
                self.now = ev.time;
                self.dispatched += 1;
                let mut scheduler = Scheduler {
                    now: self.now,
                    queue: &mut self.queue,
                };
                handler.handle(ev.payload, &mut scheduler);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue is empty or the next event would fire after
    /// `deadline`.  Returns the number of events dispatched.
    pub fn run_until<H: EventHandler<E>>(&mut self, deadline: SimTime, handler: &mut H) -> u64 {
        let mut count = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step(handler);
            count += 1;
        }
        // Even if nothing fired exactly at the deadline the clock observably
        // reaches it, so subsequent scheduling is relative to the deadline.
        if self.now < deadline {
            self.now = deadline;
        }
        count
    }

    /// Runs until the event queue drains completely.
    pub fn run_to_completion<H: EventHandler<E>>(&mut self, handler: &mut H) -> u64 {
        let mut count = 0;
        while self.step(handler) {
            count += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
        Done,
    }

    #[test]
    fn events_dispatch_in_order_and_can_chain() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(1), Ev::Tick(0));

        let mut seen = Vec::new();
        let mut handler = |ev: Ev, s: &mut Scheduler<'_, Ev>| match ev {
            Ev::Tick(n) => {
                seen.push((s.now().as_millis(), n));
                if n < 3 {
                    s.schedule_in(SimDuration::from_secs(1), Ev::Tick(n + 1));
                } else {
                    s.schedule_in(SimDuration::from_millis(500), Ev::Done);
                }
            }
            Ev::Done => seen.push((s.now().as_millis(), 99)),
        };

        let dispatched = engine.run_to_completion(&mut handler);
        assert_eq!(dispatched, 5);
        assert_eq!(
            seen,
            vec![(1000, 0), (2000, 1), (3000, 2), (4000, 3), (4500, 99)]
        );
        assert_eq!(engine.now(), SimTime::from_millis(4500));
        assert_eq!(engine.dispatched(), 5);
    }

    #[test]
    fn run_until_respects_deadline_and_advances_clock() {
        let mut engine = Engine::new();
        for s in 1..=10 {
            engine.schedule_at(SimTime::from_secs(s), Ev::Tick(s as u32));
        }
        let mut count = 0;
        let fired = engine.run_until(
            SimTime::from_secs(4),
            &mut |_ev, _s: &mut Scheduler<'_, Ev>| {
                count += 1;
            },
        );
        assert_eq!(fired, 4);
        assert_eq!(count, 4);
        assert_eq!(engine.pending(), 6);
        assert_eq!(engine.now(), SimTime::from_secs(4));

        // A deadline with no events still advances the observable clock.
        let fired = engine.run_until(SimTime::from_millis(4_500), &mut |_ev,
                                                                        _s: &mut Scheduler<
            '_,
            Ev,
        >| {});
        assert_eq!(fired, 0);
        assert_eq!(engine.now(), SimTime::from_millis(4_500));
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(5), Ev::Tick(1));
        engine.run_to_completion(&mut |ev: Ev, s: &mut Scheduler<'_, Ev>| {
            if let Ev::Tick(1) = ev {
                // Attempt to schedule in the past.
                s.schedule_at(SimTime::from_secs(1), Ev::Done);
            }
        });
        assert_eq!(engine.now(), SimTime::from_secs(5));
    }

    #[test]
    fn step_on_empty_queue_returns_false() {
        let mut engine: Engine<Ev> = Engine::new();
        assert!(!engine.step(&mut |_ev: Ev, _s: &mut Scheduler<'_, Ev>| {}));
        assert_eq!(engine.dispatched(), 0);
    }
}
