//! Reproducible random number streams.
//!
//! Every stochastic component of the simulator (topology generation, bandwidth
//! assignment, churn, neighbour selection, …) draws from its own named stream
//! derived from a single master seed.  Two runs configured with the same
//! master seed therefore produce identical results, while independent
//! components never perturb each other's randomness — a property the
//! experiment harness relies on when it compares the fast and normal switch
//! algorithms on the *same* workload.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A deterministic random number generator for one named stream.
pub type StreamRng = SmallRng;

/// Derives independent, reproducible RNG streams from a master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    master_seed: u64,
}

impl RngFactory {
    /// Creates a factory from a master seed.
    pub fn new(master_seed: u64) -> Self {
        RngFactory { master_seed }
    }

    /// The master seed this factory was created from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Returns the RNG for the stream identified by `label` and `index`.
    ///
    /// The same `(seed, label, index)` triple always yields the same stream.
    pub fn stream(&self, label: &str, index: u64) -> StreamRng {
        let mut h = self.master_seed ^ 0x9e37_79b9_7f4a_7c15;
        for &b in label.as_bytes() {
            h = splitmix64(h ^ b as u64);
        }
        h = splitmix64(h ^ index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        SmallRng::seed_from_u64(h)
    }

    /// Convenience for streams without a per-entity index.
    pub fn named(&self, label: &str) -> StreamRng {
        self.stream(label, 0)
    }

    /// Derives a child factory, e.g. one per simulation run in a sweep.
    pub fn child(&self, index: u64) -> RngFactory {
        RngFactory {
            master_seed: splitmix64(self.master_seed ^ index.wrapping_mul(0x94d0_49bb_1331_11eb)),
        }
    }
}

/// The splitmix64 finalizer: a cheap, well mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn draw(mut rng: StreamRng, n: usize) -> Vec<u64> {
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn same_inputs_same_stream() {
        let f = RngFactory::new(42);
        assert_eq!(
            draw(f.stream("bandwidth", 3), 16),
            draw(f.stream("bandwidth", 3), 16)
        );
    }

    #[test]
    fn different_labels_differ() {
        let f = RngFactory::new(42);
        assert_ne!(draw(f.named("churn"), 16), draw(f.named("topology"), 16));
    }

    #[test]
    fn different_indices_differ() {
        let f = RngFactory::new(42);
        assert_ne!(draw(f.stream("node", 1), 16), draw(f.stream("node", 2), 16));
    }

    #[test]
    fn different_master_seeds_differ() {
        let a = RngFactory::new(1);
        let b = RngFactory::new(2);
        assert_ne!(draw(a.named("x"), 16), draw(b.named("x"), 16));
    }

    #[test]
    fn child_factories_are_deterministic_and_distinct() {
        let f = RngFactory::new(7);
        assert_eq!(f.child(5).master_seed(), f.child(5).master_seed());
        assert_ne!(f.child(5).master_seed(), f.child(6).master_seed());
        assert_ne!(f.child(5).master_seed(), f.master_seed());
    }

    #[test]
    fn splitmix_is_a_permutation_sample() {
        // Not a full bijectivity proof, just a collision sanity check over a
        // small consecutive range.
        let mut outs: Vec<u64> = (0..10_000).map(splitmix64).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 10_000);
    }
}
