//! Scheduled event wrapper used by the [`EventQueue`](crate::EventQueue).

use crate::time::SimTime;
use std::cmp::Ordering;

/// An event together with its firing time and a monotonically increasing
/// sequence number.
///
/// The sequence number gives events scheduled for the same instant a strict
/// FIFO order, which keeps simulations fully deterministic regardless of the
/// underlying heap implementation details.
#[derive(Clone, Debug)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion order, unique per queue.
    pub seq: u64,
    /// The payload delivered to the handler.
    pub payload: E,
}

impl<E> ScheduledEvent<E> {
    /// Creates a new scheduled event.
    pub fn new(time: SimTime, seq: u64, payload: E) -> Self {
        ScheduledEvent { time, seq, payload }
    }

    /// The (time, seq) key that orders this event.
    pub fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_by_time_then_sequence() {
        let early = ScheduledEvent::new(SimTime::from_millis(5), 7, "early");
        let late = ScheduledEvent::new(SimTime::from_millis(9), 0, "late");
        let tie_a = ScheduledEvent::new(SimTime::from_millis(9), 1, "tie-a");
        let tie_b = ScheduledEvent::new(SimTime::from_millis(9), 2, "tie-b");

        assert!(early < late);
        assert!(late < tie_a);
        assert!(tie_a < tie_b);
    }

    #[test]
    fn equality_ignores_payload() {
        let a = ScheduledEvent::new(SimTime::from_millis(1), 0, 10_u32);
        let b = ScheduledEvent::new(SimTime::from_millis(1), 0, 99_u32);
        assert_eq!(a, b);
    }
}
