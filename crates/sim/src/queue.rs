//! Deterministic event priority queue.

use crate::event::ScheduledEvent;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-priority queue of events ordered by `(time, insertion order)`.
///
/// Two events scheduled for the same instant pop in the order they were
/// pushed, making runs bit-for-bit reproducible.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<ScheduledEvent<E>>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap
            .push(Reverse(ScheduledEvent::new(time, seq, payload)));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(|Reverse(ev)| ev)
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(ev)| ev.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");

        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        let expected: Vec<_> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn peek_len_and_clear() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);

        q.push(SimTime::from_secs(9), ());
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));

        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop().map(|e| e.time), None);
    }

    proptest::proptest! {
        /// Whatever the insertion order, events always pop sorted by
        /// (time, insertion-sequence).
        #[test]
        fn prop_pops_sorted(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_millis(*t), i);
            }
            let mut popped = Vec::new();
            while let Some(ev) = q.pop() {
                popped.push((ev.time, ev.seq));
            }
            let mut sorted = popped.clone();
            sorted.sort();
            proptest::prop_assert_eq!(popped, sorted);
        }
    }
}
