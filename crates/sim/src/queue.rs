//! Deterministic event priority queue.

use crate::event::ScheduledEvent;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-priority queue of events ordered by `(time, insertion order)`.
///
/// Two events scheduled for the same instant pop in the order they were
/// pushed, making runs bit-for-bit reproducible.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<ScheduledEvent<E>>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap
            .push(Reverse(ScheduledEvent::new(time, seq, payload)));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(|Reverse(ev)| ev)
    }

    /// Removes and returns the earliest event if it fires at or before
    /// `bound` (the inclusive drain the event-driven period loop uses at a
    /// boundary: messages due exactly at the boundary are visible to that
    /// period's scheduling).
    pub fn pop_at_or_before(&mut self, bound: SimTime) -> Option<ScheduledEvent<E>> {
        match self.peek_time() {
            Some(t) if t <= bound => self.pop(),
            _ => None,
        }
    }

    /// Removes and returns the earliest event if it fires strictly before
    /// `bound` (the exclusive drain used at the *next* boundary: messages
    /// landing inside the current period are applied before playback).
    pub fn pop_before(&mut self, bound: SimTime) -> Option<ScheduledEvent<E>> {
        match self.peek_time() {
            Some(t) if t < bound => self.pop(),
            _ => None,
        }
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(ev)| ev.time)
    }

    /// Reserves room for at least `additional` more events without
    /// reallocating (steady-state event stepping pre-sizes the queue so the
    /// hot path never touches the allocator).
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");

        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        let expected: Vec<_> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn peek_len_and_clear() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);

        q.push(SimTime::from_secs(9), ());
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));

        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop().map(|e| e.time), None);
    }

    #[test]
    fn bounded_pops_respect_their_bounds() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "early");
        q.push(SimTime::from_millis(20), "boundary");
        q.push(SimTime::from_millis(30), "late");

        let bound = SimTime::from_millis(20);
        assert_eq!(q.pop_before(bound).map(|e| e.payload), Some("early"));
        // "boundary" fires exactly at the bound: exclusive pop refuses it,
        // inclusive pop takes it.
        assert_eq!(q.pop_before(bound), None);
        assert_eq!(
            q.pop_at_or_before(bound).map(|e| e.payload),
            Some("boundary")
        );
        assert_eq!(q.pop_at_or_before(bound), None);
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pop_at_or_before(SimTime::from_millis(30))
                .map(|e| e.payload),
            Some("late")
        );
        assert_eq!(q.pop_before(SimTime::from_millis(u64::MAX)), None);
    }

    #[test]
    fn reserve_and_capacity_presize_the_heap() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.reserve(128);
        let cap = q.capacity();
        assert!(cap >= 128);
        for i in 0..128 {
            q.push(SimTime::from_millis(i as u64 % 7), i);
        }
        assert_eq!(q.capacity(), cap, "pushes within capacity must not grow");
    }

    /// The naive reference model: a Vec kept stably sorted by time, so
    /// same-instant entries keep insertion order — the semantics
    /// `EventQueue` promises via its `(time, seq)` ordering.
    struct ModelQueue {
        entries: Vec<(SimTime, u32)>,
    }

    impl ModelQueue {
        fn new() -> Self {
            ModelQueue {
                entries: Vec::new(),
            }
        }
        fn push(&mut self, time: SimTime, payload: u32) {
            self.entries.push((time, payload));
            // Stable sort: ties stay in insertion order.
            self.entries.sort_by_key(|&(t, _)| t);
        }
        fn pop(&mut self) -> Option<(SimTime, u32)> {
            if self.entries.is_empty() {
                None
            } else {
                Some(self.entries.remove(0))
            }
        }
        fn peek_time(&self) -> Option<SimTime> {
            self.entries.first().map(|&(t, _)| t)
        }
    }

    proptest::proptest! {
        /// Whatever the insertion order, events always pop sorted by
        /// (time, insertion-sequence).
        #[test]
        fn prop_pops_sorted(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_millis(*t), i);
            }
            let mut popped = Vec::new();
            while let Some(ev) = q.pop() {
                popped.push((ev.time, ev.seq));
            }
            let mut sorted = popped.clone();
            sorted.sort();
            proptest::prop_assert_eq!(popped, sorted);
        }

        /// Model equivalence against the naive sorted-Vec reference under
        /// arbitrary push/pop/peek interleavings: every pop returns the same
        /// (time, payload) pair, every peek the same time, and same-instant
        /// events preserve FIFO order (payloads are issued in push order, so
        /// any FIFO violation shows up as a payload mismatch).
        #[test]
        fn prop_matches_sorted_vec_model(
            ops in proptest::collection::vec((0u8..3, 0u64..50), 1..300)
        ) {
            let mut q = EventQueue::new();
            let mut model = ModelQueue::new();
            let mut next_payload = 0u32;
            for (op, time) in ops {
                match op % 3 {
                    0 => {
                        let t = SimTime::from_millis(time);
                        q.push(t, next_payload);
                        model.push(t, next_payload);
                        next_payload += 1;
                    }
                    1 => {
                        let got = q.pop().map(|e| (e.time, e.payload));
                        proptest::prop_assert_eq!(got, model.pop());
                    }
                    _ => {
                        proptest::prop_assert_eq!(q.peek_time(), model.peek_time());
                    }
                }
                proptest::prop_assert_eq!(q.len(), model.entries.len());
                proptest::prop_assert_eq!(q.is_empty(), model.entries.is_empty());
            }
            // Drain whatever is left: full agreement to the end.
            loop {
                let got = q.pop().map(|e| (e.time, e.payload));
                let want = model.pop();
                proptest::prop_assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
