//! Period-synchronous driver.
//!
//! The gossip protocol of the paper operates in fixed scheduling periods
//! (`τ = 1 s`): once per period every node exchanges buffer maps, runs its
//! scheduler and issues requests.  [`PeriodDriver`] iterates those rounds on
//! top of the virtual clock and stops either at a configured horizon or when
//! the caller signals completion.

use crate::time::{SimDuration, SimTime};

/// Outcome of a single period callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeriodControl {
    /// Keep running subsequent periods.
    Continue,
    /// Stop the driver after this period.
    Stop,
}

/// Iterates fixed-length scheduling periods.
#[derive(Debug, Clone)]
pub struct PeriodDriver {
    period: SimDuration,
    now: SimTime,
    round: u64,
}

impl PeriodDriver {
    /// Creates a driver starting at `start`, advancing by `period` each round.
    ///
    /// # Panics
    /// Panics if `period` is zero — a zero-length scheduling period would
    /// never advance the clock.
    pub fn new(start: SimTime, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "scheduling period must be non-zero");
        PeriodDriver {
            period,
            now: start,
            round: 0,
        }
    }

    /// The scheduling period length.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The time of the period that will run next.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of periods completed so far.
    pub fn rounds_completed(&self) -> u64 {
        self.round
    }

    /// Runs `f` once for the next period and advances the clock.
    ///
    /// `f` receives the period index (0-based) and the period start time.
    pub fn step<F>(&mut self, mut f: F) -> PeriodControl
    where
        F: FnMut(u64, SimTime) -> PeriodControl,
    {
        let control = f(self.round, self.now);
        self.round += 1;
        self.now += self.period;
        control
    }

    /// Runs periods until `f` returns [`PeriodControl::Stop`] or `max_rounds`
    /// periods have executed.  Returns the number of periods executed.
    pub fn run<F>(&mut self, max_rounds: u64, mut f: F) -> u64
    where
        F: FnMut(u64, SimTime) -> PeriodControl,
    {
        let mut executed = 0;
        while executed < max_rounds {
            let control = self.step(&mut f);
            executed += 1;
            if control == PeriodControl::Stop {
                break;
            }
        }
        executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_clock_by_period() {
        let mut d = PeriodDriver::new(SimTime::ZERO, SimDuration::from_secs(1));
        let mut times = Vec::new();
        d.run(3, |round, t| {
            times.push((round, t.as_millis()));
            PeriodControl::Continue
        });
        assert_eq!(times, vec![(0, 0), (1, 1000), (2, 2000)]);
        assert_eq!(d.now(), SimTime::from_secs(3));
        assert_eq!(d.rounds_completed(), 3);
    }

    #[test]
    fn stops_when_callback_requests() {
        let mut d = PeriodDriver::new(SimTime::from_secs(10), SimDuration::from_secs(2));
        let executed = d.run(100, |round, _| {
            if round == 4 {
                PeriodControl::Stop
            } else {
                PeriodControl::Continue
            }
        });
        assert_eq!(executed, 5);
        assert_eq!(d.now(), SimTime::from_secs(20));
    }

    #[test]
    fn respects_max_rounds() {
        let mut d = PeriodDriver::new(SimTime::ZERO, SimDuration::from_millis(500));
        let executed = d.run(7, |_, _| PeriodControl::Continue);
        assert_eq!(executed, 7);
        assert_eq!(d.now(), SimTime::from_millis(3_500));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_panics() {
        let _ = PeriodDriver::new(SimTime::ZERO, SimDuration::ZERO);
    }
}
