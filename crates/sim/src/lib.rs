//! Deterministic discrete-event simulation engine.
//!
//! `fss-sim` is the lowest-level substrate of the fast-source-switching
//! reproduction.  It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — a fixed-point virtual clock (millisecond
//!   resolution) so that event ordering is exact and platform independent,
//! * [`EventQueue`] — a priority queue with deterministic FIFO tie-breaking
//!   for events scheduled at the same instant,
//! * [`Engine`] — a generic event loop driving a user supplied
//!   [`EventHandler`],
//! * [`RngFactory`] — reproducible per-stream random number generators derived
//!   from a single master seed,
//! * [`hasher`] — the deterministic `FxHashMap`/`FxHashSet` aliases every
//!   workspace crate uses instead of default-`RandomState` collections
//!   (statically enforced by `fss-lint` rule FSS001), and
//! * [`PeriodDriver`] — a convenience driver for period-synchronous protocols
//!   (the gossip scheduling period `τ` of the paper), and
//! * [`JobExecutor`] / [`ScopedJob`] — the scoped fan-out contract shared by
//!   the gossip scheduling sweep, the `fss-runtime` worker pool and the
//!   experiment sweeps (per-chunk slots make results executor-independent).
//!
//! The engine is intentionally free of any networking or streaming concepts;
//! those live in `fss-gossip`.

#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod exec;
pub mod hasher;
pub mod period;
pub mod queue;
pub mod rng;
pub mod time;

pub use engine::{Engine, EventHandler, Scheduler};
pub use event::ScheduledEvent;
pub use exec::{DisjointRanges, DisjointSlots, JobExecutor, ScopedJob, SerialExecutor};
pub use period::{PeriodControl, PeriodDriver};
pub use queue::EventQueue;
pub use rng::{RngFactory, StreamRng};
pub use time::{SimDuration, SimTime};
