//! Fixed-point virtual time.
//!
//! The simulator measures time in integer **milliseconds** so that event
//! ordering is exact (no floating point tie ambiguity) while still being fine
//! enough to express sub-period transfer completion times.  The paper's
//! scheduling period is `τ = 1 s = 1000 ms`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of millisecond ticks per simulated second.
pub const TICKS_PER_SECOND: u64 = 1_000;

/// An absolute instant on the virtual clock (milliseconds since simulation
/// start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A non-negative span of virtual time (milliseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation origin (`t = 0`).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw millisecond ticks.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant from whole simulated seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * TICKS_PER_SECOND)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// millisecond.  Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            SimTime(0)
        } else {
            SimTime((secs * TICKS_PER_SECOND as f64).round() as u64)
        }
    }

    /// Raw millisecond ticks since the origin.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw millisecond ticks.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration from whole simulated seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * TICKS_PER_SECOND)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// millisecond.  Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((secs * TICKS_PER_SECOND as f64).round() as u64)
        }
    }

    /// Raw millisecond ticks.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The duration expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// Multiplies the duration by an integer factor.
    pub const fn mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0 * factor)
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_millis(), 3_000);
        assert_eq!(SimTime::from_millis(1_500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_millis(), 250);
    }

    #[test]
    fn negative_and_zero_seconds_clamp() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
        assert!(SimDuration::ZERO.is_zero());
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs_f64(2.5);
        assert_eq!((t + d).as_millis(), 12_500);
        assert_eq!((t + d) - t, d);
        // Subtraction saturates rather than underflowing.
        assert_eq!(t - (t + d), SimDuration::ZERO);
        assert_eq!(t.since(t + d), SimDuration::ZERO);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = SimTime::ZERO;
        for _ in 0..5 {
            t += SimDuration::from_secs(1);
        }
        assert_eq!(t, SimTime::from_secs(5));

        let mut d = SimDuration::ZERO;
        d += SimDuration::from_millis(300);
        d += SimDuration::from_millis(700);
        assert_eq!(d, SimDuration::from_secs(1));
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(20);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_uses_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1_250)), "1.250");
        assert_eq!(format!("{:?}", SimDuration::from_millis(40)), "0.040s");
    }

    #[test]
    fn saturating_add_clamps_at_the_clock_ceiling() {
        let end = SimTime::from_millis(u64::MAX);
        assert_eq!(end.saturating_add(SimDuration::from_millis(1)), end);
        assert_eq!(end.saturating_add(SimDuration::from_millis(u64::MAX)), end);
        // One tick below the ceiling still lands exactly on it.
        let almost = SimTime::from_millis(u64::MAX - 1);
        assert_eq!(almost.saturating_add(SimDuration::from_millis(1)), end);
        // Zero-duration adds are exact everywhere, including at the ceiling.
        assert_eq!(end.saturating_add(SimDuration::ZERO), end);
    }

    #[test]
    fn subtraction_saturates_at_the_origin() {
        let origin = SimTime::ZERO;
        let far = SimTime::from_millis(u64::MAX);
        assert_eq!(origin - far, SimDuration::ZERO);
        assert_eq!(origin.since(far), SimDuration::ZERO);
        // The full span is representable in one duration.
        assert_eq!(far.since(origin).as_millis(), u64::MAX);
        assert_eq!((far - origin).as_millis(), u64::MAX);
    }

    #[test]
    fn fractional_constructors_saturate_instead_of_wrapping() {
        // Casting an oversized f64 to u64 saturates in Rust, so absurd
        // second counts clamp to the clock ceiling rather than wrapping.
        assert_eq!(SimTime::from_secs_f64(f64::MAX).as_millis(), u64::MAX);
        assert_eq!(SimDuration::from_secs_f64(f64::MAX).as_millis(), u64::MAX);
        // NaN compares false against <= 0.0 and saturates to 0 on cast.
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
    }

    #[test]
    fn duration_mul_scales() {
        assert_eq!(
            SimDuration::from_millis(250).mul(4),
            SimDuration::from_secs(1)
        );
    }
}
