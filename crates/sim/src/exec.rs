//! Scoped-job execution abstraction.
//!
//! The simulation stack has three call sites that fan identical, independent
//! chunks of work out over threads: the per-period scheduling sweep inside
//! `fss-gossip`, the multi-channel session stepping in `fss-runtime`, and the
//! scenario sweeps in `fss-experiments`.  All three share one contract,
//! defined here so the lowest-level crates stay free of any thread-pool
//! dependency:
//!
//! * a [`ScopedJob`] is a borrow-friendly unit of work indexed by *chunk*:
//!   `run_chunk(i)` must be callable for every `i < chunks`, from any thread,
//!   concurrently with other chunk indices;
//! * a [`JobExecutor`] runs all chunks of a job and returns only when every
//!   chunk has completed, which is what makes lending stack-borrowed jobs to
//!   long-lived worker threads sound (the persistent pool in `fss-runtime`
//!   relies on exactly this post-condition);
//! * results are written to per-**chunk** slots — never per-*worker* state —
//!   so which thread executes which chunk can never influence any output.
//!   [`DisjointSlots`] is the helper that hands each chunk exclusive mutable
//!   access to its slot.
//!
//! Determinism contract: an executor may run chunks in any order and on any
//! thread, but a job whose chunks only touch chunk-indexed state produces
//! byte-identical results under every conforming executor, including the
//! in-line [`SerialExecutor`].

use std::marker::PhantomData;

/// A unit of fan-out work: `run_chunk(i)` executes the `i`-th independent
/// chunk.
///
/// Implementations must tolerate chunks running concurrently on different
/// threads (hence the `Sync` supertrait) and in any order.  Closures
/// `Fn(usize) + Sync` implement this automatically.
pub trait ScopedJob: Sync {
    /// Executes chunk `chunk` (0-based).
    fn run_chunk(&self, chunk: usize);
}

impl<F: Fn(usize) + Sync> ScopedJob for F {
    fn run_chunk(&self, chunk: usize) {
        self(chunk)
    }
}

/// Runs every chunk of a [`ScopedJob`], returning only once all have
/// completed.
///
/// The completion post-condition is load-bearing: callers lend jobs that
/// borrow their stack frame, so an executor must never let a chunk outlive
/// the `execute` call.
pub trait JobExecutor: Send + Sync {
    /// Runs `job.run_chunk(i)` for every `i` in `0..chunks` and waits for all
    /// of them.
    fn execute(&self, chunks: usize, job: &dyn ScopedJob);
}

/// The trivial executor: runs chunks 0, 1, 2, … in-line on the calling
/// thread.
///
/// Every parallel lane degrades to this (byte-identically) when no pool is
/// attached.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl JobExecutor for SerialExecutor {
    fn execute(&self, chunks: usize, job: &dyn ScopedJob) {
        for chunk in 0..chunks {
            job.run_chunk(chunk);
        }
    }
}

/// Hands each chunk of a [`ScopedJob`] exclusive `&mut` access to one slot of
/// a caller-owned slice.
///
/// This is the bridge between the shared-`&self` world of [`ScopedJob`] and
/// the per-chunk mutable state (worker scratch arenas, result slots) the
/// jobs actually need.  The caller keeps ownership of the slice; the wrapper
/// only erases the `&mut` so the job closure can stay `Fn`.
///
/// # Safety contract
///
/// [`DisjointSlots::slot`] is `unsafe`: the caller promises that within one
/// `execute` run every index is borrowed by **at most one** chunk at a time.
/// The natural pattern — chunk `i` touches only slot `i` — satisfies this by
/// construction, and conforming executors never run the same chunk index
/// twice.
pub struct DisjointSlots<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the wrapper only lends out disjoint `&mut T` under the documented
// contract, so sharing it across threads is exactly as safe as sending each
// `&mut T` to one thread.
unsafe impl<T: Send> Sync for DisjointSlots<'_, T> {}

impl<'a, T> DisjointSlots<'a, T> {
    /// Wraps `slice`, taking its mutable borrow for the wrapper's lifetime.
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointSlots {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exclusive access to slot `index`.
    ///
    /// # Safety
    /// Each index must be borrowed by at most one thread at a time; two
    /// simultaneous `slot(i)` calls for the same `i` are undefined behaviour.
    /// See the type-level contract.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    #[allow(clippy::mut_from_ref)] // the whole point; contract documented above
    pub unsafe fn slot(&self, index: usize) -> &mut T {
        assert!(index < self.len, "slot {index} out of {} slots", self.len);
        // SAFETY: bounds checked above; exclusivity is the caller's contract.
        unsafe { &mut *self.ptr.add(index) }
    }
}

/// Hands each chunk of a [`ScopedJob`] exclusive `&mut` access to one
/// contiguous **range** of a caller-owned slice.
///
/// The range-shaped twin of [`DisjointSlots`]: where the chunk plan already
/// partitions an index space (`(start, end)` runs of an active list, say),
/// each chunk can take its run of a parallel output table without the
/// caller having to split the slice up front.
///
/// # Safety contract
///
/// [`DisjointRanges::range`] is `unsafe`: the caller promises that within
/// one `execute` run the requested ranges never overlap between
/// concurrently live borrows.  A chunk plan that partitions `0..len`
/// (chunks touch only their own `(start, end)`) satisfies this by
/// construction.
pub struct DisjointRanges<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the wrapper only lends out disjoint `&mut [T]` ranges under the
// documented contract, so sharing it across threads is exactly as safe as
// sending each sub-slice to one thread.
unsafe impl<T: Send> Sync for DisjointRanges<'_, T> {}

impl<'a, T> DisjointRanges<'a, T> {
    /// Wraps `slice`, taking its mutable borrow for the wrapper's lifetime.
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointRanges {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Total length of the wrapped slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exclusive access to `start..end`.
    ///
    /// # Safety
    /// Concurrently live ranges must never overlap; two simultaneous
    /// borrows containing the same index are undefined behaviour.  See the
    /// type-level contract.
    ///
    /// # Panics
    /// Panics if `start > end` or `end` is out of bounds.
    #[allow(clippy::mut_from_ref)] // the whole point; contract documented above
    pub unsafe fn range(&self, start: usize, end: usize) -> &mut [T] {
        assert!(
            start <= end && end <= self.len,
            "range {start}..{end} out of {} elements",
            self.len
        );
        // SAFETY: bounds checked above; disjointness is the caller's
        // contract.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_executor_runs_all_chunks_in_order() {
        let mut out = vec![0usize; 5];
        let slots = DisjointSlots::new(&mut out);
        assert_eq!(slots.len(), 5);
        assert!(!slots.is_empty());
        SerialExecutor.execute(5, &|i: usize| {
            // SAFETY: chunk i touches only slot i.
            let slot = unsafe { slots.slot(i) };
            *slot = i * 10;
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn zero_chunks_is_a_no_op() {
        let job = |_: usize| panic!("must not run");
        SerialExecutor.execute(0, &job);
    }

    #[test]
    fn scoped_job_trait_object_dispatch() {
        struct Collatz;
        impl ScopedJob for Collatz {
            fn run_chunk(&self, _chunk: usize) {}
        }
        let job: &dyn ScopedJob = &Collatz;
        SerialExecutor.execute(3, job);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_bounds_slot_panics() {
        let mut out = [0u8; 2];
        let slots = DisjointSlots::new(&mut out);
        let _ = unsafe { slots.slot(2) };
    }

    #[test]
    fn disjoint_ranges_partition_writes() {
        let mut out = vec![0usize; 10];
        let chunks = [(0usize, 3usize), (3, 3), (3, 7), (7, 10)];
        let ranges = DisjointRanges::new(&mut out);
        assert_eq!(ranges.len(), 10);
        assert!(!ranges.is_empty());
        SerialExecutor.execute(chunks.len(), &|i: usize| {
            let (start, end) = chunks[i];
            // SAFETY: the chunk plan partitions 0..10.
            let slice = unsafe { ranges.range(start, end) };
            for (offset, slot) in slice.iter_mut().enumerate() {
                *slot = start + offset + 100;
            }
        });
        assert_eq!(out, (100..110).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_bounds_range_panics() {
        let mut out = [0u8; 4];
        let ranges = DisjointRanges::new(&mut out);
        let _ = unsafe { ranges.range(2, 5) };
    }
}
