//! Deterministic, allocation-free hashing for the hot path.
//!
//! `std::collections::HashMap`'s default `RandomState` is seeded per process,
//! which is fine for correctness but (a) costs a SipHash round per lookup on
//! a path that does millions of membership probes per simulated second and
//! (b) makes iteration order differ between runs.  The simulator never relies
//! on map iteration order for results, but a fixed multiplicative hasher
//! makes replay traces byte-identical and measurably faster.
//!
//! This lives in `fss-sim` — below every other workspace crate — so that the
//! whole stack (trace parsing included) can use the same deterministic
//! collections; `fss_gossip::hasher` re-exports it for the historical path.
//! The `fss-lint` rule FSS001 enforces that library code reaches for these
//! aliases instead of the default-`RandomState` types.

use std::hash::{BuildHasherDefault, Hasher};

/// Fibonacci-multiply hasher for small integer keys (FxHash-style).
#[derive(Debug, Default, Clone)]
pub struct FxHasher64 {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher64 {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u32(&mut self, value: u32) {
        self.write_u64(value as u64);
    }

    fn write_u64(&mut self, value: u64) {
        self.state = (self.state.rotate_left(5) ^ value).wrapping_mul(SEED);
    }

    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }
}

/// `BuildHasher` producing [`FxHasher64`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// A `HashMap` keyed with the deterministic hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the deterministic hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHashMap::default();
        let mut b = FxHashMap::default();
        for i in 0..1000u64 {
            a.insert(i, i * 3);
            b.insert(i, i * 3);
        }
        assert_eq!(a.len(), 1000);
        // Iteration order is a function of the keys alone (fixed hasher).
        let ka: Vec<u64> = a.keys().copied().collect();
        let kb: Vec<u64> = b.keys().copied().collect();
        assert_eq!(ka, kb);
        assert_eq!(a.get(&999), Some(&2997));
    }

    #[test]
    fn set_alias_shares_the_hasher() {
        let mut a = FxHashSet::default();
        for i in 0..1000u64 {
            a.insert(i);
        }
        // Iteration order is a function of the keys alone (fixed hasher).
        let ka: Vec<u64> = a.iter().copied().collect();
        let kb: Vec<u64> = FxHashSet::from_iter(0..1000u64).iter().copied().collect();
        assert_eq!(ka, kb);
        assert!(a.contains(&999) && !a.contains(&1000));
    }
}
