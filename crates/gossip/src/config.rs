//! Protocol configuration.
//!
//! Defaults follow §5.1 of the paper exactly:
//!
//! * streaming rate 300 Kbps, segment size 30 Kb ⇒ playback rate `p = 10`
//!   segments/s,
//! * buffer of `B = 600` segments,
//! * scheduling period `τ = 1.0` s,
//! * startup threshold `Q = 10` consecutive segments,
//! * new-source startup threshold `Qs = 50` segments,
//! * buffer map of 620 bits (600-bit availability + 20-bit head id).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced when validating a [`GossipConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Description of the inconsistency.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid gossip configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Protocol parameters of the streaming system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipConfig {
    /// Data scheduling period `τ` in seconds.
    pub tau_secs: f64,
    /// Playback rate `p` in segments per second.
    pub play_rate: f64,
    /// Buffer capacity `B` in segments.
    pub buffer_capacity: usize,
    /// Number of consecutive segments required to start playback of a stream
    /// (`Q`).
    pub startup_q: usize,
    /// Number of segments of a *new* source required before its playback may
    /// start (`Qs`).
    pub new_source_qs: usize,
    /// Payload size of one segment in bits (30 Kb = 30 × 1024 bits).
    pub segment_bits: u64,
    /// Size of one buffer-map exchange in bits (600-bit map + 20-bit head id).
    pub buffermap_bits: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            tau_secs: 1.0,
            play_rate: 10.0,
            buffer_capacity: 600,
            startup_q: 10,
            new_source_qs: 50,
            segment_bits: 30 * 1024,
            buffermap_bits: 620,
        }
    }
}

impl GossipConfig {
    /// The configuration used throughout the paper's evaluation.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Segments a rate of `rate` segments/s can move within one period.
    pub fn segments_per_period(&self, rate: f64) -> f64 {
        rate * self.tau_secs
    }

    /// Number of segments played per period.
    pub fn play_per_period(&self) -> f64 {
        self.play_rate * self.tau_secs
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |message: String| Err(ConfigError { message });
        if !self.tau_secs.is_finite() || self.tau_secs <= 0.0 {
            return err(format!("tau_secs {} must be positive", self.tau_secs));
        }
        if !self.play_rate.is_finite() || self.play_rate <= 0.0 {
            return err(format!("play_rate {} must be positive", self.play_rate));
        }
        if self.buffer_capacity == 0 {
            return err("buffer_capacity must be positive".into());
        }
        if self.buffer_capacity >= 1 << 16 {
            // The FIFO buffer's compact layout stores u16 epoch-relative
            // arrival sequence numbers; the live range (≤ capacity entries)
            // must fit one epoch.  Catch it here instead of panicking deep
            // inside system construction.
            return err(format!(
                "buffer_capacity {} must fit one u16 sequence epoch (< {})",
                self.buffer_capacity,
                1u32 << 16
            ));
        }
        if self.startup_q == 0 {
            return err("startup_q must be positive".into());
        }
        if self.new_source_qs == 0 {
            return err("new_source_qs must be positive".into());
        }
        if self.new_source_qs > self.buffer_capacity {
            return err(format!(
                "new_source_qs {} cannot exceed buffer_capacity {}",
                self.new_source_qs, self.buffer_capacity
            ));
        }
        if self.segment_bits == 0 || self.buffermap_bits == 0 {
            return err("segment_bits and buffermap_bits must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_section_5_1() {
        let c = GossipConfig::paper_default();
        assert_eq!(c.tau_secs, 1.0);
        assert_eq!(c.play_rate, 10.0);
        assert_eq!(c.buffer_capacity, 600);
        assert_eq!(c.startup_q, 10);
        assert_eq!(c.new_source_qs, 50);
        assert_eq!(c.segment_bits, 30 * 1024);
        assert_eq!(c.buffermap_bits, 620);
        c.validate().unwrap();
    }

    #[test]
    fn per_period_helpers() {
        let c = GossipConfig::paper_default();
        assert_eq!(c.segments_per_period(15.0), 15.0);
        assert_eq!(c.play_per_period(), 10.0);
        let mut c2 = c;
        c2.tau_secs = 0.5;
        assert_eq!(c2.segments_per_period(15.0), 7.5);
        assert_eq!(c2.play_per_period(), 5.0);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let bad = |f: fn(&mut GossipConfig)| {
            let mut c = GossipConfig::default();
            f(&mut c);
            c.validate().unwrap_err()
        };
        assert!(bad(|c| c.tau_secs = 0.0).message.contains("tau"));
        assert!(bad(|c| c.play_rate = -1.0).message.contains("play_rate"));
        assert!(bad(|c| c.buffer_capacity = 0).message.contains("buffer"));
        assert!(bad(|c| c.buffer_capacity = 1 << 16)
            .message
            .contains("u16 sequence epoch"));
        assert!(bad(|c| c.startup_q = 0).message.contains("startup_q"));
        assert!(bad(|c| c.new_source_qs = 0)
            .message
            .contains("new_source_qs"));
        assert!(bad(|c| c.new_source_qs = 601).message.contains("exceed"));
        assert!(bad(|c| c.segment_bits = 0).message.contains("bits"));
    }

    #[test]
    fn config_error_displays() {
        let e = ConfigError {
            message: "broken".into(),
        };
        assert!(e.to_string().contains("broken"));
    }
}
