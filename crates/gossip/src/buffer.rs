//! Per-node FIFO segment buffer.
//!
//! Each node holds a buffer of `B` segments (600 in the paper).  The
//! replacement strategy is FIFO: when a new segment arrives and the buffer is
//! full the *oldest arrival* is evicted.  The paper's rarity computation
//! (eq. 8) needs, for every candidate segment, its **position** in each
//! supplier's buffer measured as the distance from the buffer tail (the
//! insertion end): a freshly inserted segment has position 1, the next
//! segment to be evicted has position `len()`.

use crate::segment::SegmentId;
use std::collections::{BTreeSet, VecDeque};

/// FIFO buffer of segment ids with O(log B) membership queries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FifoBuffer {
    capacity: usize,
    /// Arrival order, oldest at the front.
    arrivals: VecDeque<SegmentId>,
    /// Membership index.
    present: BTreeSet<SegmentId>,
}

impl FifoBuffer {
    /// Creates an empty buffer that can hold `capacity` segments.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        FifoBuffer {
            capacity,
            arrivals: VecDeque::with_capacity(capacity),
            present: BTreeSet::new(),
        }
    }

    /// Maximum number of segments the buffer can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of segments currently held.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when the buffer holds no segments.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// True when `segment` is currently held.
    pub fn contains(&self, segment: SegmentId) -> bool {
        self.present.contains(&segment)
    }

    /// Inserts a segment.  Returns the evicted segment if the buffer was full,
    /// or `None`.  Re-inserting an already-held segment is a no-op.
    pub fn insert(&mut self, segment: SegmentId) -> Option<SegmentId> {
        if self.present.contains(&segment) {
            return None;
        }
        let evicted = if self.arrivals.len() == self.capacity {
            let old = self.arrivals.pop_front().expect("non-empty when full");
            self.present.remove(&old);
            Some(old)
        } else {
            None
        };
        self.arrivals.push_back(segment);
        self.present.insert(segment);
        evicted
    }

    /// Position of a segment measured from the tail (insertion end): the
    /// newest segment has position 1, the oldest has position `len()`.
    /// Returns `None` when the segment is not held.
    ///
    /// This is the `p_ij` of Table 2: `p_ij / B` approximates the probability
    /// that the segment will soon be replaced in this buffer.
    pub fn position_from_tail(&self, segment: SegmentId) -> Option<usize> {
        if !self.present.contains(&segment) {
            return None;
        }
        self.arrivals
            .iter()
            .rev()
            .position(|&s| s == segment)
            .map(|i| i + 1)
    }

    /// Positions of many segments at once (single scan of the buffer).
    /// The result aligns with `segments`; `None` marks absent segments.
    pub fn positions_of(&self, segments: &[SegmentId]) -> Vec<Option<usize>> {
        let mut result = vec![None; segments.len()];
        // Only scan for the segments that are actually present.
        let wanted: Vec<(usize, SegmentId)> = segments
            .iter()
            .enumerate()
            .filter(|(_, s)| self.present.contains(s))
            .map(|(i, &s)| (i, s))
            .collect();
        if wanted.is_empty() {
            return result;
        }
        let lookup: std::collections::HashMap<SegmentId, usize> =
            wanted.iter().map(|&(i, s)| (s, i)).collect();
        for (pos_from_tail, &seg) in self.arrivals.iter().rev().enumerate() {
            if let Some(&idx) = lookup.get(&seg) {
                result[idx] = Some(pos_from_tail + 1);
            }
        }
        result
    }

    /// Iterator over held segment ids in ascending id order.
    pub fn ids(&self) -> impl Iterator<Item = SegmentId> + '_ {
        self.present.iter().copied()
    }

    /// Iterator over held segments in arrival order (oldest first).
    pub fn arrivals(&self) -> impl Iterator<Item = SegmentId> + '_ {
        self.arrivals.iter().copied()
    }

    /// Number of held segments with ids in `[from, to]` (inclusive).
    pub fn count_in_range(&self, from: SegmentId, to: SegmentId) -> usize {
        if to < from {
            return 0;
        }
        self.present.range(from..=to).count()
    }

    /// Ids in `[from, to]` (inclusive) that are **not** held.
    pub fn missing_in_range(&self, from: SegmentId, to: SegmentId) -> Vec<SegmentId> {
        if to < from {
            return Vec::new();
        }
        let mut missing = Vec::new();
        let mut held = self.present.range(from..=to).peekable();
        for id in from.value()..=to.value() {
            let id = SegmentId(id);
            match held.peek() {
                Some(&&h) if h == id => {
                    held.next();
                }
                _ => missing.push(id),
            }
        }
        missing
    }

    /// Length of the run of consecutively held segments starting at `from`.
    pub fn contiguous_run_from(&self, from: SegmentId) -> usize {
        let mut count = 0;
        let mut id = from;
        while self.present.contains(&id) {
            count += 1;
            id = id.next();
        }
        count
    }

    /// Greatest held id, if any.
    pub fn max_id(&self) -> Option<SegmentId> {
        self.present.iter().next_back().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<SegmentId> {
        v.iter().map(|&i| SegmentId(i)).collect()
    }

    #[test]
    fn insert_contains_and_len() {
        let mut b = FifoBuffer::new(3);
        assert!(b.is_empty());
        assert_eq!(b.insert(SegmentId(5)), None);
        assert_eq!(b.insert(SegmentId(7)), None);
        assert!(b.contains(SegmentId(5)));
        assert!(!b.contains(SegmentId(6)));
        assert_eq!(b.len(), 2);
        assert_eq!(b.capacity(), 3);
    }

    #[test]
    fn fifo_eviction_order() {
        let mut b = FifoBuffer::new(3);
        b.insert(SegmentId(1));
        b.insert(SegmentId(2));
        b.insert(SegmentId(3));
        // Inserting a fourth evicts the oldest arrival (1).
        assert_eq!(b.insert(SegmentId(4)), Some(SegmentId(1)));
        assert!(!b.contains(SegmentId(1)));
        assert_eq!(b.len(), 3);
        // Out-of-order arrival: 0 arrives late, evicts 2 (the now-oldest).
        assert_eq!(b.insert(SegmentId(0)), Some(SegmentId(2)));
        assert!(b.contains(SegmentId(0)));
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut b = FifoBuffer::new(2);
        b.insert(SegmentId(1));
        assert_eq!(b.insert(SegmentId(1)), None);
        assert_eq!(b.len(), 1);
        b.insert(SegmentId(2));
        // 1 is still oldest despite the duplicate insert attempt.
        assert_eq!(b.insert(SegmentId(3)), Some(SegmentId(1)));
    }

    #[test]
    fn positions_measure_distance_from_tail() {
        let mut b = FifoBuffer::new(10);
        for i in 0..5 {
            b.insert(SegmentId(i));
        }
        // Newest (4) has position 1, oldest (0) has position 5.
        assert_eq!(b.position_from_tail(SegmentId(4)), Some(1));
        assert_eq!(b.position_from_tail(SegmentId(0)), Some(5));
        assert_eq!(b.position_from_tail(SegmentId(9)), None);

        let positions = b.positions_of(&ids(&[4, 0, 2, 99]));
        assert_eq!(positions, vec![Some(1), Some(5), Some(3), None]);
    }

    #[test]
    fn positions_of_empty_query() {
        let b = FifoBuffer::new(4);
        assert!(b.positions_of(&[]).is_empty());
        assert_eq!(b.positions_of(&ids(&[1])), vec![None]);
    }

    #[test]
    fn range_queries() {
        let mut b = FifoBuffer::new(10);
        for i in [1u64, 2, 3, 6, 7] {
            b.insert(SegmentId(i));
        }
        assert_eq!(b.count_in_range(SegmentId(1), SegmentId(7)), 5);
        assert_eq!(b.count_in_range(SegmentId(4), SegmentId(5)), 0);
        assert_eq!(b.count_in_range(SegmentId(7), SegmentId(1)), 0);
        assert_eq!(b.missing_in_range(SegmentId(1), SegmentId(7)), ids(&[4, 5]));
        assert_eq!(b.missing_in_range(SegmentId(8), SegmentId(7)), ids(&[]));
        assert_eq!(b.contiguous_run_from(SegmentId(1)), 3);
        assert_eq!(b.contiguous_run_from(SegmentId(6)), 2);
        assert_eq!(b.contiguous_run_from(SegmentId(4)), 0);
        assert_eq!(b.max_id(), Some(SegmentId(7)));
        assert_eq!(FifoBuffer::new(3).max_id(), None);
    }

    #[test]
    fn id_and_arrival_iterators() {
        let mut b = FifoBuffer::new(5);
        for i in [9u64, 3, 7] {
            b.insert(SegmentId(i));
        }
        assert_eq!(b.ids().collect::<Vec<_>>(), ids(&[3, 7, 9]));
        assert_eq!(b.arrivals().collect::<Vec<_>>(), ids(&[9, 3, 7]));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = FifoBuffer::new(0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        /// The buffer never exceeds its capacity, membership matches the FIFO
        /// content, and positions are a permutation of 1..=len.
        #[test]
        fn prop_fifo_invariants(
            cap in 1usize..40,
            inserts in proptest::collection::vec(0u64..200, 0..300),
        ) {
            let mut b = FifoBuffer::new(cap);
            for i in inserts {
                b.insert(SegmentId(i));
            }
            proptest::prop_assert!(b.len() <= cap);
            proptest::prop_assert_eq!(b.len(), b.arrivals().count());
            proptest::prop_assert_eq!(b.len(), b.ids().count());
            for s in b.arrivals() {
                proptest::prop_assert!(b.contains(s));
            }
            let mut positions: Vec<usize> = b
                .arrivals()
                .map(|s| b.position_from_tail(s).unwrap())
                .collect();
            positions.sort_unstable();
            let expected: Vec<usize> = (1..=b.len()).collect();
            proptest::prop_assert_eq!(positions, expected);
        }
    }
}
