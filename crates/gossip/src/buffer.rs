//! Per-node FIFO segment buffer.
//!
//! Each node holds a buffer of `B` segments (600 in the paper).  The
//! replacement strategy is FIFO: when a new segment arrives and the buffer is
//! full the *oldest arrival* is evicted.  The paper's rarity computation
//! (eq. 8) needs, for every candidate segment, its **position** in each
//! supplier's buffer measured as the distance from the buffer tail (the
//! insertion end): a freshly inserted segment has position 1, the next
//! segment to be evicted has position `len()`.
//!
//! # Hot-path representation
//!
//! The scheduling sweep probes buffers millions of times per simulated
//! second, so membership and positions must be O(1) and steady-state
//! operation must neither allocate nor rebuild anything per period:
//!
//! * `arrivals` is a ring of at most `capacity` entries (allocated once),
//!   each a **`u32` offset from the window base** rather than a full 8-byte
//!   `SegmentId` — offsets are bounded by [`MAX_SPAN_IDS`], and the rare
//!   events that move the base (window compaction, out-of-order rebases)
//!   re-anchor the ring in the same O(span) pass;
//! * availability lives in a **windowed bitmap** (`base` + `words`),
//!   maintained incrementally on insert/evict.  The window slides with the
//!   stream: when the head outgrows the words, dead all-zero leading words
//!   are compacted away in place, so steady-state inserts never allocate.
//!   This bitmap doubles as each peer's advertised buffer map — neighbours
//!   intersect its words directly instead of probing ids one by one;
//! * `seqs` stores, for every covered id, its **arrival sequence number**
//!   as a `u16` relative to the current *epoch*.  Because eviction always
//!   removes the oldest arrival, the live sequence numbers form a
//!   contiguous range of at most `len() ≤ capacity < 2¹⁶` values, so
//!   `position_from_tail` is a single subtraction: `next_seq − seq` — exact
//!   by construction, with no modular arithmetic to reason about (see
//!   *Epoch wrapping* below);
//! * the maximum held id is cached; it only needs recomputing when the
//!   evicted segment *is* the maximum (an out-of-order tail, rare in
//!   practice), which costs one reverse word scan and still no allocation.
//!
//! # Epoch wrapping
//!
//! A `u16` arrival counter overflows after 65 536 inserts — a *real* event
//! for any long-lived stream (a 10 segment/s channel gets there in under
//! two hours).  Instead of relying on wrapping subtraction (whose
//! correctness silently depends on the live window never straddling the
//! wrap), the buffer keeps an explicit invariant:
//!
//! > all live sequence numbers lie in `[next_seq − len, next_seq)` with
//! > `next_seq ≤ 2¹⁶`.
//!
//! When the counter reaches 2¹⁶ the buffer **renormalises**: it subtracts
//! the oldest live sequence number from every live entry (one pass over the
//! set bits, no allocation), bumping the *epoch*.  Positions are exact
//! across arbitrarily many epochs; [`epochs`](FifoBuffer::epochs) counts the
//! renormalisations for tests and diagnostics.  This is why
//! [`FifoBuffer::new`] rejects capacities ≥ 2¹⁶ — the live range must fit
//! one epoch.
//!
//! # Memory model
//!
//! The window costs O(span) bytes, where span = `max held id − min held id`
//! (not O(capacity) like a tree/map index): 1 availability bit plus a
//! 2-byte sequence entry per id of span, and 4 ring bytes per held segment.
//! This is the right trade for streaming workloads, where FIFO eviction
//! keeps the span within a few multiples of the buffer capacity.  Ids are
//! **not** required to be contiguous, but they must be stream-local:
//! inserting two ids further than [`MAX_SPAN_IDS`] apart panics with a
//! diagnostic instead of silently attempting a giant allocation.
//! [`mem_breakdown`](FifoBuffer::mem_breakdown) reports the reserved bytes
//! per component; see `docs/performance.md` for the per-peer budget.

use crate::mem::{vec_bytes, BufferMemBreakdown, MemoryFootprint};
use crate::segment::SegmentId;
use std::collections::VecDeque;

/// Extra zero words appended on growth so the compaction/extension cycle
/// amortises instead of running every few inserts.
const GROWTH_SLACK_WORDS: usize = 4;

/// Largest allowed distance between the smallest and largest held id.
///
/// The availability window costs O(span) memory (see the module docs); a
/// span beyond this bound (4M ids ≈ 10 MB of window) almost certainly means
/// the buffer is being fed non-stream ids, so we fail fast with a clear
/// message rather than letting the allocator abort.  The bound also keeps
/// ring offsets well inside `u32`.
pub const MAX_SPAN_IDS: u64 = 1 << 22;

/// One past the largest sequence number an epoch can hold.
const EPOCH_LIMIT: u32 = 1 << 16;

/// FIFO buffer of segment ids with O(1) membership and position queries and
/// word-level availability access.
#[derive(Debug, Clone, Default)]
pub struct FifoBuffer {
    capacity: usize,
    /// Arrival order, oldest at the front, as offsets from `base`.
    arrivals: VecDeque<u32>,
    /// First id covered by the bitmap; always a multiple of 64.
    base: u64,
    /// Availability bits over `[base, base + 64·words.len())`.
    words: Vec<u64>,
    /// Epoch-relative arrival sequence number per covered id (valid only
    /// where the availability bit is set).
    seqs: Vec<u16>,
    /// Sequence number the next insert will receive; kept ≤ [`EPOCH_LIMIT`]
    /// by renormalisation.
    next_seq: u32,
    /// Number of epoch renormalisations performed so far.
    epochs: u64,
    /// Cached greatest held id.
    max: Option<SegmentId>,
}

impl PartialEq for FifoBuffer {
    fn eq(&self, other: &Self) -> bool {
        // Two buffers are equal when they would behave identically: same
        // capacity and same segments in the same arrival order.  The bitmap
        // window placement and the epoch anchoring are implementation
        // details (the ring stores base-relative offsets, so raw entries
        // are not comparable across different window histories).
        self.capacity == other.capacity
            && self.arrivals.len() == other.arrivals.len()
            && self.arrivals().eq(other.arrivals())
    }
}

impl FifoBuffer {
    /// Creates an empty buffer that can hold `capacity` segments.
    ///
    /// # Panics
    /// Panics if `capacity` is zero or does not fit one sequence epoch
    /// (`capacity ≥ 2¹⁶` — see the module docs on epoch wrapping).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        assert!(
            capacity < EPOCH_LIMIT as usize,
            "buffer capacity {capacity} must fit one u16 sequence epoch (< {EPOCH_LIMIT})"
        );
        FifoBuffer {
            capacity,
            arrivals: VecDeque::with_capacity(capacity),
            base: 0,
            words: Vec::new(),
            seqs: Vec::new(),
            next_seq: 0,
            epochs: 0,
            max: None,
        }
    }

    /// Maximum number of segments the buffer can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of segments currently held.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when the buffer holds no segments.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Number of sequence-epoch renormalisations performed so far.
    ///
    /// Grows by one per 2¹⁶ arrivals in steady state; useful to assert that
    /// a test actually crossed an epoch boundary.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    fn offset_of(&self, id: u64) -> Option<usize> {
        if id < self.base {
            return None;
        }
        let offset = (id - self.base) as usize;
        if offset < self.words.len() * 64 {
            Some(offset)
        } else {
            None
        }
    }

    /// True when `segment` is currently held.
    pub fn contains(&self, segment: SegmentId) -> bool {
        match self.offset_of(segment.value()) {
            Some(offset) => (self.words[offset / 64] >> (offset % 64)) & 1 == 1,
            None => false,
        }
    }

    /// The 64 availability bits covering `[aligned, aligned + 63]`
    /// (`aligned` must be a multiple of 64; ids outside the window read 0).
    ///
    /// This is the peer's advertised buffer map, maintained incrementally:
    /// neighbours intersect these words with their own "needed" windows to
    /// enumerate candidate segments without per-id probing.
    #[inline]
    pub fn availability_word(&self, aligned: u64) -> u64 {
        debug_assert_eq!(aligned % 64, 0);
        if aligned < self.base {
            return 0;
        }
        self.words
            .get(((aligned - self.base) / 64) as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Drops dead (all-zero) leading words, sliding the window base up and
    /// re-anchoring the ring offsets.
    fn compact_leading_zeros(&mut self) {
        let zeros = self.words.iter().take_while(|&&w| w == 0).count();
        if zeros == 0 || zeros == self.words.len() {
            return;
        }
        let len = self.words.len();
        self.words.copy_within(zeros..len, 0);
        self.words.truncate(len - zeros);
        self.seqs.copy_within(zeros * 64..len * 64, 0);
        self.seqs.truncate((len - zeros) * 64);
        self.base += (zeros as u64) * 64;
        // Every held id sits at or above the new base, so every ring offset
        // is at least `zeros·64`.
        let delta: u32 = crate::cast::narrow(zeros * 64, "compacted span within MAX_SPAN_IDS");
        for offset in self.arrivals.iter_mut() {
            *offset -= delta;
        }
    }

    /// Grows a vector to `new_len` zeroes without amortised over-allocation:
    /// window growth is rare and self-limiting (compaction reclaims dead
    /// words), so exact reservations keep the steady-state footprint at the
    /// true high-water mark instead of up to 2× of it.
    fn grow_exact<T: Copy + Default>(v: &mut Vec<T>, new_len: usize) {
        if new_len > v.capacity() {
            v.reserve_exact(new_len - v.len());
        }
        v.resize(new_len, T::default());
    }

    /// Grows/slides the window so `id` is covered.
    ///
    /// # Panics
    /// Panics when covering `id` would stretch the window beyond
    /// [`MAX_SPAN_IDS`].
    fn ensure_covered(&mut self, id: u64) {
        if self.words.is_empty() {
            self.base = id & !63;
            Self::grow_exact(&mut self.words, 1 + GROWTH_SLACK_WORDS);
            Self::grow_exact(&mut self.seqs, (1 + GROWTH_SLACK_WORDS) * 64);
            return;
        }
        if id < self.base {
            // Out-of-order arrival below the window: prepend words.
            assert!(
                self.base + self.words.len() as u64 * 64 - (id & !63) <= MAX_SPAN_IDS,
                "FifoBuffer id span would exceed {MAX_SPAN_IDS} ids (inserting {id} below window base {}); \
                 this buffer is designed for stream-local segment ids",
                self.base
            );
            let new_base = id & !63;
            let shift = ((self.base - new_base) / 64) as usize;
            let old_len = self.words.len();
            Self::grow_exact(&mut self.words, old_len + shift);
            self.words.copy_within(0..old_len, shift);
            self.words[..shift].fill(0);
            Self::grow_exact(&mut self.seqs, (old_len + shift) * 64);
            self.seqs.copy_within(0..old_len * 64, shift * 64);
            self.seqs[..shift * 64].fill(0);
            self.base = new_base;
            // Held ids kept their absolute positions, so their offsets from
            // the lowered base all grew by the prepended span.
            let delta: u32 = crate::cast::narrow(shift * 64, "prepended span within MAX_SPAN_IDS");
            for offset in self.arrivals.iter_mut() {
                *offset += delta;
            }
            return;
        }
        let needed = ((id - self.base) / 64) as usize + 1;
        if needed <= self.words.len() {
            return;
        }
        // Reclaim dead leading words before growing; in steady state the
        // window slides with the stream and this avoids any allocation.
        self.compact_leading_zeros();
        let needed = ((id - self.base) / 64) as usize + 1;
        if needed > self.words.len() {
            assert!(
                (needed as u64) * 64 <= MAX_SPAN_IDS,
                "FifoBuffer id span would exceed {MAX_SPAN_IDS} ids (inserting {id} with window base {}); \
                 this buffer is designed for stream-local segment ids",
                self.base
            );
            Self::grow_exact(&mut self.words, needed + GROWTH_SLACK_WORDS);
            Self::grow_exact(&mut self.seqs, (needed + GROWTH_SLACK_WORDS) * 64);
        }
    }

    fn recompute_max(&mut self) {
        self.max = None;
        for (i, &word) in self.words.iter().enumerate().rev() {
            if word != 0 {
                let top = 63 - word.leading_zeros() as u64;
                self.max = Some(SegmentId(self.base + (i as u64) * 64 + top));
                return;
            }
        }
    }

    // fss-lint: hot-path
    /// Removes and returns the oldest arrival (the FIFO victim).
    fn evict_oldest(&mut self) -> SegmentId {
        let offset = self.arrivals.pop_front().expect("non-empty when evicting") as usize;
        let old = SegmentId(self.base + offset as u64);
        self.words[offset / 64] &= !(1 << (offset % 64));
        if self.max == Some(old) {
            self.recompute_max();
        }
        old
    }

    /// Re-anchors all live sequence numbers to a fresh epoch: subtracts the
    /// oldest live sequence number from every live entry so the range
    /// becomes `[0, len)` and the counter restarts at `len`.  One pass over
    /// the set bits, no allocation.
    fn renormalise_epoch(&mut self) {
        let live: u32 = crate::cast::narrow(self.arrivals.len(), "live count below EPOCH_LIMIT");
        let delta = self.next_seq - live;
        if delta == 0 {
            return;
        }
        if live > 0 {
            // Live sequence numbers are exactly [delta, next_seq), so the
            // u16 subtraction below can never underflow; with live > 0 the
            // delta itself is at most EPOCH_LIMIT − 1 and fits a u16.
            let delta: u16 = crate::cast::narrow(delta, "epoch delta bounded by live range");
            for (i, &word) in self.words.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let offset = i * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    self.seqs[offset] -= delta;
                }
            }
        }
        self.next_seq = live;
        self.epochs += 1;
    }

    /// Inserts a segment.  Returns the evicted segment if the buffer was full,
    /// or `None`.  Re-inserting an already-held segment is a no-op.
    pub fn insert(&mut self, segment: SegmentId) -> Option<SegmentId> {
        if self.contains(segment) {
            return None;
        }
        let evicted = if self.arrivals.len() == self.capacity {
            Some(self.evict_oldest())
        } else {
            None
        };
        self.ensure_covered(segment.value());
        if self.next_seq == EPOCH_LIMIT {
            self.renormalise_epoch();
        }
        debug_assert!(self.next_seq < EPOCH_LIMIT);
        let offset = (segment.value() - self.base) as usize;
        self.words[offset / 64] |= 1 << (offset % 64);
        self.seqs[offset] = self.next_seq as u16;
        self.next_seq += 1;
        self.arrivals.push_back(offset as u32);
        if self.max.is_none_or(|m| segment > m) {
            self.max = Some(segment);
        }
        evicted
    }

    /// Evicts the `n` oldest arrivals without inserting anything, returning
    /// how many were removed (fewer than `n` when the buffer runs out).
    ///
    /// Positions of the surviving segments are unchanged — distance from
    /// the tail does not depend on how many older segments exist.  Useful
    /// for memory-pressure trimming and for exercising the window
    /// shrink-then-regrow paths.
    pub fn shrink_front(&mut self, n: usize) -> usize {
        let count = n.min(self.arrivals.len());
        for _ in 0..count {
            self.evict_oldest();
        }
        count
    }

    /// Position of a segment measured from the tail (insertion end): the
    /// newest segment has position 1, the oldest has position `len()`.
    /// Returns `None` when the segment is not held.
    ///
    /// This is the `p_ij` of Table 2: `p_ij / B` approximates the probability
    /// that the segment will soon be replaced in this buffer.
    pub fn position_from_tail(&self, segment: SegmentId) -> Option<usize> {
        let offset = self.offset_of(segment.value())?;
        if (self.words[offset / 64] >> (offset % 64)) & 1 == 0 {
            return None;
        }
        // Exact: live seqs lie in [next_seq − len, next_seq), so the
        // difference is within [1, len] — no wrapping involved.
        Some((self.next_seq - u32::from(self.seqs[offset])) as usize)
    }
    // fss-lint: end

    /// Positions of many segments at once.
    /// The result aligns with `segments`; `None` marks absent segments.
    pub fn positions_of(&self, segments: &[SegmentId]) -> Vec<Option<usize>> {
        segments
            .iter()
            .map(|&s| self.position_from_tail(s))
            .collect()
    }

    /// Iterator over held segment ids in ascending id order (no allocation:
    /// walks the availability words).
    pub fn ids(&self) -> impl Iterator<Item = SegmentId> + '_ {
        let base = self.base;
        self.words
            .iter()
            .enumerate()
            .flat_map(move |(i, &word)| BitIter {
                word,
                base: base + (i as u64) * 64,
            })
    }

    /// Iterator over held segments in arrival order (oldest first).
    pub fn arrivals(&self) -> impl Iterator<Item = SegmentId> + '_ {
        let base = self.base;
        self.arrivals
            .iter()
            .map(move |&offset| SegmentId(base + offset as u64))
    }

    /// Number of held segments with ids in `[from, to]` (inclusive):
    /// a popcount over the covered words.
    pub fn count_in_range(&self, from: SegmentId, to: SegmentId) -> usize {
        if to < from || self.words.is_empty() {
            return 0;
        }
        let lo = from.value().max(self.base);
        let hi = to.value().min(self.base + self.words.len() as u64 * 64 - 1);
        if hi < lo {
            return 0;
        }
        let mut count = 0usize;
        let mut word_base = lo & !63;
        while word_base <= hi {
            let mut word = self.availability_word(word_base);
            if word_base < lo {
                word &= u64::MAX << (lo - word_base);
            }
            if word_base + 63 > hi {
                word &= u64::MAX >> (word_base + 63 - hi);
            }
            count += word.count_ones() as usize;
            word_base += 64;
        }
        count
    }

    /// Ids in `[from, to]` (inclusive) that are **not** held.
    pub fn missing_in_range(&self, from: SegmentId, to: SegmentId) -> Vec<SegmentId> {
        if to < from {
            return Vec::new();
        }
        (from.value()..=to.value())
            .map(SegmentId)
            .filter(|&id| !self.contains(id))
            .collect()
    }

    /// Length of the run of consecutively held segments starting at `from`.
    pub fn contiguous_run_from(&self, from: SegmentId) -> usize {
        let mut count = 0;
        let mut id = from;
        while self.contains(id) {
            count += 1;
            id = id.next();
        }
        count
    }

    /// Greatest held id, if any (O(1), cached).
    ///
    /// Marked `#[inline]`: the fused scheduling gather calls this across
    /// crate boundaries for every neighbour of every active peer — the call
    /// must collapse to a single field load so the chunk walk stays bound by
    /// the prefetched column reads, not by call overhead.
    #[inline]
    pub fn max_id(&self) -> Option<SegmentId> {
        self.max
    }

    /// Reserved heap bytes per component (ring / window / sequence array).
    ///
    /// `#[inline]` for the shard-major meter sweep, which calls this per
    /// active peer right after prefetching the buffer struct.
    #[inline]
    pub fn mem_breakdown(&self) -> BufferMemBreakdown {
        BufferMemBreakdown {
            ring_bytes: self.arrivals.capacity() * std::mem::size_of::<u32>(),
            window_bytes: vec_bytes(&self.words),
            seq_bytes: vec_bytes(&self.seqs),
        }
    }
}

impl MemoryFootprint for FifoBuffer {
    fn heap_bytes(&self) -> usize {
        self.mem_breakdown().heap_total()
    }
}

/// Iterator over the set bits of one availability word.
struct BitIter {
    word: u64,
    base: u64,
}

impl Iterator for BitIter {
    type Item = SegmentId;
    fn next(&mut self) -> Option<SegmentId> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as u64;
        self.word &= self.word - 1;
        Some(SegmentId(self.base + bit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<SegmentId> {
        v.iter().map(|&i| SegmentId(i)).collect()
    }

    #[test]
    fn insert_contains_and_len() {
        let mut b = FifoBuffer::new(3);
        assert!(b.is_empty());
        assert_eq!(b.insert(SegmentId(5)), None);
        assert_eq!(b.insert(SegmentId(7)), None);
        assert!(b.contains(SegmentId(5)));
        assert!(!b.contains(SegmentId(6)));
        assert_eq!(b.len(), 2);
        assert_eq!(b.capacity(), 3);
    }

    #[test]
    fn fifo_eviction_order() {
        let mut b = FifoBuffer::new(3);
        b.insert(SegmentId(1));
        b.insert(SegmentId(2));
        b.insert(SegmentId(3));
        // Inserting a fourth evicts the oldest arrival (1).
        assert_eq!(b.insert(SegmentId(4)), Some(SegmentId(1)));
        assert!(!b.contains(SegmentId(1)));
        assert_eq!(b.len(), 3);
        // Out-of-order arrival: 0 arrives late, evicts 2 (the now-oldest).
        assert_eq!(b.insert(SegmentId(0)), Some(SegmentId(2)));
        assert!(b.contains(SegmentId(0)));
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut b = FifoBuffer::new(2);
        b.insert(SegmentId(1));
        assert_eq!(b.insert(SegmentId(1)), None);
        assert_eq!(b.len(), 1);
        b.insert(SegmentId(2));
        // 1 is still oldest despite the duplicate insert attempt.
        assert_eq!(b.insert(SegmentId(3)), Some(SegmentId(1)));
    }

    #[test]
    fn positions_measure_distance_from_tail() {
        let mut b = FifoBuffer::new(10);
        for i in 0..5 {
            b.insert(SegmentId(i));
        }
        // Newest (4) has position 1, oldest (0) has position 5.
        assert_eq!(b.position_from_tail(SegmentId(4)), Some(1));
        assert_eq!(b.position_from_tail(SegmentId(0)), Some(5));
        assert_eq!(b.position_from_tail(SegmentId(9)), None);

        let positions = b.positions_of(&ids(&[4, 0, 2, 99]));
        assert_eq!(positions, vec![Some(1), Some(5), Some(3), None]);
    }

    #[test]
    fn positions_survive_eviction() {
        let mut b = FifoBuffer::new(4);
        for i in 0..9 {
            b.insert(SegmentId(i));
        }
        // Held: 5, 6, 7, 8 (oldest→newest).
        assert_eq!(b.position_from_tail(SegmentId(8)), Some(1));
        assert_eq!(b.position_from_tail(SegmentId(5)), Some(4));
        assert_eq!(b.position_from_tail(SegmentId(4)), None);
    }

    #[test]
    fn positions_of_empty_query() {
        let b = FifoBuffer::new(4);
        assert!(b.positions_of(&[]).is_empty());
        assert_eq!(b.positions_of(&ids(&[1])), vec![None]);
    }

    #[test]
    fn range_queries() {
        let mut b = FifoBuffer::new(10);
        for i in [1u64, 2, 3, 6, 7] {
            b.insert(SegmentId(i));
        }
        assert_eq!(b.count_in_range(SegmentId(1), SegmentId(7)), 5);
        assert_eq!(b.count_in_range(SegmentId(4), SegmentId(5)), 0);
        assert_eq!(b.count_in_range(SegmentId(7), SegmentId(1)), 0);
        assert_eq!(b.count_in_range(SegmentId(0), SegmentId(1_000_000)), 5);
        assert_eq!(b.missing_in_range(SegmentId(1), SegmentId(7)), ids(&[4, 5]));
        assert_eq!(b.missing_in_range(SegmentId(8), SegmentId(7)), ids(&[]));
        assert_eq!(b.contiguous_run_from(SegmentId(1)), 3);
        assert_eq!(b.contiguous_run_from(SegmentId(6)), 2);
        assert_eq!(b.contiguous_run_from(SegmentId(4)), 0);
        assert_eq!(b.max_id(), Some(SegmentId(7)));
        assert_eq!(FifoBuffer::new(3).max_id(), None);
    }

    #[test]
    fn max_id_tracks_eviction_of_the_maximum() {
        let mut b = FifoBuffer::new(3);
        b.insert(SegmentId(9)); // max arrives first (oldest)
        b.insert(SegmentId(3));
        b.insert(SegmentId(5));
        assert_eq!(b.max_id(), Some(SegmentId(9)));
        // Evicting 9 (the oldest arrival AND the max) forces a recompute.
        b.insert(SegmentId(4));
        assert_eq!(b.max_id(), Some(SegmentId(5)));
        assert!(!b.contains(SegmentId(9)));
    }

    #[test]
    fn window_slides_with_the_stream() {
        // Stream 100k ids through a small buffer: the bitmap window must
        // track the live span instead of growing with the id space.
        let mut b = FifoBuffer::new(64);
        for i in 0..100_000u64 {
            b.insert(SegmentId(i));
        }
        assert_eq!(b.len(), 64);
        assert!(b.contains(SegmentId(99_999)));
        assert!(!b.contains(SegmentId(99_935)));
        assert_eq!(b.max_id(), Some(SegmentId(99_999)));
        assert!(
            b.words.len() <= 4 + 2 * GROWTH_SLACK_WORDS,
            "window kept {} words for a 64-id span",
            b.words.len()
        );
        // Positions still exact after 100k slides (and one epoch bump).
        assert_eq!(b.position_from_tail(SegmentId(99_999)), Some(1));
        assert_eq!(b.position_from_tail(SegmentId(99_936)), Some(64));
        assert_eq!(b.epochs(), 1, "100k arrivals cross one 2^16 epoch");
    }

    /// The wraparound regression test the u16 counter makes cheap: stream
    /// far enough past 2¹⁶ arrivals that the counter renormalises several
    /// times, checking positions stay exact at every point around each
    /// epoch boundary (with the old wrapping-subtraction scheme this is
    /// where a live window straddling the wrap went wrong — and at u32 the
    /// equivalent test would need 4 × 10⁹ inserts).
    #[test]
    fn positions_stay_exact_across_epoch_wraps() {
        let mut b = FifoBuffer::new(600);
        let total = 3 * (EPOCH_LIMIT as u64) + 1234;
        for i in 0..total {
            b.insert(SegmentId(i));
            // Probe right as each epoch boundary approaches and passes: the
            // whole live window must stay a permutation of 1..=len.
            let near_boundary = (i + 2) % (EPOCH_LIMIT as u64) < 4;
            if near_boundary || i == total - 1 {
                let len = b.len() as u64;
                for back in [0u64, 1, len / 2, len - 1] {
                    if back >= len {
                        continue;
                    }
                    let id = SegmentId(i - back);
                    assert_eq!(
                        b.position_from_tail(id),
                        Some(back as usize + 1),
                        "wrong position for {id} after {i} arrivals"
                    );
                }
            }
        }
        assert_eq!(b.epochs(), 3, "three epoch renormalisations expected");
        assert_eq!(b.len(), 600);
    }

    /// Cast-audit regression: reaching the epoch boundary with an *empty*
    /// buffer makes the renormalisation delta `EPOCH_LIMIT` itself — one
    /// past `u16::MAX`.  The `live > 0` guard keeps that value away from
    /// the checked `u16` narrowing (the old bare `as u16` would have
    /// silently wrapped it to 0 had the guard ever been dropped).
    #[test]
    fn empty_buffer_epoch_renormalisation_avoids_the_u16_edge() {
        let mut b = FifoBuffer::new(1);
        // Capacity-1 buffer: every insert evicts its predecessor.
        for i in 0..EPOCH_LIMIT as u64 {
            b.insert(SegmentId(i));
        }
        assert_eq!(b.epochs(), 0);
        assert_eq!(b.shrink_front(1), 1);
        assert!(b.is_empty(), "buffer drained at the epoch boundary");
        // This insert renormalises with live == 0 and delta == EPOCH_LIMIT.
        b.insert(SegmentId(EPOCH_LIMIT as u64));
        assert_eq!(b.epochs(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.position_from_tail(SegmentId(EPOCH_LIMIT as u64)), Some(1));
        // The fresh epoch keeps counting positions exactly.
        for i in 1..100u64 {
            let id = SegmentId(EPOCH_LIMIT as u64 + i);
            b.insert(id);
            assert_eq!(b.position_from_tail(id), Some(1));
        }
    }

    /// Satellite audit: window growth zero-fills `seqs` for newly covered
    /// ids, and renormalisation rewrites live entries to start at 0 — so a
    /// *stale* zero in `seqs` (an id that was covered, evicted, then the
    /// region re-covered) coexists with a *live* zero.  The two can never be
    /// confused because every read of `seqs` is gated on the availability
    /// bit; this test pins that down across an uncover/recover cycle right
    /// after an epoch bump.
    #[test]
    fn stale_zero_seqs_never_collide_with_live_seqs() {
        let mut b = FifoBuffer::new(4);
        // Drive the counter to the epoch boundary exactly.
        for i in 0..EPOCH_LIMIT as u64 {
            b.insert(SegmentId(i));
        }
        assert_eq!(b.epochs(), 0);
        // The next insert renormalises: live seqs become 0..4, so the oldest
        // live entry now stores seq 0.
        b.insert(SegmentId(EPOCH_LIMIT as u64));
        assert_eq!(b.epochs(), 1);
        let oldest = SegmentId(EPOCH_LIMIT as u64 - 3);
        assert_eq!(b.position_from_tail(oldest), Some(4));

        // Rebase the window downwards onto a long-uncovered region whose
        // fresh seq entries are zero-filled: ids there are NOT held, so the
        // stale/fresh zeros must read as absent, not as position len().
        let low = SegmentId(EPOCH_LIMIT as u64 - 10_000);
        b.insert(low); // evicts the oldest, re-covers the low region
        assert_eq!(b.position_from_tail(low), Some(1));
        for probe in 1..64u64 {
            let id = SegmentId(low.value() + probe);
            assert!(!b.contains(id));
            assert_eq!(
                b.position_from_tail(id),
                None,
                "zero-filled seq for uncovered id {id} leaked a position"
            );
        }
        // The surviving live entries still report exact positions.
        assert_eq!(b.position_from_tail(SegmentId(EPOCH_LIMIT as u64)), Some(2));
    }

    #[test]
    fn shrink_front_evicts_oldest_and_keeps_positions() {
        let mut b = FifoBuffer::new(8);
        for i in 0..8u64 {
            b.insert(SegmentId(i));
        }
        assert_eq!(b.shrink_front(3), 3);
        assert_eq!(b.len(), 5);
        assert!(!b.contains(SegmentId(2)));
        assert!(b.contains(SegmentId(3)));
        // Tail distances are unchanged by dropping the head.
        assert_eq!(b.position_from_tail(SegmentId(7)), Some(1));
        assert_eq!(b.position_from_tail(SegmentId(3)), Some(5));
        assert_eq!(b.arrivals().collect::<Vec<_>>(), ids(&[3, 4, 5, 6, 7]));
        // Over-shrinking clamps; the buffer stays usable afterwards.
        assert_eq!(b.shrink_front(100), 5);
        assert!(b.is_empty());
        assert_eq!(b.max_id(), None);
        b.insert(SegmentId(50));
        assert_eq!(b.position_from_tail(SegmentId(50)), Some(1));
    }

    #[test]
    fn availability_words_mirror_contents() {
        let mut b = FifoBuffer::new(600);
        for &i in &[3u64, 64, 65, 700, 1000] {
            b.insert(SegmentId(i));
        }
        for aligned in (0..1100u64).step_by(64) {
            let word = b.availability_word(aligned);
            for bit in 0..64u64 {
                assert_eq!(
                    (word >> bit) & 1 == 1,
                    b.contains(SegmentId(aligned + bit)),
                    "aligned {aligned} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn out_of_order_low_arrival_rebases_the_window() {
        let mut b = FifoBuffer::new(10);
        b.insert(SegmentId(1_000));
        b.insert(SegmentId(10));
        assert!(b.contains(SegmentId(10)));
        assert!(b.contains(SegmentId(1_000)));
        assert_eq!(b.max_id(), Some(SegmentId(1_000)));
        assert_eq!(b.position_from_tail(SegmentId(10)), Some(1));
        assert_eq!(b.position_from_tail(SegmentId(1_000)), Some(2));
    }

    #[test]
    fn id_and_arrival_iterators() {
        let mut b = FifoBuffer::new(5);
        for i in [9u64, 3, 7] {
            b.insert(SegmentId(i));
        }
        assert_eq!(b.ids().collect::<Vec<_>>(), ids(&[3, 7, 9]));
        assert_eq!(b.arrivals().collect::<Vec<_>>(), ids(&[9, 3, 7]));
    }

    #[test]
    fn equality_ignores_window_anchoring() {
        // Same segments in the same arrival order through different window
        // histories (one buffer slid, the other did not): still equal.
        let mut slid = FifoBuffer::new(4);
        for i in 0..1_000u64 {
            slid.insert(SegmentId(i));
        }
        let mut fresh = FifoBuffer::new(4);
        for i in 996..1_000u64 {
            fresh.insert(SegmentId(i));
        }
        assert_eq!(slid, fresh);
        fresh.insert(SegmentId(1_000));
        assert_ne!(slid, fresh);
    }

    #[test]
    fn mem_breakdown_reports_reserved_capacities() {
        let mut b = FifoBuffer::new(64);
        for i in 0..1_000u64 {
            b.insert(SegmentId(i));
        }
        let mem = b.mem_breakdown();
        assert_eq!(mem.ring_bytes, b.arrivals.capacity() * 4);
        assert_eq!(mem.window_bytes, b.words.capacity() * 8);
        assert_eq!(mem.seq_bytes, b.seqs.capacity() * 2);
        assert_eq!(mem.heap_total(), b.heap_bytes());
        assert!(b.footprint_bytes() > b.heap_bytes());
        // The compact layout halves the ring and seq components, so the
        // legacy baseline must cost strictly more.
        assert!(mem.legacy_heap_total() > mem.heap_total());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = FifoBuffer::new(0);
    }

    #[test]
    #[should_panic(expected = "u16 sequence epoch")]
    fn epoch_sized_capacity_panics() {
        let _ = FifoBuffer::new(1 << 16);
    }

    #[test]
    #[should_panic(expected = "stream-local segment ids")]
    fn absurd_id_span_panics_instead_of_allocating() {
        let mut b = FifoBuffer::new(4);
        b.insert(SegmentId(0));
        b.insert(SegmentId(1 << 40));
    }

    #[test]
    #[should_panic(expected = "stream-local segment ids")]
    fn absurd_downward_span_panics_too() {
        let mut b = FifoBuffer::new(4);
        b.insert(SegmentId(1 << 40));
        b.insert(SegmentId(0));
    }

    /// Naive reference model of the FIFO semantics: a plain arrival list,
    /// no bitmap, no sequence numbers, no window.  The compact layout must
    /// be observationally identical to this.
    struct NaiveFifo {
        capacity: usize,
        arrivals: Vec<u64>,
    }

    impl NaiveFifo {
        fn new(capacity: usize) -> Self {
            NaiveFifo {
                capacity,
                arrivals: Vec::new(),
            }
        }

        fn insert(&mut self, id: u64) -> Option<u64> {
            if self.arrivals.contains(&id) {
                return None;
            }
            let evicted = if self.arrivals.len() == self.capacity {
                Some(self.arrivals.remove(0))
            } else {
                None
            };
            self.arrivals.push(id);
            evicted
        }

        fn shrink_front(&mut self, n: usize) -> usize {
            let count = n.min(self.arrivals.len());
            self.arrivals.drain(..count);
            count
        }

        fn position_from_tail(&self, id: u64) -> Option<usize> {
            self.arrivals
                .iter()
                .position(|&a| a == id)
                .map(|i| self.arrivals.len() - i)
        }

        fn ids(&self) -> Vec<SegmentId> {
            let mut sorted = self.arrivals.clone();
            sorted.sort_unstable();
            sorted.into_iter().map(SegmentId).collect()
        }

        fn arrivals(&self) -> Vec<SegmentId> {
            self.arrivals.iter().copied().map(SegmentId).collect()
        }
    }

    /// One step of the model-equivalence property, encoded as `(tag, value)`:
    /// tags 0..8 insert (ids drawn from a sliding base so the window
    /// slides, shrinks and regrows), tag 8 shrinks the front.
    #[derive(Debug, Clone)]
    enum Op {
        Insert(u64),
        ShrinkFront(usize),
    }

    fn decode_op((tag, value): (u8, u64)) -> Op {
        if tag < 8 {
            Op::Insert(value)
        } else {
            Op::ShrinkFront((value % 12) as usize)
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        /// The buffer never exceeds its capacity, membership matches the FIFO
        /// content, and positions are a permutation of 1..=len.
        #[test]
        fn prop_fifo_invariants(
            cap in 1usize..40,
            inserts in proptest::collection::vec(0u64..200, 0..300),
        ) {
            let mut b = FifoBuffer::new(cap);
            for i in inserts {
                b.insert(SegmentId(i));
            }
            proptest::prop_assert!(b.len() <= cap);
            proptest::prop_assert_eq!(b.len(), b.arrivals().count());
            proptest::prop_assert_eq!(b.len(), b.ids().count());
            for s in b.arrivals() {
                proptest::prop_assert!(b.contains(s));
            }
            let mut positions: Vec<usize> = b
                .arrivals()
                .map(|s| b.position_from_tail(s).unwrap())
                .collect();
            positions.sort_unstable();
            let expected: Vec<usize> = (1..=b.len()).collect();
            proptest::prop_assert_eq!(positions, expected);
            // The cached max matches a scan, ids are ascending, and counts
            // agree with membership.
            proptest::prop_assert_eq!(b.max_id(), b.ids().max());
            let sorted: Vec<SegmentId> = b.ids().collect();
            proptest::prop_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
            proptest::prop_assert_eq!(
                b.count_in_range(SegmentId(0), SegmentId(500)),
                b.len()
            );
        }

        /// The compact layout (u32 ring offsets, u16 epoch seqs, sliding
        /// window) is observationally identical to the naive model under
        /// random insert / slide / shrink_front / regrow sequences.
        #[test]
        fn prop_compact_layout_matches_naive_model(
            cap in 1usize..24,
            raw_ops in proptest::collection::vec((0u8..9, 0u64..4_000), 1..250),
            slide in 0u64..100_000,
        ) {
            let mut compact = FifoBuffer::new(cap);
            let mut naive = NaiveFifo::new(cap);
            for (step, raw) in raw_ops.iter().enumerate() {
                match decode_op(*raw) {
                    Op::Insert(id) => {
                        // Drift the id base upwards over the run so the
                        // window must slide and compact; the raw low ids
                        // still land below it, forcing downward regrows.
                        let id = id + slide * (step as u64 % 3) / 2;
                        let evicted = compact.insert(SegmentId(id));
                        let expected = naive.insert(id).map(SegmentId);
                        proptest::prop_assert_eq!(evicted, expected);
                    }
                    Op::ShrinkFront(n) => {
                        proptest::prop_assert_eq!(compact.shrink_front(n), naive.shrink_front(n));
                    }
                }
                proptest::prop_assert_eq!(compact.len(), naive.arrivals.len());
            }
            // Observable state must agree exactly: id set, arrival order,
            // and every position.
            proptest::prop_assert_eq!(compact.ids().collect::<Vec<_>>(), naive.ids());
            proptest::prop_assert_eq!(compact.arrivals().collect::<Vec<_>>(), naive.arrivals());
            let probe: Vec<SegmentId> = naive
                .arrivals()
                .into_iter()
                .chain((0..50).map(|i| SegmentId(i * 97)))
                .collect();
            let expected: Vec<Option<usize>> = probe
                .iter()
                .map(|&s| naive.position_from_tail(s.value()))
                .collect();
            proptest::prop_assert_eq!(compact.positions_of(&probe), expected);
            proptest::prop_assert_eq!(compact.max_id(), naive.ids().last().copied());
        }
    }
}
