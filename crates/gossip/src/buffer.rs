//! Per-node FIFO segment buffer.
//!
//! Each node holds a buffer of `B` segments (600 in the paper).  The
//! replacement strategy is FIFO: when a new segment arrives and the buffer is
//! full the *oldest arrival* is evicted.  The paper's rarity computation
//! (eq. 8) needs, for every candidate segment, its **position** in each
//! supplier's buffer measured as the distance from the buffer tail (the
//! insertion end): a freshly inserted segment has position 1, the next
//! segment to be evicted has position `len()`.
//!
//! # Hot-path representation
//!
//! The scheduling sweep probes buffers millions of times per simulated
//! second, so membership and positions must be O(1) and steady-state
//! operation must neither allocate nor rebuild anything per period:
//!
//! * `arrivals` is a ring of at most `capacity` ids (allocated once);
//! * availability lives in a **windowed bitmap** (`base` + `words`),
//!   maintained incrementally on insert/evict.  The window slides with the
//!   stream: when the head outgrows the words, dead all-zero leading words
//!   are compacted away in place, so steady-state inserts never allocate.
//!   This bitmap doubles as each peer's advertised buffer map — neighbours
//!   intersect its words directly instead of probing ids one by one;
//! * `seqs` stores, for every covered id, its **arrival sequence number**
//!   (mod 2³²).  Because eviction always removes the oldest arrival and the
//!   live sequence numbers form a contiguous range, `position_from_tail` is
//!   a single subtraction: `next_seq − seq`;
//! * the maximum held id is cached; it only needs recomputing when the
//!   evicted segment *is* the maximum (an out-of-order tail, rare in
//!   practice), which costs one reverse word scan and still no allocation.
//!
//! # Memory model
//!
//! The window costs O(span) bytes, where span = `max held id − min held id`
//! (not O(capacity) like a tree/map index): ~9 bytes per id of span.  This
//! is the right trade for streaming workloads, where FIFO eviction keeps
//! the span within a few multiples of the buffer capacity.  Ids are **not**
//! required to be contiguous, but they must be stream-local: inserting two
//! ids further than [`MAX_SPAN_IDS`] apart panics with a diagnostic instead
//! of silently attempting a giant allocation.

use crate::segment::SegmentId;
use std::collections::VecDeque;

/// Extra zero words appended on growth so the compaction/extension cycle
/// amortises instead of running every few inserts.
const GROWTH_SLACK_WORDS: usize = 4;

/// Largest allowed distance between the smallest and largest held id.
///
/// The availability window costs O(span) memory (see the module docs); a
/// span beyond this bound (4M ids ≈ 38 MB of window) almost certainly means
/// the buffer is being fed non-stream ids, so we fail fast with a clear
/// message rather than letting the allocator abort.
pub const MAX_SPAN_IDS: u64 = 1 << 22;

/// FIFO buffer of segment ids with O(1) membership and position queries and
/// word-level availability access.
#[derive(Debug, Clone, Default)]
pub struct FifoBuffer {
    capacity: usize,
    /// Arrival order, oldest at the front.
    arrivals: VecDeque<SegmentId>,
    /// First id covered by the bitmap; always a multiple of 64.
    base: u64,
    /// Availability bits over `[base, base + 64·words.len())`.
    words: Vec<u64>,
    /// Arrival sequence number per covered id (valid only where the
    /// availability bit is set).
    seqs: Vec<u32>,
    /// Sequence number the next insert will receive.
    next_seq: u32,
    /// Cached greatest held id.
    max: Option<SegmentId>,
}

impl PartialEq for FifoBuffer {
    fn eq(&self, other: &Self) -> bool {
        // Two buffers are equal when they would behave identically: same
        // capacity and same segments in the same arrival order.  The bitmap
        // window placement is an implementation detail.
        self.capacity == other.capacity && self.arrivals == other.arrivals
    }
}

impl FifoBuffer {
    /// Creates an empty buffer that can hold `capacity` segments.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        FifoBuffer {
            capacity,
            arrivals: VecDeque::with_capacity(capacity),
            base: 0,
            words: Vec::new(),
            seqs: Vec::new(),
            next_seq: 0,
            max: None,
        }
    }

    /// Maximum number of segments the buffer can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of segments currently held.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when the buffer holds no segments.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    fn offset_of(&self, id: u64) -> Option<usize> {
        if id < self.base {
            return None;
        }
        let offset = (id - self.base) as usize;
        if offset < self.words.len() * 64 {
            Some(offset)
        } else {
            None
        }
    }

    /// True when `segment` is currently held.
    pub fn contains(&self, segment: SegmentId) -> bool {
        match self.offset_of(segment.value()) {
            Some(offset) => (self.words[offset / 64] >> (offset % 64)) & 1 == 1,
            None => false,
        }
    }

    /// The 64 availability bits covering `[aligned, aligned + 63]`
    /// (`aligned` must be a multiple of 64; ids outside the window read 0).
    ///
    /// This is the peer's advertised buffer map, maintained incrementally:
    /// neighbours intersect these words with their own "needed" windows to
    /// enumerate candidate segments without per-id probing.
    pub fn availability_word(&self, aligned: u64) -> u64 {
        debug_assert_eq!(aligned % 64, 0);
        if aligned < self.base {
            return 0;
        }
        self.words
            .get(((aligned - self.base) / 64) as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Drops dead (all-zero) leading words, sliding the window base up.
    fn compact_leading_zeros(&mut self) {
        let zeros = self.words.iter().take_while(|&&w| w == 0).count();
        if zeros == 0 || zeros == self.words.len() {
            return;
        }
        let len = self.words.len();
        self.words.copy_within(zeros..len, 0);
        self.words.truncate(len - zeros);
        self.seqs.copy_within(zeros * 64..len * 64, 0);
        self.seqs.truncate((len - zeros) * 64);
        self.base += (zeros as u64) * 64;
    }

    /// Grows/slides the window so `id` is covered.
    ///
    /// # Panics
    /// Panics when covering `id` would stretch the window beyond
    /// [`MAX_SPAN_IDS`].
    fn ensure_covered(&mut self, id: u64) {
        if self.words.is_empty() {
            self.base = id & !63;
            self.words.resize(1 + GROWTH_SLACK_WORDS, 0);
            self.seqs.resize((1 + GROWTH_SLACK_WORDS) * 64, 0);
            return;
        }
        if id < self.base {
            // Out-of-order arrival below the window: prepend words.
            assert!(
                self.base + self.words.len() as u64 * 64 - (id & !63) <= MAX_SPAN_IDS,
                "FifoBuffer id span would exceed {MAX_SPAN_IDS} ids (inserting {id} below window base {}); \
                 this buffer is designed for stream-local segment ids",
                self.base
            );
            let new_base = id & !63;
            let shift = ((self.base - new_base) / 64) as usize;
            let old_len = self.words.len();
            self.words.resize(old_len + shift, 0);
            self.words.copy_within(0..old_len, shift);
            self.words[..shift].fill(0);
            self.seqs.resize((old_len + shift) * 64, 0);
            self.seqs.copy_within(0..old_len * 64, shift * 64);
            self.seqs[..shift * 64].fill(0);
            self.base = new_base;
            return;
        }
        let needed = ((id - self.base) / 64) as usize + 1;
        if needed <= self.words.len() {
            return;
        }
        // Reclaim dead leading words before growing; in steady state the
        // window slides with the stream and this avoids any allocation.
        self.compact_leading_zeros();
        let needed = ((id - self.base) / 64) as usize + 1;
        if needed > self.words.len() {
            assert!(
                (needed as u64) * 64 <= MAX_SPAN_IDS,
                "FifoBuffer id span would exceed {MAX_SPAN_IDS} ids (inserting {id} with window base {}); \
                 this buffer is designed for stream-local segment ids",
                self.base
            );
            self.words.resize(needed + GROWTH_SLACK_WORDS, 0);
            self.seqs.resize((needed + GROWTH_SLACK_WORDS) * 64, 0);
        }
    }

    fn recompute_max(&mut self) {
        self.max = None;
        for (i, &word) in self.words.iter().enumerate().rev() {
            if word != 0 {
                let top = 63 - word.leading_zeros() as u64;
                self.max = Some(SegmentId(self.base + (i as u64) * 64 + top));
                return;
            }
        }
    }

    /// Inserts a segment.  Returns the evicted segment if the buffer was full,
    /// or `None`.  Re-inserting an already-held segment is a no-op.
    pub fn insert(&mut self, segment: SegmentId) -> Option<SegmentId> {
        if self.contains(segment) {
            return None;
        }
        let evicted = if self.arrivals.len() == self.capacity {
            let old = self.arrivals.pop_front().expect("non-empty when full");
            let offset = self.offset_of(old.value()).expect("held ids are covered");
            self.words[offset / 64] &= !(1 << (offset % 64));
            if self.max == Some(old) {
                self.recompute_max();
            }
            Some(old)
        } else {
            None
        };
        self.ensure_covered(segment.value());
        let offset = (segment.value() - self.base) as usize;
        self.words[offset / 64] |= 1 << (offset % 64);
        self.seqs[offset] = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.arrivals.push_back(segment);
        if self.max.is_none_or(|m| segment > m) {
            self.max = Some(segment);
        }
        evicted
    }

    /// Position of a segment measured from the tail (insertion end): the
    /// newest segment has position 1, the oldest has position `len()`.
    /// Returns `None` when the segment is not held.
    ///
    /// This is the `p_ij` of Table 2: `p_ij / B` approximates the probability
    /// that the segment will soon be replaced in this buffer.
    pub fn position_from_tail(&self, segment: SegmentId) -> Option<usize> {
        let offset = self.offset_of(segment.value())?;
        if (self.words[offset / 64] >> (offset % 64)) & 1 == 0 {
            return None;
        }
        Some(self.next_seq.wrapping_sub(self.seqs[offset]) as usize)
    }

    /// Positions of many segments at once.
    /// The result aligns with `segments`; `None` marks absent segments.
    pub fn positions_of(&self, segments: &[SegmentId]) -> Vec<Option<usize>> {
        segments
            .iter()
            .map(|&s| self.position_from_tail(s))
            .collect()
    }

    /// Iterator over held segment ids in ascending id order (no allocation:
    /// walks the availability words).
    pub fn ids(&self) -> impl Iterator<Item = SegmentId> + '_ {
        let base = self.base;
        self.words
            .iter()
            .enumerate()
            .flat_map(move |(i, &word)| BitIter {
                word,
                base: base + (i as u64) * 64,
            })
    }

    /// Iterator over held segments in arrival order (oldest first).
    pub fn arrivals(&self) -> impl Iterator<Item = SegmentId> + '_ {
        self.arrivals.iter().copied()
    }

    /// Number of held segments with ids in `[from, to]` (inclusive):
    /// a popcount over the covered words.
    pub fn count_in_range(&self, from: SegmentId, to: SegmentId) -> usize {
        if to < from || self.words.is_empty() {
            return 0;
        }
        let lo = from.value().max(self.base);
        let hi = to.value().min(self.base + self.words.len() as u64 * 64 - 1);
        if hi < lo {
            return 0;
        }
        let mut count = 0usize;
        let mut word_base = lo & !63;
        while word_base <= hi {
            let mut word = self.availability_word(word_base);
            if word_base < lo {
                word &= u64::MAX << (lo - word_base);
            }
            if word_base + 63 > hi {
                word &= u64::MAX >> (word_base + 63 - hi);
            }
            count += word.count_ones() as usize;
            word_base += 64;
        }
        count
    }

    /// Ids in `[from, to]` (inclusive) that are **not** held.
    pub fn missing_in_range(&self, from: SegmentId, to: SegmentId) -> Vec<SegmentId> {
        if to < from {
            return Vec::new();
        }
        (from.value()..=to.value())
            .map(SegmentId)
            .filter(|&id| !self.contains(id))
            .collect()
    }

    /// Length of the run of consecutively held segments starting at `from`.
    pub fn contiguous_run_from(&self, from: SegmentId) -> usize {
        let mut count = 0;
        let mut id = from;
        while self.contains(id) {
            count += 1;
            id = id.next();
        }
        count
    }

    /// Greatest held id, if any (O(1), cached).
    pub fn max_id(&self) -> Option<SegmentId> {
        self.max
    }
}

/// Iterator over the set bits of one availability word.
struct BitIter {
    word: u64,
    base: u64,
}

impl Iterator for BitIter {
    type Item = SegmentId;
    fn next(&mut self) -> Option<SegmentId> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as u64;
        self.word &= self.word - 1;
        Some(SegmentId(self.base + bit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<SegmentId> {
        v.iter().map(|&i| SegmentId(i)).collect()
    }

    #[test]
    fn insert_contains_and_len() {
        let mut b = FifoBuffer::new(3);
        assert!(b.is_empty());
        assert_eq!(b.insert(SegmentId(5)), None);
        assert_eq!(b.insert(SegmentId(7)), None);
        assert!(b.contains(SegmentId(5)));
        assert!(!b.contains(SegmentId(6)));
        assert_eq!(b.len(), 2);
        assert_eq!(b.capacity(), 3);
    }

    #[test]
    fn fifo_eviction_order() {
        let mut b = FifoBuffer::new(3);
        b.insert(SegmentId(1));
        b.insert(SegmentId(2));
        b.insert(SegmentId(3));
        // Inserting a fourth evicts the oldest arrival (1).
        assert_eq!(b.insert(SegmentId(4)), Some(SegmentId(1)));
        assert!(!b.contains(SegmentId(1)));
        assert_eq!(b.len(), 3);
        // Out-of-order arrival: 0 arrives late, evicts 2 (the now-oldest).
        assert_eq!(b.insert(SegmentId(0)), Some(SegmentId(2)));
        assert!(b.contains(SegmentId(0)));
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut b = FifoBuffer::new(2);
        b.insert(SegmentId(1));
        assert_eq!(b.insert(SegmentId(1)), None);
        assert_eq!(b.len(), 1);
        b.insert(SegmentId(2));
        // 1 is still oldest despite the duplicate insert attempt.
        assert_eq!(b.insert(SegmentId(3)), Some(SegmentId(1)));
    }

    #[test]
    fn positions_measure_distance_from_tail() {
        let mut b = FifoBuffer::new(10);
        for i in 0..5 {
            b.insert(SegmentId(i));
        }
        // Newest (4) has position 1, oldest (0) has position 5.
        assert_eq!(b.position_from_tail(SegmentId(4)), Some(1));
        assert_eq!(b.position_from_tail(SegmentId(0)), Some(5));
        assert_eq!(b.position_from_tail(SegmentId(9)), None);

        let positions = b.positions_of(&ids(&[4, 0, 2, 99]));
        assert_eq!(positions, vec![Some(1), Some(5), Some(3), None]);
    }

    #[test]
    fn positions_survive_eviction() {
        let mut b = FifoBuffer::new(4);
        for i in 0..9 {
            b.insert(SegmentId(i));
        }
        // Held: 5, 6, 7, 8 (oldest→newest).
        assert_eq!(b.position_from_tail(SegmentId(8)), Some(1));
        assert_eq!(b.position_from_tail(SegmentId(5)), Some(4));
        assert_eq!(b.position_from_tail(SegmentId(4)), None);
    }

    #[test]
    fn positions_of_empty_query() {
        let b = FifoBuffer::new(4);
        assert!(b.positions_of(&[]).is_empty());
        assert_eq!(b.positions_of(&ids(&[1])), vec![None]);
    }

    #[test]
    fn range_queries() {
        let mut b = FifoBuffer::new(10);
        for i in [1u64, 2, 3, 6, 7] {
            b.insert(SegmentId(i));
        }
        assert_eq!(b.count_in_range(SegmentId(1), SegmentId(7)), 5);
        assert_eq!(b.count_in_range(SegmentId(4), SegmentId(5)), 0);
        assert_eq!(b.count_in_range(SegmentId(7), SegmentId(1)), 0);
        assert_eq!(b.count_in_range(SegmentId(0), SegmentId(1_000_000)), 5);
        assert_eq!(b.missing_in_range(SegmentId(1), SegmentId(7)), ids(&[4, 5]));
        assert_eq!(b.missing_in_range(SegmentId(8), SegmentId(7)), ids(&[]));
        assert_eq!(b.contiguous_run_from(SegmentId(1)), 3);
        assert_eq!(b.contiguous_run_from(SegmentId(6)), 2);
        assert_eq!(b.contiguous_run_from(SegmentId(4)), 0);
        assert_eq!(b.max_id(), Some(SegmentId(7)));
        assert_eq!(FifoBuffer::new(3).max_id(), None);
    }

    #[test]
    fn max_id_tracks_eviction_of_the_maximum() {
        let mut b = FifoBuffer::new(3);
        b.insert(SegmentId(9)); // max arrives first (oldest)
        b.insert(SegmentId(3));
        b.insert(SegmentId(5));
        assert_eq!(b.max_id(), Some(SegmentId(9)));
        // Evicting 9 (the oldest arrival AND the max) forces a recompute.
        b.insert(SegmentId(4));
        assert_eq!(b.max_id(), Some(SegmentId(5)));
        assert!(!b.contains(SegmentId(9)));
    }

    #[test]
    fn window_slides_with_the_stream() {
        // Stream 100k ids through a small buffer: the bitmap window must
        // track the live span instead of growing with the id space.
        let mut b = FifoBuffer::new(64);
        for i in 0..100_000u64 {
            b.insert(SegmentId(i));
        }
        assert_eq!(b.len(), 64);
        assert!(b.contains(SegmentId(99_999)));
        assert!(!b.contains(SegmentId(99_935)));
        assert_eq!(b.max_id(), Some(SegmentId(99_999)));
        assert!(
            b.words.len() <= 4 + 2 * GROWTH_SLACK_WORDS,
            "window kept {} words for a 64-id span",
            b.words.len()
        );
        // Positions still exact after 100k slides.
        assert_eq!(b.position_from_tail(SegmentId(99_999)), Some(1));
        assert_eq!(b.position_from_tail(SegmentId(99_936)), Some(64));
    }

    #[test]
    fn availability_words_mirror_contents() {
        let mut b = FifoBuffer::new(600);
        for &i in &[3u64, 64, 65, 700, 1000] {
            b.insert(SegmentId(i));
        }
        for aligned in (0..1100u64).step_by(64) {
            let word = b.availability_word(aligned);
            for bit in 0..64u64 {
                assert_eq!(
                    (word >> bit) & 1 == 1,
                    b.contains(SegmentId(aligned + bit)),
                    "aligned {aligned} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn out_of_order_low_arrival_rebases_the_window() {
        let mut b = FifoBuffer::new(10);
        b.insert(SegmentId(1_000));
        b.insert(SegmentId(10));
        assert!(b.contains(SegmentId(10)));
        assert!(b.contains(SegmentId(1_000)));
        assert_eq!(b.max_id(), Some(SegmentId(1_000)));
        assert_eq!(b.position_from_tail(SegmentId(10)), Some(1));
        assert_eq!(b.position_from_tail(SegmentId(1_000)), Some(2));
    }

    #[test]
    fn id_and_arrival_iterators() {
        let mut b = FifoBuffer::new(5);
        for i in [9u64, 3, 7] {
            b.insert(SegmentId(i));
        }
        assert_eq!(b.ids().collect::<Vec<_>>(), ids(&[3, 7, 9]));
        assert_eq!(b.arrivals().collect::<Vec<_>>(), ids(&[9, 3, 7]));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = FifoBuffer::new(0);
    }

    #[test]
    #[should_panic(expected = "stream-local segment ids")]
    fn absurd_id_span_panics_instead_of_allocating() {
        let mut b = FifoBuffer::new(4);
        b.insert(SegmentId(0));
        b.insert(SegmentId(1 << 40));
    }

    #[test]
    #[should_panic(expected = "stream-local segment ids")]
    fn absurd_downward_span_panics_too() {
        let mut b = FifoBuffer::new(4);
        b.insert(SegmentId(1 << 40));
        b.insert(SegmentId(0));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        /// The buffer never exceeds its capacity, membership matches the FIFO
        /// content, and positions are a permutation of 1..=len.
        #[test]
        fn prop_fifo_invariants(
            cap in 1usize..40,
            inserts in proptest::collection::vec(0u64..200, 0..300),
        ) {
            let mut b = FifoBuffer::new(cap);
            for i in inserts {
                b.insert(SegmentId(i));
            }
            proptest::prop_assert!(b.len() <= cap);
            proptest::prop_assert_eq!(b.len(), b.arrivals().count());
            proptest::prop_assert_eq!(b.len(), b.ids().count());
            for s in b.arrivals() {
                proptest::prop_assert!(b.contains(s));
            }
            let mut positions: Vec<usize> = b
                .arrivals()
                .map(|s| b.position_from_tail(s).unwrap())
                .collect();
            positions.sort_unstable();
            let expected: Vec<usize> = (1..=b.len()).collect();
            proptest::prop_assert_eq!(positions, expected);
            // The cached max matches a scan, ids are ascending, and counts
            // agree with membership.
            proptest::prop_assert_eq!(b.max_id(), b.ids().max());
            let sorted: Vec<SegmentId> = b.ids().collect();
            proptest::prop_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
            proptest::prop_assert_eq!(
                b.count_in_range(SegmentId(0), SegmentId(500)),
                b.len()
            );
        }
    }
}
