//! The complete period-synchronous streaming system.
//!
//! [`StreamingSystem`] wires the overlay, the per-node protocol state, the
//! pluggable scheduler and the transfer model into the simulation loop the
//! paper's evaluation runs:
//!
//! 1. (dynamic scenarios) apply churn and repair neighbour sets,
//! 2. the live source emits `p·τ` new segments,
//! 3. every node exchanges buffer maps with its neighbours (control traffic),
//!    discovers new sessions, builds its scheduling context and asks its
//!    scheduler which segments to request,
//! 4. requests are resolved against inbound/outbound budgets and the granted
//!    segments are delivered (data traffic),
//! 5. every node advances playback; switch milestones and the per-period
//!    ratio tracks are recorded.

use crate::config::GossipConfig;
use crate::membership::MembershipMaintainer;
use crate::peer::{NeighborInfo, PeerNode};
use crate::scheduler::SegmentScheduler;
use crate::segment::{SegmentId, SessionDirectory, SourceId};
use crate::stats::{RatioSample, SwitchRecord, TrafficCounters};
use crate::transfer::{RequestBatch, TransferResolver};
use fss_overlay::{ChurnModel, Overlay, PeerId};
use std::collections::HashMap;

/// Snapshot of everything an experiment needs after (or while) running the
/// system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemReport {
    /// Name of the scheduling policy that produced this run.
    pub scheduler: &'static str,
    /// Per-peer switch records (indexed by [`PeerId`]).
    pub switch_records: Vec<SwitchRecord>,
    /// Per-period ratio samples recorded since the switch.
    pub ratio_samples: Vec<RatioSample>,
    /// Traffic accumulated over the whole run.
    pub traffic_total: TrafficCounters,
    /// Traffic accumulated between the switch and its completion.
    pub traffic_switch_window: TrafficCounters,
    /// Number of scheduling periods executed.
    pub periods: u64,
    /// Seconds (since the switch) at which the last countable node completed
    /// the switch, if every countable node did.
    pub switch_completed_secs: Option<f64>,
}

/// The period-synchronous gossip streaming simulator.
pub struct StreamingSystem {
    config: GossipConfig,
    overlay: Overlay,
    peers: Vec<PeerNode>,
    directory: SessionDirectory,
    scheduler: Box<dyn SegmentScheduler>,
    resolver: TransferResolver,
    churn: Option<ChurnModel>,
    membership: MembershipMaintainer,

    sources: Vec<PeerId>,
    /// Next segment id the live source will emit.
    next_emit: SegmentId,
    emit_credit: f64,

    period_index: u64,
    traffic_total: TrafficCounters,
    traffic_switch_window: TrafficCounters,

    /// Set when the source switch is triggered.
    switch_secs: Option<f64>,
    /// The session pair involved in the switch (old, new).
    switch_sessions: Option<(SourceId, SourceId)>,
    switch_records: Vec<SwitchRecord>,
    ratio_samples: Vec<RatioSample>,
    switch_completed_secs: Option<f64>,
}

impl StreamingSystem {
    /// Creates a system over `overlay` with the given scheduling policy.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(
        overlay: Overlay,
        config: GossipConfig,
        scheduler: Box<dyn SegmentScheduler>,
    ) -> Self {
        config.validate().expect("valid gossip configuration");
        let capacity = overlay.graph().capacity();
        let peers: Vec<PeerNode> = (0..capacity as PeerId)
            .map(|id| PeerNode::new(id, &config, SegmentId(0)))
            .collect();
        let min_degree = overlay.config().min_degree;
        let membership_seed = overlay.config().seed ^ 0x4d45_4d42;
        StreamingSystem {
            config,
            overlay,
            peers,
            directory: SessionDirectory::new(),
            scheduler,
            resolver: TransferResolver::new(),
            churn: None,
            membership: MembershipMaintainer::new(min_degree, membership_seed),
            sources: Vec::new(),
            next_emit: SegmentId(0),
            emit_credit: 0.0,
            period_index: 0,
            traffic_total: TrafficCounters::new(),
            traffic_switch_window: TrafficCounters::new(),
            switch_secs: None,
            switch_sessions: None,
            switch_records: vec![SwitchRecord::default(); capacity],
            ratio_samples: Vec::new(),
            switch_completed_secs: None,
        }
    }

    /// Enables per-period churn (the paper's dynamic environments).
    pub fn set_churn(&mut self, churn: ChurnModel) {
        self.churn = Some(churn);
    }

    /// Selects how supplier outbound capacity is enforced (per-link by
    /// default; shared for the bandwidth-starved ablation).
    pub fn set_capacity_model(&mut self, model: crate::transfer::CapacityModel) {
        self.resolver = TransferResolver::with_model(model);
    }

    /// The protocol configuration.
    pub fn config(&self) -> &GossipConfig {
        &self.config
    }

    /// The overlay being streamed over.
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// The session directory.
    pub fn directory(&self) -> &SessionDirectory {
        &self.directory
    }

    /// Current simulation time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.period_index as f64 * self.config.tau_secs
    }

    /// Seconds elapsed since the source switch (0 before the switch).
    pub fn secs_since_switch(&self) -> f64 {
        match self.switch_secs {
            Some(t) => self.now_secs() - t,
            None => 0.0,
        }
    }

    /// Number of scheduling periods executed so far.
    pub fn periods(&self) -> u64 {
        self.period_index
    }

    /// Read access to one peer (panics on unknown ids).
    pub fn peer(&self, id: PeerId) -> &PeerNode {
        &self.peers[id as usize]
    }

    /// Starts the first source.  Must be called exactly once before running.
    pub fn start_initial_source(&mut self, source: PeerId) -> SourceId {
        assert!(
            self.directory.is_empty(),
            "initial source already started; use switch_source for later sources"
        );
        assert!(self.overlay.graph().is_active(source), "source must be active");
        let id = self.directory.start_session(source, self.now_secs(), None);
        let bw = self.overlay.config().bandwidth.source_peer();
        self.overlay
            .set_bandwidth(source, bw)
            .expect("source exists");
        self.sources.push(source);
        self.next_emit = SegmentId(0);
        self.peers[source as usize].discover_sessions(&self.directory, SegmentId(0));
        id
    }

    /// Stops the live source and hands the stream over to `new_source`
    /// (the paper's source switch, time "0" of the evaluation).
    ///
    /// Returns the new session id.
    pub fn switch_source(&mut self, new_source: PeerId) -> SourceId {
        let live = self
            .directory
            .live()
            .expect("a live session is required to switch from");
        let old_id = live.id;
        let old_source = live.source_peer;
        assert!(
            self.overlay.graph().is_active(new_source),
            "new source must be active"
        );
        assert_ne!(new_source, old_source, "new source must differ from the old one");

        let last_emitted = SegmentId(self.next_emit.value().saturating_sub(1));
        let new_id =
            self.directory
                .start_session(new_source, self.now_secs(), Some(last_emitted));

        // Bandwidth roles: the new source stops downloading and gets the
        // large source outbound; the old source goes back to being a regular
        // peer so it can fetch the new stream.
        let src_bw = self.overlay.config().bandwidth.source_peer();
        self.overlay
            .set_bandwidth(new_source, src_bw)
            .expect("new source exists");
        // The old source keeps its large outbound: it remains the primary
        // holder of the old stream's tail, which other nodes still need.  Its
        // inbound becomes that of a regular peer so it can fetch the new
        // stream itself.
        let regular = self.overlay.config().bandwidth;
        let old_bw = fss_overlay::PeerBandwidth {
            inbound: regular.mean_rate,
            outbound: regular.source_outbound,
        };
        self.overlay
            .set_bandwidth(old_source, old_bw)
            .expect("old source exists");
        self.sources.push(new_source);

        // The new source knows its own session immediately.
        self.peers[new_source as usize]
            .discover_sessions(&self.directory, self.directory.sessions()[new_id.0 as usize].first_segment);

        // Record switch-time state.  A fresh record per peer, so serial
        // switches (speaker after speaker) each get their own milestones.
        self.switch_secs = Some(self.now_secs());
        self.switch_sessions = Some((old_id, new_id));
        self.switch_completed_secs = None;
        self.traffic_switch_window = TrafficCounters::new();
        self.ratio_samples.clear();
        let old_session = *self.directory.get(old_id).expect("old session exists");
        for record in self.switch_records.iter_mut() {
            *record = SwitchRecord::default();
        }
        for peer_id in self.overlay.active_peers().collect::<Vec<_>>() {
            let record = &mut self.switch_records[peer_id as usize];
            record.present_at_switch = true;
            record.q0 = self.peers[peer_id as usize]
                .undelivered_in_session(&old_session, last_emitted);
        }
        // Sources are not "switching" nodes: exclude them from the averages.
        self.switch_records[new_source as usize].present_at_switch = false;
        new_id
    }

    /// Runs `n` scheduling periods.
    pub fn run_periods(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Runs until every countable node has completed the switch or
    /// `max_periods` have elapsed since the call.  Returns the number of
    /// periods executed.
    pub fn run_until_switched(&mut self, max_periods: u64) -> u64 {
        let mut executed = 0;
        while executed < max_periods && self.switch_completed_secs.is_none() {
            self.step();
            executed += 1;
        }
        executed
    }

    /// True when every countable node has finished the old stream and
    /// prepared the new one.
    pub fn switch_complete(&self) -> bool {
        self.switch_completed_secs.is_some()
    }

    /// Executes one scheduling period.
    pub fn step(&mut self) {
        let period_traffic_before = self.traffic_total;

        // 1. Churn and membership repair.
        self.apply_churn();

        // 2. Source emission.
        self.emit_segments();

        // 3. Buffer-map exchange, discovery and scheduling.
        let batches = self.collect_requests();

        // 4. Transfer resolution and delivery.
        self.deliver(batches);

        // 5. Playback, milestones, ratio samples.
        self.period_index += 1;
        self.advance_playback_and_record();

        // 6. Switch-window traffic accounting.
        if self.switch_secs.is_some() && self.switch_completed_secs.is_none() {
            let delta = TrafficCounters {
                control_bits: self.traffic_total.control_bits - period_traffic_before.control_bits,
                data_bits: self.traffic_total.data_bits - period_traffic_before.data_bits,
            };
            self.traffic_switch_window.merge(&delta);
        }
        self.update_switch_completion();
    }

    /// Builds the run report.
    pub fn report(&self) -> SystemReport {
        SystemReport {
            scheduler: self.scheduler.name(),
            switch_records: self.switch_records.clone(),
            ratio_samples: self.ratio_samples.clone(),
            traffic_total: self.traffic_total,
            traffic_switch_window: self.traffic_switch_window,
            periods: self.period_index,
            switch_completed_secs: self.switch_completed_secs,
        }
    }

    // ------------------------------------------------------------------
    // internal steps
    // ------------------------------------------------------------------

    fn apply_churn(&mut self) {
        let Some(churn) = self.churn.as_mut() else {
            return;
        };
        let event = churn
            .step(&mut self.overlay, &self.sources)
            .expect("churn over valid overlay");
        for &left in &event.left {
            if (left as usize) < self.switch_records.len() {
                self.switch_records[left as usize].departed = true;
            }
        }
        // Joiners may neighbour each other within the same churn step, so
        // allocate all their protocol state first and only then compute join
        // points from their neighbours' playback positions.
        for &joined in &event.joined {
            debug_assert_eq!(joined as usize, self.peers.len());
            self.peers
                .push(PeerNode::new(joined, &self.config, SegmentId(0)));
            self.switch_records.push(SwitchRecord::default());
        }
        for &joined in &event.joined {
            // Joiners follow their neighbours' current playback position.
            let join_point = self
                .overlay
                .neighbors(joined)
                .iter()
                .map(|&n| self.peers[n as usize].id_play())
                .max()
                .unwrap_or(SegmentId(0));
            self.peers[joined as usize].rejoin_at(join_point);
        }
        self.membership
            .repair(&mut self.overlay)
            .expect("membership repair over valid overlay");
    }

    fn emit_segments(&mut self) {
        let Some(live) = self.directory.live().copied() else {
            return;
        };
        self.emit_credit += self.config.play_rate * self.config.tau_secs;
        let count = self.emit_credit.floor() as u64;
        self.emit_credit -= count as f64;
        let source = &mut self.peers[live.source_peer as usize];
        for _ in 0..count {
            source.buffer_mut().insert(self.next_emit);
            self.next_emit = self.next_emit.next();
        }
    }

    fn collect_requests(&mut self) -> Vec<RequestBatch> {
        let active: Vec<PeerId> = self.overlay.active_peers().collect();

        // Discovery pass: a node learns a new session as soon as any
        // neighbour (or its own buffer) holds one of its segments.
        let observed: Vec<(PeerId, SegmentId)> = active
            .iter()
            .map(|&p| {
                let own = self.peers[p as usize].buffer().max_id();
                let neighbours = self
                    .overlay
                    .neighbors(p)
                    .iter()
                    .filter_map(|&n| self.peers[n as usize].buffer().max_id())
                    .max();
                (p, own.into_iter().chain(neighbours).max().unwrap_or(SegmentId(0)))
            })
            .collect();
        for (p, max_seen) in observed {
            self.peers[p as usize].discover_sessions(&self.directory, max_seen);
        }

        // Scheduling pass (immutable).
        let mut batches = Vec::with_capacity(active.len());
        for &p in &active {
            let neighbours = self.overlay.neighbors(p);
            if neighbours.is_empty() {
                continue;
            }
            // Buffer-map exchange cost: one 620-bit map per neighbour.
            self.traffic_total
                .add_control(self.config.buffermap_bits * neighbours.len() as u64);

            let inbound = self
                .overlay
                .attrs(p)
                .map(|a| a.bandwidth.inbound)
                .unwrap_or(0.0);
            if inbound <= 0.0 {
                continue;
            }
            let infos: Vec<NeighborInfo<'_>> = neighbours
                .iter()
                .map(|&n| NeighborInfo {
                    peer: n,
                    outbound_rate: self
                        .overlay
                        .attrs(n)
                        .map(|a| a.bandwidth.outbound)
                        .unwrap_or(0.0),
                    buffer: self.peers[n as usize].buffer(),
                })
                .collect();
            let Some(ctx) = self.peers[p as usize].build_context(
                &self.config,
                &self.directory,
                inbound,
                &infos,
            ) else {
                continue;
            };
            let requests = self.scheduler.schedule(&ctx);
            if requests.is_empty() {
                continue;
            }
            batches.push(RequestBatch {
                requester: p,
                inbound_budget: ctx.inbound_budget(),
                requests,
            });
        }
        batches
    }

    fn deliver(&mut self, batches: Vec<RequestBatch>) {
        let tau = self.config.tau_secs;
        let outbound: HashMap<PeerId, usize> = self
            .overlay
            .active_peers()
            .map(|p| {
                let rate = self
                    .overlay
                    .attrs(p)
                    .map(|a| a.bandwidth.outbound)
                    .unwrap_or(0.0);
                (p, (rate * tau).floor() as usize)
            })
            .collect();
        let deliveries = self.resolver.resolve_round(
            &batches,
            |p| outbound.get(&p).copied().unwrap_or(0),
            self.period_index,
        );
        for d in deliveries {
            self.peers[d.requester as usize].buffer_mut().insert(d.segment);
            self.traffic_total.add_data(self.config.segment_bits);
        }
    }

    fn advance_playback_and_record(&mut self) {
        let now = self.now_secs();
        let active: Vec<PeerId> = self.overlay.active_peers().collect();
        for &p in &active {
            self.peers[p as usize].advance_playback(&self.config, &self.directory);
        }

        let Some((old_id, new_id)) = self.switch_sessions else {
            return;
        };
        let since_switch = self.secs_since_switch();
        let old = *self.directory.get(old_id).expect("old session");
        let new = *self.directory.get(new_id).expect("new session");
        let old_end = old.last_segment.expect("old session closed at switch");
        let qs = self.config.new_source_qs;

        let mut undelivered_sum = 0.0;
        let mut delivered_sum = 0.0;
        let mut counted = 0usize;
        for &p in &active {
            let record = &mut self.switch_records[p as usize];
            if !record.countable() {
                continue;
            }
            let node = &self.peers[p as usize];

            if record.s1_finished_secs.is_none() && node.id_play() > old_end {
                record.s1_finished_secs = Some(since_switch);
            }
            if record.s2_prepared_secs.is_none() && node.prepared_for(&new, qs) {
                record.s2_prepared_secs = Some(since_switch);
            }
            if record.s2_started_secs.is_none() && node.id_play() > new.first_segment {
                record.s2_started_secs = Some(since_switch);
            }

            // Ratio tracks (Figures 5 and 9).
            let q1 = node.undelivered_in_session(&old, old_end);
            let undelivered_ratio = if record.q0 == 0 {
                0.0
            } else {
                q1 as f64 / record.q0 as f64
            };
            let q2 = node.q2_for(&new, qs);
            let delivered_ratio = (qs - q2) as f64 / qs as f64;
            undelivered_sum += undelivered_ratio;
            delivered_sum += delivered_ratio;
            counted += 1;
        }
        if counted > 0 {
            self.ratio_samples.push(RatioSample {
                secs: since_switch,
                undelivered_ratio_s1: undelivered_sum / counted as f64,
                delivered_ratio_s2: delivered_sum / counted as f64,
            });
        }
        let _ = now;
    }

    fn update_switch_completion(&mut self) {
        if self.switch_secs.is_none() || self.switch_completed_secs.is_some() {
            return;
        }
        let all_done = self
            .switch_records
            .iter()
            .filter(|r| r.countable())
            .all(|r| r.completed());
        let any = self.switch_records.iter().any(|r| r.countable());
        if any && all_done {
            self.switch_completed_secs = Some(self.secs_since_switch());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{SchedulingContext, SegmentRequest};
    use fss_overlay::OverlayBuilder;
    use fss_trace::{GeneratorConfig, TraceGenerator};

    /// A simple priority-free scheduler used only by these tests: request
    /// candidates oldest-first, spreading requests across suppliers so no
    /// single supplier is asked for more than its per-period capacity.
    struct GreedyOldest;
    impl SegmentScheduler for GreedyOldest {
        fn name(&self) -> &'static str {
            "greedy-oldest"
        }
        fn schedule(&self, ctx: &SchedulingContext) -> Vec<SegmentRequest> {
            let mut candidates = ctx.candidates.clone();
            candidates.sort_by_key(|c| c.id);
            let mut load: std::collections::HashMap<fss_overlay::PeerId, usize> =
                std::collections::HashMap::new();
            let mut requests = Vec::new();
            for c in candidates {
                if requests.len() >= ctx.inbound_budget() {
                    break;
                }
                let best = c
                    .suppliers
                    .iter()
                    .filter(|s| {
                        let cap = (s.rate * ctx.tau_secs).floor() as usize;
                        load.get(&s.peer).copied().unwrap_or(0) < cap
                    })
                    .min_by(|a, b| {
                        let la = *load.get(&a.peer).unwrap_or(&0) as f64 / a.rate;
                        let lb = *load.get(&b.peer).unwrap_or(&0) as f64 / b.rate;
                        la.partial_cmp(&lb).unwrap()
                    });
                if let Some(best) = best {
                    *load.entry(best.peer).or_default() += 1;
                    requests.push(SegmentRequest {
                        segment: c.id,
                        supplier: best.peer,
                    });
                }
            }
            requests
        }
    }

    fn build_system(nodes: usize, seed: u64) -> StreamingSystem {
        let trace = TraceGenerator::new(GeneratorConfig::sized(nodes, seed)).generate("sys");
        let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
        StreamingSystem::new(overlay, GossipConfig::paper_default(), Box::new(GreedyOldest))
    }

    fn first_two(sys: &StreamingSystem) -> (PeerId, PeerId) {
        let peers: Vec<PeerId> = sys.overlay().active_peers().take(2).collect();
        (peers[0], peers[1])
    }

    #[test]
    fn warmup_reaches_steady_playback() {
        let mut sys = build_system(60, 1);
        let (source, _) = first_two(&sys);
        sys.start_initial_source(source);
        sys.run_periods(40);

        assert_eq!(sys.periods(), 40);
        // Every node should have started playing and be within a few periods
        // of the stream head.
        let head = 40.0 * 10.0;
        let mut started = 0;
        for p in sys.overlay().active_peers() {
            if p == source {
                continue;
            }
            let node = sys.peer(p);
            if node.playback().has_started() {
                started += 1;
                assert!(node.id_play().value() as f64 <= head);
                assert!(
                    node.id_play().value() as f64 >= head - 200.0,
                    "node {p} lags too far: {}",
                    node.id_play()
                );
            }
        }
        assert!(
            started as f64 >= 0.95 * (sys.overlay().active_count() - 1) as f64,
            "only {started} nodes started playback"
        );
        assert!(sys.report().traffic_total.control_bits > 0);
        assert!(sys.report().traffic_total.data_bits > 0);
    }

    #[test]
    fn switch_completes_and_records_milestones() {
        let mut sys = build_system(60, 2);
        let (s1, s2) = first_two(&sys);
        sys.start_initial_source(s1);
        sys.run_periods(40);
        sys.switch_source(s2);
        let executed = sys.run_until_switched(200);
        assert!(executed < 200, "switch never completed");
        assert!(sys.switch_complete());

        let report = sys.report();
        assert_eq!(report.scheduler, "greedy-oldest");
        assert!(report.switch_completed_secs.is_some());
        let countable: Vec<&SwitchRecord> = report
            .switch_records
            .iter()
            .filter(|r| r.countable())
            .collect();
        assert!(!countable.is_empty());
        for r in countable {
            assert!(r.completed());
            let finished = r.s1_finished_secs.unwrap();
            let prepared = r.s2_prepared_secs.unwrap();
            assert!(finished >= 0.0 && prepared >= 0.0);
            if let Some(started) = r.s2_started_secs {
                assert!(started + 1e-9 >= finished.max(prepared) - 1.0);
            }
        }
        // The new source is excluded from the averages.
        assert!(!report.switch_records[s2 as usize].countable());

        // Ratio samples move in the right directions.
        assert!(!report.ratio_samples.is_empty());
        let first = report.ratio_samples.first().unwrap();
        let last = report.ratio_samples.last().unwrap();
        assert!(last.undelivered_ratio_s1 <= first.undelivered_ratio_s1 + 1e-9);
        assert!(last.delivered_ratio_s2 >= first.delivered_ratio_s2 - 1e-9);
        assert!((last.delivered_ratio_s2 - 1.0).abs() < 1e-9);

        // Communication overhead is on the order of a percent.
        let overhead = report.traffic_switch_window.overhead();
        assert!(overhead > 0.001 && overhead < 0.1, "overhead {overhead}");
    }

    #[test]
    fn dynamic_environment_with_churn_still_completes() {
        let mut sys = build_system(80, 3);
        let (s1, s2) = first_two(&sys);
        sys.start_initial_source(s1);
        sys.run_periods(30);
        sys.set_churn(ChurnModel::paper_default(99));
        sys.switch_source(s2);
        let executed = sys.run_until_switched(300);
        assert!(executed < 300, "switch never completed under churn");

        let report = sys.report();
        // Some nodes left, some joined; joiners are not countable.
        assert!(report.switch_records.len() > 80);
        assert!(report.switch_records.iter().any(|r| r.departed));
        assert!(report
            .switch_records
            .iter()
            .skip(80)
            .all(|r| !r.countable()));
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let run = || {
            let mut sys = build_system(50, 7);
            let (s1, s2) = first_two(&sys);
            sys.start_initial_source(s1);
            sys.run_periods(25);
            sys.switch_source(s2);
            sys.run_periods(40);
            sys.report()
        };
        let a = run();
        let b = run();
        assert_eq!(a.switch_records, b.switch_records);
        assert_eq!(a.traffic_total, b.traffic_total);
        assert_eq!(a.ratio_samples, b.ratio_samples);
    }

    #[test]
    #[should_panic(expected = "initial source already started")]
    fn double_initial_source_panics() {
        let mut sys = build_system(20, 4);
        let (a, b) = first_two(&sys);
        sys.start_initial_source(a);
        sys.start_initial_source(b);
    }

    #[test]
    #[should_panic(expected = "live session")]
    fn switch_without_initial_source_panics() {
        let mut sys = build_system(20, 5);
        let (p, _) = first_two(&sys);
        sys.switch_source(p);
    }
}
