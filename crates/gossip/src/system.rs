//! The complete period-synchronous streaming system.
//!
//! [`StreamingSystem`] wires the overlay, the per-node protocol state, the
//! pluggable scheduler and the transfer model into the simulation loop the
//! paper's evaluation runs:
//!
//! 1. (dynamic scenarios) apply churn and repair neighbour sets,
//! 2. the live source emits `p·τ` new segments,
//! 3. every node exchanges buffer maps with its neighbours (control traffic),
//!    discovers new sessions, builds its scheduling context and asks its
//!    scheduler which segments to request,
//! 4. requests are resolved against inbound/outbound budgets and the granted
//!    segments are delivered (data traffic),
//! 5. every node advances playback; switch milestones and the per-period
//!    ratio tracks are recorded.
//!
//! # Hot path
//!
//! [`step`](StreamingSystem::step) runs the optimized period loop: all
//! working memory lives in a reusable [`PeriodScratch`] arena (zero
//! steady-state heap allocation), candidate segments are discovered by
//! word-level bitset intersection of per-peer availability maps, per-peer
//! lookups use dense `Vec`s indexed by [`PeerId`], and — behind the
//! `parallel` feature — the read-only scheduling pass fans out over an
//! attached [`JobExecutor`] (the persistent `fss-runtime` worker pool in
//! production; an in-line serial fallback otherwise) in deterministic node
//! order.  Chunk outputs land in per-chunk scratch slots, so the report is
//! byte-identical regardless of executor, worker count or scheduling
//! interleaving.
//! [`step_reference`](StreamingSystem::step_reference) preserves the
//! original straight-line implementation; the two are byte-equivalent (the
//! test-suite asserts identical [`SystemReport`]s) and the reference serves
//! as the baseline for `BENCH_period.json`.

use crate::buffer::FifoBuffer;
use crate::config::GossipConfig;
use crate::directory::{sample_distinct, MembershipView, SampleScratch, ViewConfig};
use crate::mem::{vec_bytes, MemUsage, MemoryFootprint};
use crate::membership::MembershipMaintainer;
use crate::net::{NetMessage, NetStats, NetworkModel};
use crate::peer::{self, NeighborInfo, PeerNode};
use crate::prefetch::{prefetch_read, DELIVERY_AHEAD, WALK_AHEAD};
use crate::qoe::{QoeRecorder, QoeTotals};
use crate::scheduler::SegmentScheduler;
use crate::scratch::{PeriodScratch, WorkerScratch};
use crate::segment::{SegmentId, SessionDirectory, SourceId};
use crate::stats::{RatioSample, SwitchRecord, SwitchStats, TrafficCounters};
use crate::store::{PeerRef, PeerStore};
use crate::transfer::{regroup_by_dest_shard, RequestBatch, TransferResolver};
use fss_overlay::net::{MessageKind, NetworkConfig};
use fss_overlay::{ChurnModel, Overlay, OverlayError, PeerAttrs, PeerId};
use fss_sim::exec::{DisjointRanges, DisjointSlots, JobExecutor, SerialExecutor};
use fss_sim::{SimDuration, SimTime};
use std::sync::Arc;

/// Snapshot of everything an experiment needs after (or while) running the
/// system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemReport {
    /// Name of the scheduling policy that produced this run.
    pub scheduler: &'static str,
    /// Aggregated switch statistics, folded over the per-peer switch
    /// records in peer order at report time.  The raw per-peer records stay
    /// readable through [`StreamingSystem::switch_records`]; the report
    /// itself is O(1) in the peer count.
    pub switch: SwitchStats,
    /// Per-period ratio samples recorded since the switch.
    pub ratio_samples: Vec<RatioSample>,
    /// Traffic accumulated over the whole run.
    pub traffic_total: TrafficCounters,
    /// Traffic accumulated between the switch and its completion.
    pub traffic_switch_window: TrafficCounters,
    /// Number of scheduling periods executed.
    pub periods: u64,
    /// Seconds (since the switch) at which the last countable node completed
    /// the switch, if every countable node did.
    pub switch_completed_secs: Option<f64>,
    /// Per-peer protocol-state footprint at report time (active peers only;
    /// a pure function of the protocol history, so it never breaks report
    /// equivalence across implementations, worker counts or stepping
    /// modes — see [`crate::mem`]).
    pub mem: MemUsage,
    /// Cumulative QoE event counters (startups, stall episodes, continuity)
    /// recorded on the playback path — see [`crate::qoe`].  All zero when
    /// telemetry is disabled.
    pub qoe: QoeTotals,
}

/// The period-synchronous gossip streaming simulator.
pub struct StreamingSystem {
    config: GossipConfig,
    overlay: Overlay,
    /// Sharded struct-of-arrays peer storage: dense contiguous id shards,
    /// each owning its peers' buffer/playback/discovery/credit columns.
    /// The shards are the chunk unit of the parallel scheduling pass.
    peers: PeerStore,
    directory: SessionDirectory,
    scheduler: Box<dyn SegmentScheduler>,
    resolver: TransferResolver,
    churn: Option<ChurnModel>,
    membership: MembershipMaintainer,
    /// This channel's slot in the cross-channel membership directory: the
    /// incrementally maintained member/candidate view every admission path
    /// (churn rejoin, zap batches, storms) and the repair pass read instead
    /// of re-collecting `active_peers()`.
    view: MembershipView,
    /// Pooled churn working memory (eligible/left/joined/neighbour buffers).
    churn_scratch: ChurnScratch,

    sources: Vec<PeerId>,
    /// Next segment id the live source will emit.
    next_emit: SegmentId,
    emit_credit: f64,

    period_index: u64,
    traffic_total: TrafficCounters,
    traffic_switch_window: TrafficCounters,

    /// Set when the source switch is triggered.
    switch_secs: Option<f64>,
    /// The session pair involved in the switch (old, new).
    switch_sessions: Option<(SourceId, SourceId)>,
    switch_records: Vec<SwitchRecord>,
    ratio_samples: Vec<RatioSample>,
    /// Keep-every-k decimation of the ratio samples (1 = keep all).
    ratio_keep_every: u64,
    /// Periods with a recordable ratio sample since the switch (the
    /// decimation counter; the first sample is always kept).
    ratio_periods_seen: u64,
    switch_completed_secs: Option<f64>,

    /// Streaming QoE event recorder, fed by the playback pass (see
    /// [`crate::qoe`]).  Consumes no RNG and allocates nothing in steady
    /// state, so enabling it cannot change any simulated result.
    qoe: QoeRecorder,

    /// Reusable period working memory.
    scratch: PeriodScratch,
    /// Chunk count of the scheduling pass (effective only with the
    /// `parallel` feature; results are identical either way).
    parallelism: usize,
    /// Executor running the scheduling-pass chunks.  `None` degrades to the
    /// in-line [`SerialExecutor`] — byte-identical results either way.
    executor: Option<Arc<dyn JobExecutor>>,
    /// The message-level network model.  `None` (the default) selects
    /// period-lockstep stepping; `Some` switches [`advance`](Self::advance)
    /// to the event-driven mode, which carries granted transfers as
    /// scheduled messages with latency, loss and jitter (see [`crate::net`]).
    net: Option<NetworkModel>,
    /// Selects the phase-major period pipeline (the pre-fusion ordering:
    /// whole-population scheduling, then delivery, then playback) instead of
    /// the default shard-major fused pipeline.  Results are byte-identical;
    /// kept for one release as the fusion oracle.
    phase_major: bool,
}

impl StreamingSystem {
    /// Creates a system over `overlay` with the given scheduling policy.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(
        overlay: Overlay,
        config: GossipConfig,
        scheduler: Box<dyn SegmentScheduler>,
    ) -> Self {
        config.validate().expect("valid gossip configuration");
        let capacity = overlay.graph().capacity();
        let mut peers = PeerStore::with_capacity(capacity);
        for id in 0..capacity as PeerId {
            peers.push(PeerNode::new(id, &config, SegmentId(0)));
        }
        let min_degree = overlay.config().min_degree;
        let membership_seed = overlay.config().seed ^ 0x4d45_4d42;
        let view = MembershipView::from_members(
            ViewConfig {
                candidate_bound: None,
                seed: overlay.config().seed ^ 0x0D15_EC70,
            },
            overlay.active_peers(),
        );
        StreamingSystem {
            config,
            overlay,
            peers,
            directory: SessionDirectory::new(),
            scheduler,
            resolver: TransferResolver::new(),
            churn: None,
            membership: MembershipMaintainer::new(min_degree, membership_seed),
            view,
            churn_scratch: ChurnScratch::default(),
            sources: Vec::new(),
            next_emit: SegmentId(0),
            emit_credit: 0.0,
            period_index: 0,
            traffic_total: TrafficCounters::new(),
            traffic_switch_window: TrafficCounters::new(),
            switch_secs: None,
            switch_sessions: None,
            switch_records: vec![SwitchRecord::default(); capacity],
            ratio_samples: Vec::new(),
            ratio_keep_every: 1,
            ratio_periods_seen: 0,
            switch_completed_secs: None,
            qoe: QoeRecorder::with_capacity(capacity),
            scratch: PeriodScratch::default(),
            parallelism: 1,
            executor: None,
            net: None,
            phase_major: false,
        }
    }

    /// Enables per-period churn (the paper's dynamic environments).
    pub fn set_churn(&mut self, churn: ChurnModel) {
        self.churn = Some(churn);
    }

    /// Selects how supplier outbound capacity is enforced (per-link by
    /// default; shared for the bandwidth-starved ablation).
    pub fn set_capacity_model(&mut self, model: crate::transfer::CapacityModel) {
        self.resolver = TransferResolver::with_model(model);
    }

    /// Installs a message-level network model and switches
    /// [`advance`](Self::advance) to the event-driven stepping mode.
    ///
    /// The in-flight queue is pre-reserved for the steady-state message
    /// volume (per-period grant count × the latency horizon in periods), so
    /// event stepping allocates nothing once warm.  Installing the
    /// [`NetworkConfig::ideal`] model reproduces period-lockstep results
    /// byte-for-byte (pinned by the golden-digest suite).
    ///
    /// # Panics
    /// Panics if the configuration is invalid or `τ` rounds below 1 ms.
    pub fn set_network(&mut self, config: NetworkConfig) {
        let tau_ms = (self.config.tau_secs * 1_000.0).round() as u64;
        let per_period = (self.config.play_rate * self.config.tau_secs).ceil() as usize + 1;
        // Horizon: how many periods a message can stay in flight under the
        // slowest link (request + data leg = 2 one-way = 4 access delays),
        // clamped against pathological latency models.
        let slowest_ms = config.latency_scale * 4.0 * self.overlay.latency().max_access_ms()
            + config.jitter_ms as f64;
        let horizon = if slowest_ms.is_finite() && tau_ms > 0 {
            (slowest_ms / tau_ms as f64).ceil().min(64.0) as usize + 2
        } else {
            2
        };
        let hint = self.overlay.active_count() * per_period * horizon;
        self.net = Some(NetworkModel::new(config, tau_ms, hint));
    }

    /// Uninstalls the network model, reverting [`advance`](Self::advance) to
    /// period-lockstep stepping.  Messages still in flight are discarded.
    pub fn clear_network(&mut self) {
        self.net = None;
    }

    /// The installed network model, if event-driven stepping is active.
    pub fn network(&self) -> Option<&NetworkModel> {
        self.net.as_ref()
    }

    /// The network model's cumulative counters ([`NetStats::default`] when
    /// no model is installed — period mode neither drops nor delays).
    pub fn network_stats(&self) -> NetStats {
        self.net.as_ref().map(|n| n.stats()).unwrap_or_default()
    }

    /// Sets the number of scheduling-pass chunks (the fan-out width).
    ///
    /// Values above 1 take effect only when the `parallel` feature is
    /// enabled; the sweep is chunked deterministically so results are
    /// byte-identical to the sequential order regardless.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.parallelism = workers.max(1);
    }

    /// The configured scheduling-pass chunk count.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Re-partitions the peer store into (at least) `shards` shards.  With
    /// more than one shard, the shards — not [`set_parallelism`]'s even
    /// slices — become the chunk unit of the scheduling pass, so the worker
    /// pool steps shards independently.  Results are byte-identical across
    /// shard counts: chunk outputs concatenate in peer order either way.
    ///
    /// [`set_parallelism`]: Self::set_parallelism
    pub fn set_shards(&mut self, shards: usize) {
        self.peers.set_shards(shards);
    }

    /// Number of shards currently backing the peer store.
    pub fn shard_count(&self) -> usize {
        self.peers.shard_count()
    }

    /// The peer store itself (sharded struct-of-arrays columns).
    pub fn peer_store(&self) -> &PeerStore {
        &self.peers
    }

    /// Attaches the executor that runs the scheduling-pass chunks — in
    /// production the persistent `fss-runtime::WorkerPool`, which amortises
    /// thread spawn cost to zero per period.
    ///
    /// Without an executor (or without the `parallel` feature) the chunks
    /// run in-line; because every chunk writes only its own scratch slot,
    /// reports are byte-identical in all configurations.
    pub fn set_executor(&mut self, executor: Arc<dyn JobExecutor>) {
        self.executor = Some(executor);
    }

    /// Detaches the executor, reverting to in-line chunk execution.
    pub fn clear_executor(&mut self) {
        self.executor = None;
    }

    /// The protocol configuration.
    pub fn config(&self) -> &GossipConfig {
        &self.config
    }

    /// The overlay being streamed over.
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// The session directory.
    pub fn directory(&self) -> &SessionDirectory {
        &self.directory
    }

    /// This channel's membership view — the directory slot other layers
    /// (zap resolution, experiments) read candidates from.
    pub fn membership_view(&self) -> &MembershipView {
        &self.view
    }

    /// Reconfigures the membership view (e.g. installs a bounded candidate
    /// list).  The view is rebuilt from the current membership; call before
    /// the measured run for reproducible candidate lists.
    pub fn configure_view(&mut self, config: ViewConfig) {
        self.view = MembershipView::from_members(config, self.overlay.active_peers());
    }

    /// Current simulation time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.period_index as f64 * self.config.tau_secs
    }

    /// Seconds elapsed since the source switch (0 before the switch).
    pub fn secs_since_switch(&self) -> f64 {
        match self.switch_secs {
            Some(t) => self.now_secs() - t,
            None => 0.0,
        }
    }

    /// Number of scheduling periods executed so far.
    pub fn periods(&self) -> u64 {
        self.period_index
    }

    /// Traffic accumulated over the whole run so far (the `traffic_total`
    /// of [`report`](Self::report), without building the report).
    pub fn traffic_total(&self) -> TrafficCounters {
        self.traffic_total
    }

    /// Read access to one peer (panics on unknown ids).
    pub fn peer(&self, id: PeerId) -> PeerRef<'_> {
        self.peers.peer(id)
    }

    /// The raw per-peer switch records (indexed by [`PeerId`]).  Reports
    /// carry only their [`SwitchStats`] aggregate; tests and diagnostics
    /// that need per-peer milestones read them here.
    pub fn switch_records(&self) -> &[SwitchRecord] {
        &self.switch_records
    }

    /// The streaming QoE recorder: the latest per-period event row and the
    /// per-period startup/stall event buffers higher layers fold into
    /// bounded timelines (see [`crate::qoe`]).
    pub fn qoe(&self) -> &QoeRecorder {
        &self.qoe
    }

    /// Turns QoE event recording on or off (on by default).  The event path
    /// consumes no RNG and allocates nothing in steady state, so this knob
    /// can never change a simulated result — it exists for the
    /// `qoe_overhead` benchmark lane and for callers that want the last few
    /// percent of period throughput.
    pub fn set_qoe_enabled(&mut self, on: bool) {
        self.qoe.set_enabled(on);
    }

    /// Selects the phase-major period pipeline (whole-population phases in
    /// sequence) instead of the default shard-major fused pipeline.  The two
    /// orderings produce byte-identical reports — pinned by the fused
    /// equivalence suite — so this knob exists only as the fusion oracle and
    /// for locality benchmarking; it is kept for one release.
    pub fn set_phase_major(&mut self, on: bool) {
        self.phase_major = on;
    }

    /// Decimates the per-period ratio samples to every `keep_every`-th
    /// recordable period (the first sample after a switch is always kept),
    /// bounding `SystemReport::ratio_samples` for long runs.  The default
    /// of 1 keeps every sample — byte-identical to the undecimated report
    /// (pinned by the golden digest tests).
    ///
    /// # Panics
    /// Panics if `keep_every` is 0.
    pub fn set_ratio_decimation(&mut self, keep_every: u64) {
        assert!(keep_every > 0, "keep_every must be at least 1");
        self.ratio_keep_every = keep_every;
    }

    /// Chooses a keep-every-k ratio decimation so a run of `expected_periods`
    /// yields at most `max_samples` ratio samples (at least 1 sample).
    pub fn ratio_keep_every_for(expected_periods: u64, max_samples: usize) -> u64 {
        let cap = (max_samples as u64).max(1);
        expected_periods.div_ceil(cap).max(1)
    }

    /// Starts the first source.  Must be called exactly once before running.
    pub fn start_initial_source(&mut self, source: PeerId) -> SourceId {
        assert!(
            self.directory.is_empty(),
            "initial source already started; use switch_source for later sources"
        );
        assert!(
            self.overlay.graph().is_active(source),
            "source must be active"
        );
        let id = self.directory.start_session(source, self.now_secs(), None);
        let bw = self.overlay.config().bandwidth.source_peer();
        self.overlay
            .set_bandwidth(source, bw)
            .expect("source exists");
        self.sources.push(source);
        self.next_emit = SegmentId(0);
        self.peers
            .peer_mut(source)
            .discover_sessions(&self.directory, SegmentId(0));
        id
    }

    /// Stops the live source and hands the stream over to `new_source`
    /// (the paper's source switch, time "0" of the evaluation).
    ///
    /// Returns the new session id.
    pub fn switch_source(&mut self, new_source: PeerId) -> SourceId {
        let live = self
            .directory
            .live()
            .expect("a live session is required to switch from");
        let old_id = live.id;
        let old_source = live.source_peer;
        assert!(
            self.overlay.graph().is_active(new_source),
            "new source must be active"
        );
        assert_ne!(
            new_source, old_source,
            "new source must differ from the old one"
        );

        let last_emitted = SegmentId(self.next_emit.value().saturating_sub(1));
        let new_id = self
            .directory
            .start_session(new_source, self.now_secs(), Some(last_emitted));

        // Bandwidth roles: the new source stops downloading and gets the
        // large source outbound; the old source goes back to being a regular
        // peer so it can fetch the new stream.
        let src_bw = self.overlay.config().bandwidth.source_peer();
        self.overlay
            .set_bandwidth(new_source, src_bw)
            .expect("new source exists");
        // The old source keeps its large outbound: it remains the primary
        // holder of the old stream's tail, which other nodes still need.  Its
        // inbound becomes that of a regular peer so it can fetch the new
        // stream itself.
        let regular = self.overlay.config().bandwidth;
        let old_bw = fss_overlay::PeerBandwidth {
            inbound: regular.mean_rate,
            outbound: regular.source_outbound,
        };
        self.overlay
            .set_bandwidth(old_source, old_bw)
            .expect("old source exists");
        self.sources.push(new_source);

        // The new source knows its own session immediately.
        let first_segment = self.directory.sessions()[new_id.0 as usize].first_segment;
        self.peers
            .peer_mut(new_source)
            .discover_sessions(&self.directory, first_segment);

        // Record switch-time state.  A fresh record per peer, so serial
        // switches (speaker after speaker) each get their own milestones.
        self.switch_secs = Some(self.now_secs());
        self.switch_sessions = Some((old_id, new_id));
        self.switch_completed_secs = None;
        self.traffic_switch_window = TrafficCounters::new();
        self.ratio_samples.clear();
        self.ratio_periods_seen = 0;
        let old_session = *self.directory.get(old_id).expect("old session exists");
        for record in self.switch_records.iter_mut() {
            *record = SwitchRecord::default();
        }
        for peer_id in self.overlay.active_peers().collect::<Vec<_>>() {
            let record = &mut self.switch_records[peer_id as usize];
            record.present_at_switch = true;
            record.q0 = self
                .peers
                .peer(peer_id)
                .undelivered_in_session(&old_session, last_emitted);
        }
        // Sources are not "switching" nodes: exclude them from the averages.
        self.switch_records[new_source as usize].present_at_switch = false;
        new_id
    }

    /// Removes `peer` from the overlay — an externally driven departure,
    /// e.g. a viewer zapping away to another channel in a multi-channel
    /// deployment.
    ///
    /// The peer's protocol state stays allocated (ids are never reused) and
    /// its switch record is marked departed so it stops counting towards
    /// switch metrics.  Call [`repair_membership`](Self::repair_membership)
    /// after a batch of external membership changes.
    ///
    /// # Panics
    /// Panics if `peer` has ever been a source: departing the emitter would
    /// silently stall the whole stream, and old sources remain the primary
    /// holders of their stream's tail — the same protection the churn path
    /// enforces.
    pub fn depart_peer(&mut self, peer: PeerId) -> Result<(), OverlayError> {
        assert!(
            !self.sources.contains(&peer),
            "sources cannot depart (peer {peer})"
        );
        self.overlay.remove_peer(peer)?;
        self.view.on_depart(peer);
        if let Some(record) = self.switch_records.get_mut(peer as usize) {
            record.departed = true;
        }
        Ok(())
    }

    /// Admits a new peer attached to `neighbors` — an externally driven
    /// arrival, e.g. a viewer zapping in from another channel.
    ///
    /// Exactly like a churn joiner, the newcomer starts media playback by
    /// following its neighbours' current steps.  Returns the new peer's id.
    pub fn admit_peer(
        &mut self,
        attrs: PeerAttrs,
        neighbors: &[PeerId],
    ) -> Result<PeerId, OverlayError> {
        let id = self.overlay.add_peer(attrs, neighbors)?;
        self.view.on_join(id);
        self.register_joined_peer(id);
        self.rejoin_at_neighbours(id);
        Ok(id)
    }

    /// Removes a batch of peers and repairs the membership once — the
    /// departure half of a *zap batch* (a group of viewers leaving this
    /// channel for another one at the same period boundary).
    ///
    /// Equivalent to [`depart_peer`](Self::depart_peer) for every peer
    /// followed by one [`repair_membership`](Self::repair_membership) call;
    /// batching the repair is what keeps a multi-viewer zap batch a single
    /// pairwise synchronisation point between two channels.  An empty batch
    /// is a no-op (no repair pass, no RNG consumption).
    ///
    /// # Panics
    /// Panics if any peer has ever been a source (see
    /// [`depart_peer`](Self::depart_peer)).
    pub fn depart_batch(&mut self, peers: &[PeerId]) -> Result<(), OverlayError> {
        if peers.is_empty() {
            return Ok(());
        }
        for &peer in peers {
            self.depart_peer(peer)?;
        }
        self.repair_membership();
        Ok(())
    }

    /// Admits a batch of peers and repairs the membership once — the arrival
    /// half of a *zap batch*.
    ///
    /// Exactly like the churn join rule, all arrivals are registered first
    /// and only then pointed at their neighbours' playback steps, so
    /// arrivals may neighbour each other within the batch.  Returns the new
    /// peer ids in batch order.  An empty batch is a no-op.
    pub fn admit_batch(
        &mut self,
        arrivals: &[(PeerAttrs, Vec<PeerId>)],
    ) -> Result<Vec<PeerId>, OverlayError> {
        let mut ids = Vec::with_capacity(arrivals.len());
        for (attrs, neighbors) in arrivals {
            let id = self.overlay.add_peer(*attrs, neighbors)?;
            self.view.on_join(id);
            self.register_joined_peer(id);
            ids.push(id);
        }
        for &id in &ids {
            self.rejoin_at_neighbours(id);
        }
        if !ids.is_empty() {
            self.repair_membership();
        }
        Ok(ids)
    }

    /// [`admit_batch`](Self::admit_batch) over flat, pooled buffers: arrival
    /// `i` takes `neighbours[i * degree..(i + 1) * degree]` as its neighbour
    /// set and its id is appended to `ids_out` (cleared first).  This is the
    /// allocation-free admission shape the zap hot path uses — no per-arrival
    /// `Vec` clone, no returned `Vec`.
    ///
    /// # Panics
    /// Panics if `neighbours.len() != attrs.len() * degree`.
    pub fn admit_batch_grouped(
        &mut self,
        attrs: &[PeerAttrs],
        neighbours: &[PeerId],
        degree: usize,
        ids_out: &mut Vec<PeerId>,
    ) -> Result<(), OverlayError> {
        assert_eq!(
            neighbours.len(),
            attrs.len() * degree,
            "flat neighbour buffer must hold `degree` entries per arrival"
        );
        ids_out.clear();
        for (i, peer_attrs) in attrs.iter().enumerate() {
            let id = self
                .overlay
                .add_peer(*peer_attrs, &neighbours[i * degree..(i + 1) * degree])?;
            self.view.on_join(id);
            self.register_joined_peer(id);
            ids_out.push(id);
        }
        for &id in ids_out.iter() {
            self.rejoin_at_neighbours(id);
        }
        if !ids_out.is_empty() {
            self.repair_membership();
        }
        Ok(())
    }

    /// Allocates the protocol state of a peer the overlay just added.
    fn register_joined_peer(&mut self, id: PeerId) {
        debug_assert_eq!(id as usize, self.peers.len());
        self.peers
            .push(PeerNode::new(id, &self.config, SegmentId(0)));
        self.switch_records.push(SwitchRecord::default());
        self.qoe.register_peer(self.period_index);
    }

    /// Points a joiner's playback at its neighbours' current steps (the
    /// paper's join rule, shared by churn joiners and zap arrivals).
    fn rejoin_at_neighbours(&mut self, id: PeerId) {
        let join_point = self
            .overlay
            .neighbors(id)
            .iter()
            .map(|&n| self.peers.peer(n).id_play())
            .max()
            .unwrap_or(SegmentId(0));
        self.peers.peer_mut(id).rejoin_at(join_point);
    }

    /// Repairs neighbour sets after external membership changes
    /// ([`depart_peer`](Self::depart_peer) / [`admit_peer`](Self::admit_peer)).
    ///
    /// The per-period churn path runs this automatically; external drivers
    /// call it once per batch of zap events.
    pub fn repair_membership(&mut self) {
        self.membership
            .repair(&mut self.overlay, self.view.members())
            .expect("membership repair over valid overlay");
    }

    /// Runs `n` scheduling periods through whichever stepping mode is
    /// installed (see [`advance`](Self::advance)).
    pub fn run_periods(&mut self, n: u64) {
        for _ in 0..n {
            self.advance();
        }
    }

    /// Runs `n` scheduling periods through the reference (pre-optimization)
    /// implementation.  Used by equivalence tests and the baseline lane of
    /// the `period_throughput` benchmark.
    pub fn run_periods_reference(&mut self, n: u64) {
        for _ in 0..n {
            self.step_reference();
        }
    }

    /// Runs until every countable node has completed the switch or
    /// `max_periods` have elapsed since the call.  Returns the number of
    /// periods executed.
    pub fn run_until_switched(&mut self, max_periods: u64) -> u64 {
        let mut executed = 0;
        while executed < max_periods && self.switch_completed_secs.is_none() {
            self.advance();
            executed += 1;
        }
        executed
    }

    /// Executes one scheduling period through whichever stepping mode is
    /// installed: period-lockstep ([`step`](Self::step)) by default, the
    /// event-driven mode ([`step_event`](Self::step_event)) once
    /// [`set_network`](Self::set_network) installed a network model.  The
    /// single dispatch point every runner (period loops, the session
    /// manager, experiments) goes through.
    pub fn advance(&mut self) {
        if self.net.is_some() {
            self.step_event();
        } else if self.phase_major {
            self.step_phase_major();
        } else {
            self.step();
        }
    }

    /// True when every countable node has finished the old stream and
    /// prepared the new one.
    pub fn switch_complete(&self) -> bool {
        self.switch_completed_secs.is_some()
    }

    /// Executes one scheduling period (optimized hot path): the shard-major
    /// **fused** pipeline.
    ///
    /// The per-peer phases that used to run as whole-population sweeps —
    /// discovery write, delivery application, playback advance, QoE
    /// observation and switch milestones — execute back to back per shard
    /// chunk while that shard's columns are cache-resident.  Only transfer
    /// resolution stays global (it must see every request batch), and the
    /// counting-sort resolver's stable supplier grouping is re-grouped by
    /// *destination* shard so the apply walk also runs shard-major.  The
    /// resulting reports are byte-identical to the phase-major ordering
    /// ([`step_phase_major`](Self::step_phase_major)) — pinned by the fused
    /// equivalence suite.
    ///
    /// # Panics
    /// Panics if a network model is installed: stepping past in-flight
    /// messages would silently strand them — use [`advance`](Self::advance)
    /// (or [`step_event`](Self::step_event)) instead.
    pub fn step(&mut self) {
        assert!(
            self.net.is_none(),
            "a network model is installed; use advance()/step_event()"
        );
        let period_traffic_before = self.traffic_total;

        // 1. Churn and membership repair.
        self.apply_churn();

        // 2. Source emission.
        self.emit_segments();

        // 3. Buffer-map exchange, discovery and scheduling.  The fused
        //    scheduling chunks compute post-discovery knowledge locally;
        //    the store write lands in the per-shard walk below.
        self.collect_requests_scratch(false);

        // 4. Global transfer resolution (no buffer mutation yet).
        self.resolve_transfers();

        // 5. Shard-major fused walk: delivery application, discovery write,
        //    playback, QoE and milestones per shard run.
        self.period_index += 1;
        self.apply_and_play_fused();

        // 6. Switch-window traffic accounting.
        self.account_switch_window(period_traffic_before);
        self.update_switch_completion();
    }

    /// Executes one scheduling period through the phase-major pipeline the
    /// fused [`step`](Self::step) replaced: each per-peer phase sweeps the
    /// whole population before the next starts.  Byte-identical to the fused
    /// ordering; kept for one release as the fusion oracle (reachable via
    /// [`set_phase_major`](Self::set_phase_major)).
    ///
    /// # Panics
    /// Panics if a network model is installed (see [`step`](Self::step)).
    pub fn step_phase_major(&mut self) {
        assert!(
            self.net.is_none(),
            "a network model is installed; use advance()/step_event()"
        );
        let period_traffic_before = self.traffic_total;
        self.apply_churn();
        self.emit_segments();
        self.collect_requests_scratch(true);
        self.deliver_scratch();
        self.period_index += 1;
        self.advance_playback_and_record();
        self.account_switch_window(period_traffic_before);
        self.update_switch_completion();
    }

    /// Executes one scheduling period through the original straight-line
    /// implementation (fresh allocations, per-id neighbour probing, map-based
    /// transfer resolution).  Behaviour is identical to
    /// [`step`](Self::step); kept as the verification baseline.
    pub fn step_reference(&mut self) {
        let period_traffic_before = self.traffic_total;
        self.apply_churn();
        self.emit_segments();
        let batches = self.collect_requests_reference();
        self.deliver_reference(batches);
        self.period_index += 1;
        self.advance_playback_and_record();
        self.account_switch_window(period_traffic_before);
        self.update_switch_completion();
    }

    /// Executes one scheduling period in the event-driven mode: in-flight
    /// messages from earlier periods land first, the period's churn /
    /// emission / scheduling run at the boundary, granted transfers are
    /// dispatched as scheduled messages, and every message arriving before
    /// the next boundary is applied before playback advances.
    ///
    /// With the ideal network every grant arrives at the boundary that
    /// resolved it, in resolver order — the exact state evolution of
    /// [`step`](Self::step), byte-for-byte (fault draws are skipped
    /// entirely, so no RNG stream moves either).
    ///
    /// # Panics
    /// Panics if no network model is installed.
    pub fn step_event(&mut self) {
        assert!(
            self.net.is_some(),
            "event-driven stepping requires set_network()"
        );
        let period_traffic_before = self.traffic_total;
        let (now, next) = {
            let net = self.net.as_ref().expect("network model installed");
            (
                net.boundary(self.period_index),
                net.boundary(self.period_index + 1),
            )
        };

        // 0. Stragglers due exactly at this boundary are visible to this
        //    period's buffer-map exchange and scheduling.
        self.drain_arrivals(now, true);

        // 1-3. Identical to the period-lockstep step (discovery writes land
        //      immediately: the arrival drain below reads them).
        self.apply_churn();
        self.emit_segments();
        self.collect_requests_scratch(true);

        // 4. Transfer resolution at the boundary; grants become in-flight
        //    messages instead of instant inserts.
        self.dispatch_deliveries(now);

        // 5. Everything arriving strictly inside this period lands before
        //    playback advances.
        self.drain_arrivals(next, false);

        // 6. Playback, milestones and accounting, as in period mode.
        self.period_index += 1;
        self.advance_playback_and_record();
        self.account_switch_window(period_traffic_before);
        self.update_switch_completion();
    }

    /// The event-mode delivery half: applies buffer-map and request-leg
    /// loss to the collected batches, resolves the survivors against the
    /// usual budgets, and schedules each grant's arrival (request leg +
    /// data leg of scaled trace latency, plus jitter) unless the data leg
    /// drops it.
    ///
    /// Loss semantics per leg:
    /// * a lost buffer-map advertisement blinds the requester to that
    ///   supplier for the whole period (all its requests there are
    ///   suppressed before resolution),
    /// * a lost request never reaches the supplier, so it does not charge
    ///   the supplier's outbound budget (later requests may take the slot),
    /// * a lost data message *does* consume the budget the resolver granted
    ///   it — upstream bandwidth spent on a transfer that never lands.
    fn dispatch_deliveries(&mut self, now: SimTime) {
        let tau = self.config.tau_secs;
        for budget in self.scratch.outbound_budget.iter_mut() {
            *budget = 0;
        }
        for i in 0..self.scratch.active.len() {
            let p = self.scratch.active[i] as usize;
            self.scratch.outbound_budget[p] =
                (self.scratch.outbound_rate[p] * tau).floor() as usize;
        }

        let period = self.period_index;
        {
            let net = self.net.as_mut().expect("network model installed");
            if net.config.loss_rate > 0.0 {
                for batch in self.scratch.batches.iter_mut() {
                    let requester = batch.requester;
                    batch.requests.retain(|req| {
                        if net.faults.lost(
                            req.supplier,
                            requester,
                            MessageKind::BufferMap,
                            period,
                            0,
                        ) {
                            net.stats.requests_blinded += 1;
                            return false;
                        }
                        if net.faults.lost(
                            requester,
                            req.supplier,
                            MessageKind::Request,
                            period,
                            req.segment.value(),
                        ) {
                            net.stats.requests_lost += 1;
                            return false;
                        }
                        true
                    });
                }
            }
        }

        {
            let PeriodScratch {
                batches,
                outbound_budget,
                deliveries,
                ..
            } = &mut self.scratch;
            self.resolver.resolve_round_into(
                batches,
                |p| outbound_budget.get(p as usize).copied().unwrap_or(0),
                self.period_index,
                deliveries,
            );
        }

        let ideal = {
            let net = self.net.as_ref().expect("network model installed");
            net.config.is_ideal()
        };
        if ideal {
            // Zero latency: every grant arrives at this same boundary, in
            // resolver order — the queue would round-trip each message
            // through the heap only to pop it straight back out in FIFO
            // order, so apply the arrivals inline (the `net/*` bench pins
            // the event-core overhead this short-circuit buys back).
            for i in 0..self.scratch.deliveries.len() {
                let d = self.scratch.deliveries[i];
                let net = self.net.as_mut().expect("network model installed");
                net.stats.data_sent += 1;
                if self.overlay.graph().is_active(d.requester) {
                    self.peers.buffer_mut(d.requester).insert(d.segment);
                    self.traffic_total.add_data(self.config.segment_bits);
                    net.stats.data_delivered += 1;
                } else {
                    self.traffic_total.add_data(self.config.segment_bits);
                    net.stats.data_stale += 1;
                }
            }
        } else {
            let net = self.net.as_mut().expect("network model installed");
            let latency = self.overlay.latency();
            for i in 0..self.scratch.deliveries.len() {
                let d = self.scratch.deliveries[i];
                net.stats.data_sent += 1;
                if net.config.loss_rate > 0.0
                    && net.faults.lost(
                        d.supplier,
                        d.requester,
                        MessageKind::Data,
                        period,
                        d.segment.value(),
                    )
                {
                    net.stats.data_lost += 1;
                    continue;
                }
                let rtt_ms =
                    net.config.latency_scale * latency.round_trip_ms(d.requester, d.supplier);
                let jitter = net.faults.jitter_ms(
                    d.supplier,
                    d.requester,
                    MessageKind::Data,
                    period,
                    d.segment.value(),
                );
                let arrival = now.saturating_add(SimDuration::from_millis(
                    rtt_ms.round().max(0.0) as u64 + jitter,
                ));
                net.queue.push(
                    arrival,
                    NetMessage {
                        requester: d.requester,
                        supplier: d.supplier,
                        segment: d.segment,
                    },
                );
                net.stats.max_in_flight = net.stats.max_in_flight.max(net.queue.len() as u64);
            }
        }

        // Recycle the request vectors for the next period (as deliver_scratch).
        let PeriodScratch {
            batches,
            request_pool,
            ..
        } = &mut self.scratch;
        for batch in batches.drain(..) {
            let mut requests = batch.requests;
            requests.clear();
            request_pool.push(requests);
        }
    }

    /// Applies every in-flight message with arrival time `<= bound`
    /// (inclusive) or `< bound` (exclusive) to its requester's buffer, in
    /// (arrival time, send sequence) order.  Arrivals for peers that have
    /// since left the overlay are dropped and counted; duplicate arrivals
    /// are idempotent ([`crate::buffer::FifoBuffer::insert`]).  Data bits
    /// are accounted at arrival — the instant period mode accounts them at,
    /// once latency is zero.
    fn drain_arrivals(&mut self, bound: SimTime, inclusive: bool) {
        loop {
            let popped = {
                let net = self.net.as_mut().expect("network model installed");
                if inclusive {
                    net.queue.pop_at_or_before(bound)
                } else {
                    net.queue.pop_before(bound)
                }
            };
            let Some(event) = popped else {
                return;
            };
            let msg = event.payload;
            let net = self.net.as_mut().expect("network model installed");
            if self.overlay.graph().is_active(msg.requester) {
                self.peers.buffer_mut(msg.requester).insert(msg.segment);
                self.traffic_total.add_data(self.config.segment_bits);
                net.stats.data_delivered += 1;
            } else {
                // The receiver zapped away or churned out mid-flight; the
                // bits were still spent on the wire.
                self.traffic_total.add_data(self.config.segment_bits);
                net.stats.data_stale += 1;
            }
        }
    }

    /// Builds the run report.  The per-peer switch records fold into their
    /// [`SwitchStats`] aggregate here — one serial pass in peer order, so
    /// the report is identical across implementations and worker counts and
    /// its size is independent of the peer count.
    pub fn report(&self) -> SystemReport {
        SystemReport {
            scheduler: self.scheduler.name(),
            switch: SwitchStats::from_records(&self.switch_records),
            ratio_samples: self.ratio_samples.clone(),
            traffic_total: self.traffic_total,
            traffic_switch_window: self.traffic_switch_window,
            periods: self.period_index,
            switch_completed_secs: self.switch_completed_secs,
            mem: self.memory_usage(),
            qoe: self.qoe.totals(),
        }
    }

    /// The per-peer protocol-state footprint meter: bytes reserved by the
    /// **active** peers' state (ring / window / sequence array plus the
    /// inline node), aggregated into a [`MemUsage`].
    ///
    /// Deterministic across implementations and execution strategies (it
    /// reads protocol state only — never the scratch arena, whose size
    /// follows the configured parallelism), so it is safe to surface in
    /// [`SystemReport`].  For the full process picture including scratch,
    /// use the [`MemoryFootprint`] impl on the system itself.
    pub fn memory_usage(&self) -> MemUsage {
        let mut usage = MemUsage {
            peer_slots: self.peers.len(),
            ..MemUsage::default()
        };
        // The columns of the sharded store hold exactly the fields of the
        // logical `PeerNode` record, so its size remains the metered
        // per-peer inline stride.
        let inline = std::mem::size_of::<PeerNode>();
        // Shard-major sweep: resolve each shard's buffer column once and
        // index slots directly (the active list is ascending, so each shard
        // is one contiguous run), prefetching the next buffer struct ahead
        // of its `mem_breakdown` reads.  Sums in active order, so the
        // metered totals are byte-identical to the per-id walk.
        let shift = self.peers.shard_shift();
        let mask = self.peers.shard_size() - 1;
        let shards = self.peers.shards();
        // fss-lint: hot-path
        let mut shard_idx = usize::MAX;
        let mut buffers: &[FifoBuffer] = &[];
        for p in self.overlay.active_peers() {
            let shard = (p as usize) >> shift;
            if shard != shard_idx {
                shard_idx = shard;
                buffers = shards[shard].buffers();
            }
            let slot = (p as usize) & mask;
            if let Some(ahead) = buffers.get(slot + WALK_AHEAD) {
                prefetch_read(ahead);
            }
            usage.add_peer(inline, buffers[slot].mem_breakdown());
        }
        // fss-lint: end
        usage
    }

    // ------------------------------------------------------------------
    // internal steps (shared)
    // ------------------------------------------------------------------

    fn account_switch_window(&mut self, period_traffic_before: TrafficCounters) {
        if self.switch_secs.is_some() && self.switch_completed_secs.is_none() {
            let delta = TrafficCounters {
                control_bits: self.traffic_total.control_bits - period_traffic_before.control_bits,
                data_bits: self.traffic_total.data_bits - period_traffic_before.data_bits,
            };
            self.traffic_switch_window.merge(&delta);
        }
    }

    /// Per-period churn, routed through the membership directory: the
    /// departure shuffle reads the view's member list, every joiner's
    /// neighbour set is sampled from the view's candidate list (the same
    /// admission pipeline zap batches use), and the view is kept in sync
    /// event by event so later joiners can attach to earlier ones.
    ///
    /// RNG-compatible with the standalone `ChurnModel::step`: the view's
    /// ascending-id member order is exactly the `active_peers()` collection
    /// order the legacy path sampled from (asserted by the churn and
    /// golden-report test-suites).
    fn apply_churn(&mut self) {
        {
            let Some(churn) = self.churn.as_mut() else {
                return;
            };
            let scratch = &mut self.churn_scratch;
            let view = &mut self.view;
            let overlay = &mut self.overlay;
            debug_assert_eq!(view.len(), overlay.active_count());

            let population = view.len();
            churn
                .step_departures(
                    overlay,
                    view.members(),
                    &self.sources,
                    &mut scratch.eligible,
                    &mut scratch.left,
                )
                .expect("churn departures over valid overlay");
            for &left in &scratch.left {
                view.on_depart(left);
            }

            scratch.joined.clear();
            let join_count = churn.join_count(population);
            for _ in 0..join_count {
                if view.is_empty() {
                    break;
                }
                scratch.neighbours.clear();
                let degree = churn.join_degree.min(view.candidates().len());
                let neighbours = &mut scratch.neighbours;
                let sampler = &mut scratch.sampler;
                let attrs = churn.draw_arrival(|rng| {
                    sample_distinct(view.candidates(), rng, degree, sampler, neighbours)
                });
                let id = overlay
                    .add_peer(attrs, neighbours)
                    .expect("churn joiner over valid overlay");
                view.on_join(id);
                scratch.joined.push(id);
            }
        }

        for &left in &self.churn_scratch.left {
            if (left as usize) < self.switch_records.len() {
                self.switch_records[left as usize].departed = true;
            }
        }
        // Joiners may neighbour each other within the same churn step, so
        // allocate all their protocol state first and only then compute join
        // points from their neighbours' playback positions.  (Indexed loops:
        // register/rejoin take `&mut self`, which cannot overlap a borrow of
        // the scratch's joined list.)
        for i in 0..self.churn_scratch.joined.len() {
            let joined = self.churn_scratch.joined[i];
            self.register_joined_peer(joined);
        }
        for i in 0..self.churn_scratch.joined.len() {
            let joined = self.churn_scratch.joined[i];
            self.rejoin_at_neighbours(joined);
        }
        self.repair_membership();
    }

    fn emit_segments(&mut self) {
        let Some(live) = self.directory.live().copied() else {
            return;
        };
        self.emit_credit += self.config.play_rate * self.config.tau_secs;
        let count = self.emit_credit.floor() as u64;
        self.emit_credit -= count as f64;
        let buffer = self.peers.buffer_mut(live.source_peer);
        for _ in 0..count {
            buffer.insert(self.next_emit);
            self.next_emit = self.next_emit.next();
        }
    }

    fn advance_playback_and_record(&mut self) {
        // QoE telemetry reads the playback state machine *after* each peer's
        // advance — counters only, no RNG, no allocation — so the observed
        // run is bit-for-bit the unobserved one.  Shared by `step` and
        // `step_reference`, which keeps the implementations equivalent.
        let qoe_on = self.qoe.is_enabled();
        if qoe_on {
            self.qoe.begin_period(self.period_index);
        }
        for p in self.overlay.active_peers() {
            let mut peer = self.peers.peer_mut(p);
            let played = peer.advance_playback(&self.config, &self.directory);
            if qoe_on {
                let playback = peer.playback();
                let (started, stalls) = (playback.has_started(), playback.stalls());
                self.qoe.observe(p as usize, started, stalls, played);
            }
        }
        let switch_waiting = self.record_switch_milestones();
        if qoe_on {
            self.qoe.finish_period(switch_waiting);
        }
    }

    /// The per-period switch-milestone pass: updates every countable peer's
    /// milestones, appends the (possibly decimated) ratio sample, and
    /// returns how many countable peers have not completed the switch yet
    /// (the QoE switch-progress gauge; 0 outside a switch window).
    fn record_switch_milestones(&mut self) -> u64 {
        let Some((old_id, new_id)) = self.switch_sessions else {
            return 0;
        };
        let since_switch = self.secs_since_switch();
        let old = *self.directory.get(old_id).expect("old session");
        let new = *self.directory.get(new_id).expect("new session");
        let old_end = old.last_segment.expect("old session closed at switch");
        let qs = self.config.new_source_qs;

        let mut undelivered_sum = 0.0;
        let mut delivered_sum = 0.0;
        let mut counted = 0usize;
        let mut waiting = 0u64;
        for p in self.overlay.active_peers() {
            let record = &mut self.switch_records[p as usize];
            if !record.countable() {
                continue;
            }
            let node = self.peers.peer(p);

            if record.s1_finished_secs.is_none() && node.id_play() > old_end {
                record.s1_finished_secs = Some(since_switch);
            }
            if record.s2_prepared_secs.is_none() && node.prepared_for(&new, qs) {
                record.s2_prepared_secs = Some(since_switch);
            }
            if record.s2_started_secs.is_none() && node.id_play() > new.first_segment {
                record.s2_started_secs = Some(since_switch);
            }
            if !record.completed() {
                waiting += 1;
            }

            // Ratio tracks (Figures 5 and 9).
            let q1 = node.undelivered_in_session(&old, old_end);
            let undelivered_ratio = if record.q0 == 0 {
                0.0
            } else {
                q1 as f64 / record.q0 as f64
            };
            let q2 = node.q2_for(&new, qs);
            let delivered_ratio = (qs - q2) as f64 / qs as f64;
            undelivered_sum += undelivered_ratio;
            delivered_sum += delivered_ratio;
            counted += 1;
        }
        if counted > 0 {
            // Keep-every-k decimation (k = 1 keeps all, byte-identical to
            // the undecimated report); the first sample is always kept.
            self.ratio_periods_seen += 1;
            if (self.ratio_periods_seen - 1).is_multiple_of(self.ratio_keep_every) {
                self.ratio_samples.push(RatioSample {
                    secs: since_switch,
                    undelivered_ratio_s1: undelivered_sum / counted as f64,
                    delivered_ratio_s2: delivered_sum / counted as f64,
                });
            }
        }
        waiting
    }

    fn update_switch_completion(&mut self) {
        if self.switch_secs.is_none() || self.switch_completed_secs.is_some() {
            return;
        }
        let all_done = self
            .switch_records
            .iter()
            .filter(|r| r.countable())
            .all(|r| r.completed());
        let any = self.switch_records.iter().any(|r| r.countable());
        if any && all_done {
            self.switch_completed_secs = Some(self.secs_since_switch());
        }
    }

    // ------------------------------------------------------------------
    // optimized period internals
    // ------------------------------------------------------------------

    fn worker_count(&self) -> usize {
        if cfg!(feature = "parallel") {
            self.parallelism.max(1)
        } else {
            1
        }
    }

    /// Buffer-map gather + discovery + context building + scheduling,
    /// entirely out of the scratch arena.  Fills `self.scratch.batches` in
    /// node order.
    ///
    /// The discovery gather is fused into the scheduling chunks: each chunk
    /// walks its peers' neighbour buffers **once**, records the max observed
    /// id in `observed_max` (chunk ranges partition the active list, so the
    /// parallel writes are disjoint) and builds each scheduling context from
    /// the locally computed post-discovery knowledge.  Discovery writes only
    /// touch the per-peer header — never a buffer — so every gather still
    /// reads pre-discovery state exactly like the reference implementation.
    ///
    /// `write_known` selects when the discovery result lands in the store:
    /// the phase-major and event paths write it here (`true`, before any
    /// delivery), the fused step defers it to the shard-major playback walk
    /// (`false`) where the header line is hot anyway.  Both orderings are
    /// byte-identical because nothing between scheduling and the fused walk
    /// reads session knowledge.
    fn collect_requests_scratch(&mut self, write_known: bool) {
        let capacity = self.overlay.graph().capacity();
        let workers = self.worker_count();
        self.scratch.ensure_capacity(capacity, workers);

        self.scratch.active.clear();
        {
            let overlay = &self.overlay;
            self.scratch.active.extend(overlay.active_peers());
        }
        let active_len = self.scratch.active.len();
        self.scratch.observed_max.clear();
        self.scratch.observed_max.resize(active_len, SegmentId(0));

        // Dense per-peer rate tables, refreshed once per period.
        for i in 0..self.scratch.active.len() {
            let p = self.scratch.active[i] as usize;
            let (inbound, outbound) = self
                .overlay
                .attrs(p as PeerId)
                .map(|a| (a.bandwidth.inbound, a.bandwidth.outbound))
                .unwrap_or((0.0, 0.0));
            self.scratch.inbound_rate[p] = inbound;
            self.scratch.outbound_rate[p] = outbound;
        }

        // Chunk plan: with a sharded store the shards are the chunk unit
        // (each chunk is the shard-local run of the active list); a
        // single-shard store falls back to the legacy even slicing.  One
        // scratch slot per chunk.
        self.plan_chunks(workers);
        let chunk_count = self.scratch.chunks.len();
        self.scratch.ensure_capacity(capacity, chunk_count);

        // Hand the recycled request vectors to the workers that will
        // actually run this period (there may be fewer chunks than worker
        // slots; idle slots must not hoard vectors).
        {
            let PeriodScratch {
                request_pool,
                workers: worker_slots,
                ..
            } = &mut self.scratch;
            let mut next = 0usize;
            while let Some(requests) = request_pool.pop() {
                worker_slots[next % chunk_count].request_pool.push(requests);
                next += 1;
            }
        }

        // Scheduling pass (read-only over peers/overlay/directory; writes
        // only chunk-owned scratch ranges).
        self.run_scheduling_pass();

        // Deferred discovery write for the paths that do not run the fused
        // playback walk.
        if write_known {
            for i in 0..active_len {
                let p = self.scratch.active[i];
                let observed = self.scratch.observed_max[i];
                self.peers
                    .peer_mut(p)
                    .discover_sessions(&self.directory, observed);
            }
        }

        // Merge worker outputs in node order and account control traffic.
        debug_assert!(self.scratch.batches.is_empty());
        let mut control_bits = 0u64;
        {
            let PeriodScratch {
                batches,
                request_pool,
                workers: worker_slots,
                ..
            } = &mut self.scratch;
            for worker in worker_slots.iter_mut() {
                control_bits += worker.control_bits;
                worker.control_bits = 0;
                batches.append(&mut worker.out);
                // Return leftovers so no worker strands vectors across
                // periods (worker/chunk assignment can change every period).
                request_pool.append(&mut worker.request_pool);
            }
        }
        self.traffic_total.add_control(control_bits);
    }

    /// Fills `scratch.chunks` with the `(start, end)` index ranges of the
    /// active list the scheduling pass fans out over.
    ///
    /// With a sharded store the shard-boundary runs are the chunk unit: the
    /// active list is ascending, so each shard's active peers form one
    /// contiguous run, found by binary search on the shard's id bound.  A
    /// run is then **cost-balanced**: any run longer than twice the mean run
    /// length is split into equal contiguous pieces under that cap, so one
    /// densely populated shard (a skewed zap landing, say) cannot serialise
    /// the whole parallel pass behind a single oversized chunk.  The split
    /// is a pure function of the active list and the shard geometry —
    /// deterministic and order-preserving, so merged outputs are unchanged.
    /// A single-shard store falls back to the legacy even slicing over
    /// `workers` chunks.  Always produces at least one (possibly empty)
    /// chunk.
    fn plan_chunks(&mut self, workers: usize) {
        let PeriodScratch { chunks, active, .. } = &mut self.scratch;
        chunks.clear();
        if self.peers.shard_count() > 1 {
            let shift = self.peers.shard_shift();
            let mut runs = 0usize;
            let mut start = 0usize;
            while start < active.len() {
                let shard = (active[start] as usize) >> shift;
                let bound = ((shard as u64) + 1) << shift;
                start += active[start..].partition_point(|&p| (p as u64) < bound);
                runs += 1;
            }
            let cap = (2 * active.len())
                .checked_div(runs)
                .unwrap_or(active.len())
                .max(1);
            let mut start = 0usize;
            while start < active.len() {
                let shard = (active[start] as usize) >> shift;
                let bound = ((shard as u64) + 1) << shift;
                let end = start + active[start..].partition_point(|&p| (p as u64) < bound);
                let len = end - start;
                let pieces = len.div_ceil(cap);
                for k in 0..pieces {
                    chunks.push((start + k * len / pieces, start + (k + 1) * len / pieces));
                }
                start = end;
            }
        } else {
            let (chunk_size, used) = chunk_layout(active.len(), workers);
            for c in 0..used {
                let start = (c * chunk_size).min(active.len());
                let end = (start + chunk_size).min(active.len());
                chunks.push((start, end));
            }
        }
        if chunks.is_empty() {
            chunks.push((0, 0));
        }
    }

    /// Dispatches the per-node scheduling over the planned chunks.  Chunks
    /// are contiguous slices of the active list, so concatenating worker
    /// outputs reproduces the sequential node order exactly; each chunk
    /// writes only its own [`WorkerScratch`] slot, so any [`JobExecutor`]
    /// (the persistent pool, or the in-line serial fallback) yields
    /// identical results.
    fn run_scheduling_pass(&mut self) {
        let executor = &self.executor;
        let PeriodScratch {
            active,
            observed_max,
            chunks,
            workers: worker_slots,
            outbound_rate,
            inbound_rate,
            ..
        } = &mut self.scratch;
        let peers = &self.peers;
        let overlay = &self.overlay;
        let directory = &self.directory;
        let config = &self.config;
        let scheduler: &dyn SegmentScheduler = &*self.scheduler;

        let used = chunks.len();
        if used <= 1 {
            let (start, end) = chunks.first().copied().unwrap_or((0, 0));
            schedule_chunk(
                &active[start..end],
                &mut observed_max[start..end],
                &mut worker_slots[0],
                peers,
                overlay,
                directory,
                config,
                scheduler,
                outbound_rate,
                inbound_rate,
            );
            return;
        }

        let active = &active[..];
        let chunks = &chunks[..];
        let outbound_rate = &outbound_rate[..];
        let inbound_rate = &inbound_rate[..];
        let slots = DisjointSlots::new(&mut worker_slots[..used]);
        let observed = DisjointRanges::new(&mut observed_max[..]);
        let job = move |chunk: usize| {
            let (start, end) = chunks[chunk];
            // SAFETY: chunk indices are unique per execute() run, so each
            // scratch slot is borrowed by exactly one chunk; the chunk plan
            // partitions the active list, so the observed ranges are
            // disjoint.
            let worker = unsafe { slots.slot(chunk) };
            let observed_out = unsafe { observed.range(start, end) };
            schedule_chunk(
                &active[start..end],
                observed_out,
                worker,
                peers,
                overlay,
                directory,
                config,
                scheduler,
                outbound_rate,
                inbound_rate,
            );
        };
        match executor {
            Some(executor) => executor.execute(used, &job),
            None => SerialExecutor.execute(used, &job),
        }
    }

    /// Global transfer resolution out of the scratch arena: dense outbound
    /// budgets instead of a per-period `HashMap`, reusable entry / delivery
    /// buffers inside the resolver, and request-vector recycling.  Fills
    /// `scratch.deliveries` in resolver (supplier-major) order without
    /// touching any peer state — application is the caller's half.
    fn resolve_transfers(&mut self) {
        let tau = self.config.tau_secs;
        for budget in self.scratch.outbound_budget.iter_mut() {
            *budget = 0;
        }
        for i in 0..self.scratch.active.len() {
            let p = self.scratch.active[i] as usize;
            self.scratch.outbound_budget[p] =
                (self.scratch.outbound_rate[p] * tau).floor() as usize;
        }

        {
            let PeriodScratch {
                batches,
                outbound_budget,
                deliveries,
                ..
            } = &mut self.scratch;
            self.resolver.resolve_round_into(
                batches,
                |p| outbound_budget.get(p as usize).copied().unwrap_or(0),
                self.period_index,
                deliveries,
            );
        }

        // Recycle the request vectors for the next period.
        let PeriodScratch {
            batches,
            request_pool,
            ..
        } = &mut self.scratch;
        for batch in batches.drain(..) {
            let mut requests = batch.requests;
            requests.clear();
            request_pool.push(requests);
        }
    }

    /// Transfer resolution plus delivery application in resolver order —
    /// the phase-major pipeline's delivery phase.
    fn deliver_scratch(&mut self) {
        self.resolve_transfers();
        for i in 0..self.scratch.deliveries.len() {
            let d = self.scratch.deliveries[i];
            self.peers.buffer_mut(d.requester).insert(d.segment);
            self.traffic_total.add_data(self.config.segment_bits);
        }
    }

    /// The shard-major fused back half of [`step`](Self::step): delivery
    /// application, discovery write, playback advance, QoE observation and
    /// switch milestones run back to back per shard run of the active list,
    /// while that shard's header and buffer columns are cache-resident.
    ///
    /// Byte-identical to the phase-major ordering because
    /// * deliveries are regrouped **stably** by destination shard, so each
    ///   buffer's insert sequence is unchanged (see
    ///   [`regroup_by_dest_shard`]),
    /// * playback, discovery and milestones read only the peer's own
    ///   columns plus period-start scratch (`observed_max`), never another
    ///   peer's state, and
    /// * the walk is serial and ascending, so QoE observation order and the
    ///   f64 milestone accumulation order are exactly the phase-major ones.
    fn apply_and_play_fused(&mut self) {
        let qoe_on = self.qoe.is_enabled();
        if qoe_on {
            self.qoe.begin_period(self.period_index);
        }

        let shard_count = self.peers.shard_count();
        let shift = self.peers.shard_shift();
        let mask = self.peers.shard_size() - 1;
        if shard_count > 1 {
            let PeriodScratch {
                deliveries,
                dest_counts,
                deliveries_dest,
                ..
            } = &mut self.scratch;
            regroup_by_dest_shard(deliveries, shift, shard_count, dest_counts, deliveries_dest);
        }

        // Switch-milestone inputs, resolved once for the whole walk.
        let since_switch = if self.switch_sessions.is_some() {
            self.secs_since_switch()
        } else {
            0.0
        };
        let switch = self.switch_sessions.map(|(old_id, new_id)| {
            let old = *self.directory.get(old_id).expect("old session");
            let new = *self.directory.get(new_id).expect("new session");
            let old_end = old.last_segment.expect("old session closed at switch");
            (old, new, old_end)
        });
        let qs = self.config.new_source_qs;
        let segment_bits = self.config.segment_bits;

        let config = &self.config;
        let directory = &self.directory;
        let peers = &mut self.peers;
        let qoe = &mut self.qoe;
        let switch_records = &mut self.switch_records;
        let traffic_total = &mut self.traffic_total;
        let scratch = &self.scratch;
        let active = &scratch.active[..];
        let observed_max = &scratch.observed_max[..];
        let (deliveries, dest_counts) = if shard_count > 1 {
            (&scratch.deliveries_dest[..], &scratch.dest_counts[..])
        } else {
            (&scratch.deliveries[..], &[][..])
        };

        let mut undelivered_sum = 0.0;
        let mut delivered_sum = 0.0;
        let mut counted = 0usize;
        let mut waiting = 0u64;
        let mut applied = 0usize;

        // fss-lint: hot-path
        let mut run_start = 0usize;
        while run_start < active.len() {
            let shard_idx = (active[run_start] as usize) >> shift;
            let bound = ((shard_idx as u64) + 1) << shift;
            let run_end = run_start + active[run_start..].partition_point(|&p| (p as u64) < bound);

            let shard_deliveries = if shard_count > 1 {
                let start = if shard_idx == 0 {
                    0
                } else {
                    dest_counts[shard_idx - 1]
                };
                &deliveries[start..dest_counts[shard_idx]]
            } else {
                deliveries
            };
            let (buffers, headers) = peers.shard_mut(shard_idx).columns_mut();

            // Delivery application, destination-shard-local (stable
            // regrouping keeps each requester's insert order = resolver
            // order).
            for (i, d) in shard_deliveries.iter().enumerate() {
                if let Some(ahead) = shard_deliveries.get(i + DELIVERY_AHEAD) {
                    prefetch_read(&buffers[(ahead.requester as usize) & mask]);
                }
                buffers[(d.requester as usize) & mask].insert(d.segment);
                traffic_total.add_data(segment_bits);
            }
            applied += shard_deliveries.len();

            // Discovery write, playback, QoE and milestones per peer while
            // its header line and buffer struct are hot.
            for i in run_start..run_end {
                let p = active[i];
                let slot = (p as usize) & mask;
                if let Some(&ahead) = active.get(i + WALK_AHEAD) {
                    if (ahead as usize) >> shift == shard_idx {
                        let ahead_slot = (ahead as usize) & mask;
                        prefetch_read(&headers[ahead_slot]);
                        prefetch_read(&buffers[ahead_slot]);
                    }
                }
                let header = &mut headers[slot];
                peer::discover_sessions(&mut header.known_sessions, directory, observed_max[i]);
                let known = peer::known_slice(header.known_sessions, directory);
                let buffer = &buffers[slot];
                let played = peer::advance_playback(
                    buffer,
                    &mut header.playback,
                    &mut header.play_credit,
                    known,
                    config,
                );
                if qoe_on {
                    let playback = &header.playback;
                    qoe.observe(
                        p as usize,
                        playback.has_started(),
                        playback.stalls(),
                        played,
                    );
                }
                let Some((old, new, old_end)) = &switch else {
                    continue;
                };
                let record = &mut switch_records[p as usize];
                if !record.countable() {
                    continue;
                }
                let id_play = header.playback.next_play();
                if record.s1_finished_secs.is_none() && id_play > *old_end {
                    record.s1_finished_secs = Some(since_switch);
                }
                let q2 = peer::q2_for(buffer, new, qs);
                if record.s2_prepared_secs.is_none() && q2 == 0 {
                    record.s2_prepared_secs = Some(since_switch);
                }
                if record.s2_started_secs.is_none() && id_play > new.first_segment {
                    record.s2_started_secs = Some(since_switch);
                }
                if !record.completed() {
                    waiting += 1;
                }

                // Ratio tracks (Figures 5 and 9) — ascending-order f64
                // accumulation, as in the phase-major milestone pass.
                let q1 = peer::undelivered_in_session(buffer, id_play, old, *old_end);
                let undelivered_ratio = if record.q0 == 0 {
                    0.0
                } else {
                    q1 as f64 / record.q0 as f64
                };
                let delivered_ratio = (qs - q2) as f64 / qs as f64;
                undelivered_sum += undelivered_ratio;
                delivered_sum += delivered_ratio;
                counted += 1;
            }
            run_start = run_end;
        }
        // fss-lint: end
        debug_assert_eq!(
            applied,
            deliveries.len(),
            "every delivery's requester is active"
        );

        if counted > 0 {
            self.ratio_periods_seen += 1;
            if (self.ratio_periods_seen - 1).is_multiple_of(self.ratio_keep_every) {
                self.ratio_samples.push(RatioSample {
                    secs: since_switch,
                    undelivered_ratio_s1: undelivered_sum / counted as f64,
                    delivered_ratio_s2: delivered_sum / counted as f64,
                });
            }
        }
        if qoe_on {
            self.qoe.finish_period(waiting);
        }
    }

    // ------------------------------------------------------------------
    // reference (pre-optimization) period internals
    // ------------------------------------------------------------------

    fn collect_requests_reference(&mut self) -> Vec<RequestBatch> {
        let active: Vec<PeerId> = self.overlay.active_peers().collect();

        // Discovery pass: a node learns a new session as soon as any
        // neighbour (or its own buffer) holds one of its segments.
        let observed: Vec<(PeerId, SegmentId)> = active
            .iter()
            .map(|&p| {
                let own = self.peers.buffer(p).max_id();
                let neighbours = self
                    .overlay
                    .neighbors(p)
                    .iter()
                    .filter_map(|&n| self.peers.buffer(n).max_id())
                    .max();
                (
                    p,
                    own.into_iter()
                        .chain(neighbours)
                        .max()
                        .unwrap_or(SegmentId(0)),
                )
            })
            .collect();
        for (p, max_seen) in observed {
            self.peers
                .peer_mut(p)
                .discover_sessions(&self.directory, max_seen);
        }

        // Scheduling pass (immutable).
        let mut batches = Vec::with_capacity(active.len());
        for &p in &active {
            let neighbours = self.overlay.neighbors(p);
            if neighbours.is_empty() {
                continue;
            }
            // Buffer-map exchange cost: one 620-bit map per neighbour.
            self.traffic_total
                .add_control(self.config.buffermap_bits * neighbours.len() as u64);

            let inbound = self
                .overlay
                .attrs(p)
                .map(|a| a.bandwidth.inbound)
                .unwrap_or(0.0);
            if inbound <= 0.0 {
                continue;
            }
            let infos: Vec<NeighborInfo<'_>> = neighbours
                .iter()
                .map(|&n| NeighborInfo {
                    peer: n,
                    outbound_rate: self
                        .overlay
                        .attrs(n)
                        .map(|a| a.bandwidth.outbound)
                        .unwrap_or(0.0),
                    buffer: self.peers.buffer(n),
                })
                .collect();
            let Some(ctx) =
                self.peers
                    .peer(p)
                    .build_context(&self.config, &self.directory, inbound, &infos)
            else {
                continue;
            };
            let requests = self.scheduler.schedule(&ctx);
            if requests.is_empty() {
                continue;
            }
            batches.push(RequestBatch {
                requester: p,
                inbound_budget: ctx.inbound_budget(),
                requests,
            });
        }
        batches
    }

    fn deliver_reference(&mut self, batches: Vec<RequestBatch>) {
        let tau = self.config.tau_secs;
        // Outbound budgets out of the dense scratch table, like the
        // optimized path: this was the last per-period `HashMap` anywhere
        // in the period loop.
        self.scratch
            .ensure_capacity(self.overlay.graph().capacity(), 1);
        for budget in self.scratch.outbound_budget.iter_mut() {
            *budget = 0;
        }
        for p in self.overlay.active_peers() {
            let rate = self
                .overlay
                .attrs(p)
                .map(|a| a.bandwidth.outbound)
                .unwrap_or(0.0);
            self.scratch.outbound_budget[p as usize] = (rate * tau).floor() as usize;
        }
        let outbound_budget = &self.scratch.outbound_budget;
        let deliveries = self.resolver.resolve_round_reference(
            &batches,
            |p| outbound_budget.get(p as usize).copied().unwrap_or(0),
            self.period_index,
        );
        for d in deliveries {
            self.peers.buffer_mut(d.requester).insert(d.segment);
            self.traffic_total.add_data(self.config.segment_bits);
        }
    }
}

impl MemoryFootprint for StreamingSystem {
    /// The whole simulated process: every peer slot (including departed
    /// peers, whose state stays allocated), the scratch arena, the
    /// membership view, the switch records and ratio samples.  Unlike
    /// [`SystemReport::mem`] this depends on the configured parallelism
    /// (worker slots) and is *not* surfaced in reports.
    fn heap_bytes(&self) -> usize {
        self.peers.heap_bytes()
            + self.scratch.heap_bytes()
            + self.view.heap_bytes()
            + self.churn_scratch.heap_bytes()
            + vec_bytes(&self.switch_records)
            + vec_bytes(&self.ratio_samples)
            + vec_bytes(&self.sources)
            + self.qoe.heap_bytes()
            + self.net.as_ref().map_or(0, |n| n.heap_bytes())
    }
}

/// Pooled working memory of the directory-routed churn pass.
#[derive(Debug, Default)]
struct ChurnScratch {
    eligible: Vec<PeerId>,
    left: Vec<PeerId>,
    joined: Vec<PeerId>,
    neighbours: Vec<PeerId>,
    sampler: SampleScratch,
}

impl MemoryFootprint for ChurnScratch {
    fn heap_bytes(&self) -> usize {
        vec_bytes(&self.eligible)
            + vec_bytes(&self.left)
            + vec_bytes(&self.joined)
            + vec_bytes(&self.neighbours)
            + self.sampler.heap_bytes()
    }
}

/// Splits `active_len` nodes over at most `workers` contiguous chunks.
///
/// Returns `(chunk_size, chunk_count)`.  Both the request-vector
/// distribution and the thread dispatch derive their layout from this one
/// function so recycled vectors always land in workers that actually run.
fn chunk_layout(active_len: usize, workers: usize) -> (usize, usize) {
    if workers <= 1 || active_len < 2 {
        return (active_len.max(1), 1);
    }
    let chunk_size = active_len.div_ceil(workers);
    (chunk_size, active_len.div_ceil(chunk_size))
}

/// Runs the fused gather + discovery + scheduling pass for one contiguous
/// chunk of the active list.
///
/// Per peer, the neighbour buffers are walked **once**: the walk yields the
/// max advertised id (written to `observed_out`, the chunk's range of the
/// discovery table, and folded with the peer's own buffer into its
/// post-discovery session count) and feeds the same value into the
/// scheduling context, which previously re-gathered it.  The store is never
/// written — discovery results travel through `observed_out` — so the pass
/// stays a pure function of the (immutable) system state plus the worker's
/// own scratch, which is what makes the parallel fan-out trivially
/// deterministic.
// fss-lint: hot-path
#[allow(clippy::too_many_arguments)]
fn schedule_chunk(
    chunk: &[PeerId],
    observed_out: &mut [SegmentId],
    worker: &mut WorkerScratch,
    store: &PeerStore,
    overlay: &Overlay,
    directory: &SessionDirectory,
    config: &GossipConfig,
    scheduler: &dyn SegmentScheduler,
    outbound_rate: &[f64],
    inbound_rate: &[f64],
) {
    debug_assert_eq!(chunk.len(), observed_out.len());
    for (i, &p) in chunk.iter().enumerate() {
        if let Some(&ahead) = chunk.get(i + WALK_AHEAD) {
            store.prefetch_peer(ahead);
        }
        let neighbors = overlay.neighbors(p);

        // One gather serves discovery and the scheduling context.  The
        // discovery fold applies to every active peer — including ones the
        // scheduling skips below — exactly like the standalone pass did.
        let own = store.buffer(p).max_id();
        let mut neighbour_max: Option<SegmentId> = None;
        for (j, &n) in neighbors.iter().enumerate() {
            if let Some(&ahead) = neighbors.get(j + 2) {
                store.prefetch_buffer(ahead);
            }
            let max = store.buffer(n).max_id();
            if max > neighbour_max {
                neighbour_max = max;
            }
        }
        let observed = own.max(neighbour_max).unwrap_or(SegmentId(0));
        observed_out[i] = observed;

        if neighbors.is_empty() {
            continue;
        }
        // Buffer-map exchange cost: one 620-bit map per neighbour.
        worker.control_bits += config.buffermap_bits * neighbors.len() as u64;

        let inbound = inbound_rate[p as usize];
        if inbound <= 0.0 {
            continue;
        }
        // Post-discovery knowledge, computed locally (the store write is
        // deferred to the playback walk).
        let mut known_sessions = store.header(p).known_sessions;
        peer::discover_sessions(&mut known_sessions, directory, observed);

        if !worker.build_context(
            store.peer(p),
            config,
            directory,
            inbound,
            neighbors,
            store,
            outbound_rate,
            known_sessions,
            neighbour_max.unwrap_or(SegmentId(0)),
        ) {
            continue;
        }
        let mut requests = worker.request_pool.pop().unwrap_or_default();
        scheduler.schedule_into(&worker.ctx, &mut worker.sched, &mut requests);
        if requests.is_empty() {
            worker.request_pool.push(requests);
            continue;
        }
        let inbound_budget = worker.ctx.inbound_budget();
        worker.out.push(RequestBatch {
            requester: p,
            inbound_budget,
            requests,
        });
    }
}
// fss-lint: end

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{SchedulingContext, SegmentRequest};
    use fss_overlay::OverlayBuilder;
    use fss_trace::{GeneratorConfig, TraceGenerator};

    /// A simple priority-free scheduler used only by these tests: request
    /// candidates oldest-first, spreading requests across suppliers so no
    /// single supplier is asked for more than its per-period capacity.
    struct GreedyOldest;
    impl SegmentScheduler for GreedyOldest {
        fn name(&self) -> &'static str {
            "greedy-oldest"
        }
        fn schedule(&self, ctx: &SchedulingContext) -> Vec<SegmentRequest> {
            let mut candidates = ctx.candidates.clone();
            crate::directory::sort_by_id(&mut candidates, |c| c.id);
            let mut load: std::collections::HashMap<fss_overlay::PeerId, usize> =
                std::collections::HashMap::new();
            let mut requests = Vec::new();
            for c in candidates {
                if requests.len() >= ctx.inbound_budget() {
                    break;
                }
                let best = c
                    .suppliers
                    .iter()
                    .filter(|s| {
                        let cap = (s.rate * ctx.tau_secs).floor() as usize;
                        load.get(&s.peer).copied().unwrap_or(0) < cap
                    })
                    .min_by(|a, b| {
                        let la = *load.get(&a.peer).unwrap_or(&0) as f64 / a.rate;
                        let lb = *load.get(&b.peer).unwrap_or(&0) as f64 / b.rate;
                        la.partial_cmp(&lb).unwrap()
                    });
                if let Some(best) = best {
                    *load.entry(best.peer).or_default() += 1;
                    requests.push(SegmentRequest {
                        segment: c.id,
                        supplier: best.peer,
                    });
                }
            }
            requests
        }
    }

    fn build_system(nodes: usize, seed: u64) -> StreamingSystem {
        let trace = TraceGenerator::new(GeneratorConfig::sized(nodes, seed)).generate("sys");
        let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
        StreamingSystem::new(
            overlay,
            GossipConfig::paper_default(),
            Box::new(GreedyOldest),
        )
    }

    fn first_two(sys: &StreamingSystem) -> (PeerId, PeerId) {
        let peers: Vec<PeerId> = sys.overlay().active_peers().take(2).collect();
        (peers[0], peers[1])
    }

    #[test]
    fn warmup_reaches_steady_playback() {
        let mut sys = build_system(60, 1);
        let (source, _) = first_two(&sys);
        sys.start_initial_source(source);
        sys.run_periods(40);

        assert_eq!(sys.periods(), 40);
        // Every node should have started playing and be within a few periods
        // of the stream head.
        let head = 40.0 * 10.0;
        let mut started = 0;
        for p in sys.overlay().active_peers() {
            if p == source {
                continue;
            }
            let node = sys.peer(p);
            if node.playback().has_started() {
                started += 1;
                assert!(node.id_play().value() as f64 <= head);
                assert!(
                    node.id_play().value() as f64 >= head - 200.0,
                    "node {p} lags too far: {}",
                    node.id_play()
                );
            }
        }
        assert!(
            started as f64 >= 0.95 * (sys.overlay().active_count() - 1) as f64,
            "only {started} nodes started playback"
        );
        assert!(sys.report().traffic_total.control_bits > 0);
        assert!(sys.report().traffic_total.data_bits > 0);
    }

    #[test]
    fn switch_completes_and_records_milestones() {
        let mut sys = build_system(60, 2);
        let (s1, s2) = first_two(&sys);
        sys.start_initial_source(s1);
        sys.run_periods(40);
        sys.switch_source(s2);
        let executed = sys.run_until_switched(200);
        assert!(executed < 200, "switch never completed");
        assert!(sys.switch_complete());

        let report = sys.report();
        assert_eq!(report.scheduler, "greedy-oldest");
        assert!(report.switch_completed_secs.is_some());
        let countable: Vec<&SwitchRecord> = sys
            .switch_records()
            .iter()
            .filter(|r| r.countable())
            .collect();
        assert!(!countable.is_empty());
        for r in &countable {
            assert!(r.completed());
            let finished = r.s1_finished_secs.unwrap();
            let prepared = r.s2_prepared_secs.unwrap();
            assert!(finished >= 0.0 && prepared >= 0.0);
            if let Some(started) = r.s2_started_secs {
                assert!(started + 1e-9 >= finished.max(prepared) - 1.0);
            }
        }
        // The report's aggregate folds exactly those records.
        assert_eq!(
            report.switch,
            SwitchStats::from_records(sys.switch_records())
        );
        assert_eq!(report.switch.countable_nodes, countable.len());
        assert_eq!(report.switch.completed_nodes, countable.len());
        // The new source is excluded from the averages.
        assert!(!sys.switch_records()[s2 as usize].countable());

        // Ratio samples move in the right directions.
        assert!(!report.ratio_samples.is_empty());
        let first = report.ratio_samples.first().unwrap();
        let last = report.ratio_samples.last().unwrap();
        assert!(last.undelivered_ratio_s1 <= first.undelivered_ratio_s1 + 1e-9);
        assert!(last.delivered_ratio_s2 >= first.delivered_ratio_s2 - 1e-9);
        assert!((last.delivered_ratio_s2 - 1.0).abs() < 1e-9);

        // Communication overhead is on the order of a percent.
        let overhead = report.traffic_switch_window.overhead();
        assert!(overhead > 0.001 && overhead < 0.1, "overhead {overhead}");
    }

    #[test]
    fn dynamic_environment_with_churn_still_completes() {
        let mut sys = build_system(80, 3);
        let (s1, s2) = first_two(&sys);
        sys.start_initial_source(s1);
        sys.run_periods(30);
        sys.set_churn(ChurnModel::paper_default(99));
        sys.switch_source(s2);
        let executed = sys.run_until_switched(300);
        assert!(executed < 300, "switch never completed under churn");

        // Some nodes left, some joined; joiners are not countable.
        assert!(sys.switch_records().len() > 80);
        assert!(sys.switch_records().iter().any(|r| r.departed));
        assert!(sys.switch_records().iter().skip(80).all(|r| !r.countable()));
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let run = || {
            let mut sys = build_system(50, 7);
            let (s1, s2) = first_two(&sys);
            sys.start_initial_source(s1);
            sys.run_periods(25);
            sys.switch_source(s2);
            sys.run_periods(40);
            sys.report()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    /// The tentpole invariant: the scratch-arena hot path produces a report
    /// byte-identical to the original straight-line implementation, across a
    /// warm-up, a source switch and churn.
    #[test]
    fn optimized_step_matches_reference_step() {
        let run = |optimized: bool| {
            let mut sys = build_system(60, 11);
            let (s1, s2) = first_two(&sys);
            sys.start_initial_source(s1);
            if optimized {
                sys.run_periods(30);
            } else {
                sys.run_periods_reference(30);
            }
            sys.set_churn(ChurnModel::paper_default(5));
            sys.switch_source(s2);
            for _ in 0..60 {
                if optimized {
                    sys.step();
                } else {
                    sys.step_reference();
                }
            }
            sys.report()
        };
        let optimized = run(true);
        let reference = run(false);
        assert_eq!(optimized, reference);
    }

    /// Interleaving the two implementations within one run must also agree:
    /// every period starts from identical state either way.
    #[test]
    fn implementations_can_interleave() {
        let mut a = build_system(50, 13);
        let mut b = build_system(50, 13);
        let (s1, s2) = first_two(&a);
        a.start_initial_source(s1);
        b.start_initial_source(s1);
        for round in 0..30u64 {
            if round % 2 == 0 {
                a.step();
                b.step_reference();
            } else {
                a.step_reference();
                b.step();
            }
            if round == 20 {
                a.switch_source(s2);
                b.switch_source(s2);
            }
        }
        assert_eq!(a.report(), b.report());
    }

    /// Regression test: recycled request vectors must never strand in worker
    /// slots that receive no chunk (more workers than chunks), and every
    /// period must return all vectors to the global pool.
    #[cfg(feature = "parallel")]
    #[test]
    fn request_pool_never_strands_in_idle_workers() {
        let mut sys = build_system(20, 23);
        sys.set_parallelism(8); // far more workers than 20 peers need
        let (s1, _) = first_two(&sys);
        sys.start_initial_source(s1);
        let mut pool_high_water = 0usize;
        for period in 0..60 {
            sys.step();
            for (w, worker) in sys.scratch.workers.iter().enumerate() {
                assert!(
                    worker.request_pool.is_empty(),
                    "period {period}: worker {w} kept {} vectors",
                    worker.request_pool.len()
                );
            }
            pool_high_water = pool_high_water.max(sys.scratch.request_pool.len());
        }
        // The pool is bounded by the number of requesting nodes, not by the
        // number of elapsed periods.
        assert!(
            pool_high_water <= sys.overlay().active_count(),
            "pool grew to {pool_high_water} vectors for {} nodes",
            sys.overlay().active_count()
        );
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_sweep_is_byte_identical() {
        let run = |workers: usize| {
            let mut sys = build_system(80, 17);
            sys.set_parallelism(workers);
            assert_eq!(sys.parallelism(), workers.max(1));
            let (s1, s2) = first_two(&sys);
            sys.start_initial_source(s1);
            sys.run_periods(25);
            sys.set_churn(ChurnModel::paper_default(3));
            sys.switch_source(s2);
            sys.run_periods(50);
            sys.report()
        };
        let sequential = run(1);
        for workers in [2, 3, 8] {
            assert_eq!(run(workers), sequential, "workers = {workers}");
        }
    }

    /// The sharding invariant: re-partitioning the peer store changes only
    /// the chunk boundaries of the scheduling pass, never the results —
    /// even when churn grows the population across shard boundaries.
    #[test]
    fn sharded_stepping_is_byte_identical() {
        let run = |shards: usize| {
            let mut sys = build_system(80, 17);
            sys.set_shards(shards);
            assert!(sys.shard_count() >= shards.min(1));
            let (s1, s2) = first_two(&sys);
            sys.start_initial_source(s1);
            sys.run_periods(25);
            sys.set_churn(ChurnModel::paper_default(3));
            sys.switch_source(s2);
            sys.run_periods(50);
            sys.report()
        };
        let single = run(1);
        for shards in [2, 4, 8] {
            assert_eq!(run(shards), single, "shards = {shards}");
        }
    }

    /// The fusion oracle: the shard-major fused pipeline and the phase-major
    /// ordering it replaced produce byte-identical reports across churn, a
    /// source switch and every shard geometry.  Routed through `advance()`
    /// so the `set_phase_major` dispatch is covered too.
    #[test]
    fn fused_step_matches_phase_major() {
        let run = |fused: bool, shards: usize| {
            let mut sys = build_system(80, 31);
            sys.set_shards(shards);
            sys.set_phase_major(!fused);
            let (s1, s2) = first_two(&sys);
            sys.start_initial_source(s1);
            sys.run_periods(25);
            sys.set_churn(ChurnModel::paper_default(5));
            sys.switch_source(s2);
            sys.run_periods(45);
            sys.report()
        };
        for shards in [1, 2, 4, 8] {
            assert_eq!(run(true, shards), run(false, shards), "shards = {shards}");
        }
    }

    /// Interleaving fused and phase-major periods within one run must agree
    /// as well: every period leaves identical state either way (the
    /// deferred discovery write of the fused path is invisible between
    /// periods).
    #[test]
    fn fused_and_phase_major_interleave() {
        let mut a = build_system(50, 37);
        let mut b = build_system(50, 37);
        a.set_shards(4);
        b.set_shards(4);
        let (s1, s2) = first_two(&a);
        a.start_initial_source(s1);
        b.start_initial_source(s1);
        for round in 0..30u64 {
            if round % 2 == 0 {
                a.step();
                b.step_phase_major();
            } else {
                a.step_phase_major();
                b.step();
            }
            if round == 20 {
                a.switch_source(s2);
                b.switch_source(s2);
            }
        }
        assert_eq!(a.report(), b.report());
    }

    /// Satellite: cost-balanced chunk splitting.  A densely populated shard
    /// must not serialise the scheduling pass behind one oversized chunk —
    /// runs longer than twice the mean run length split into equal,
    /// order-preserving pieces under that cap.
    #[test]
    fn plan_chunks_splits_skewed_shard_runs() {
        let mut sys = build_system(200, 3);
        sys.set_shards(8);
        let shard_size = sys.peers.shard_size();
        let shard_count = sys.peers.shard_count();
        assert!(shard_count >= 4, "need a multi-shard geometry");
        assert!(shard_size >= 16);

        // Skewed population: 16 actives packed into shard 0, one straggler
        // in each of the next three shards.
        let base = |s: usize| (s * shard_size) as PeerId;
        sys.scratch.active.clear();
        for i in 0..16 {
            sys.scratch.active.push(base(0) + i as PeerId);
        }
        sys.scratch.active.push(base(1));
        sys.scratch.active.push(base(2));
        sys.scratch.active.push(base(3));
        let total = sys.scratch.active.len();

        sys.plan_chunks(1);
        let chunks = sys.scratch.chunks.clone();

        // Order-preserving partition of the active list.
        let mut expect_start = 0usize;
        for &(start, end) in &chunks {
            assert_eq!(start, expect_start, "chunks must tile in order");
            assert!(end >= start);
            expect_start = end;
        }
        assert_eq!(expect_start, total);

        // 4 runs over 19 actives: cap = 2 * 19 / 4 = 9, so the 16-long
        // shard-0 run must split (into two 8s) and no chunk may exceed the
        // cap.
        let cap = 2 * total / 4;
        assert!(chunks.len() > 4, "skewed run did not split: {chunks:?}");
        for &(start, end) in &chunks {
            assert!(
                end - start <= cap,
                "chunk {start}..{end} exceeds cost cap {cap}"
            );
            // No chunk straddles a shard boundary.
            if end > start {
                let first = sys.scratch.active[start] as usize / shard_size;
                let last = sys.scratch.active[end - 1] as usize / shard_size;
                assert_eq!(first, last, "chunk {start}..{end} straddles shards");
            }
        }

        // A balanced population keeps the one-chunk-per-run plan.
        sys.scratch.active.clear();
        for s in 0..4 {
            for i in 0..4 {
                sys.scratch.active.push(base(s) + i as PeerId);
            }
        }
        sys.plan_chunks(1);
        assert_eq!(sys.scratch.chunks.len(), 4, "{:?}", sys.scratch.chunks);
    }

    /// Sharded stepping must also agree with the straight-line reference
    /// implementation (which never consults the chunk plan).
    #[test]
    fn sharded_step_matches_reference_step() {
        let run = |optimized: bool| {
            let mut sys = build_system(90, 29);
            sys.set_shards(4);
            let (s1, s2) = first_two(&sys);
            sys.start_initial_source(s1);
            for _ in 0..30 {
                if optimized {
                    sys.step();
                } else {
                    sys.step_reference();
                }
            }
            sys.set_churn(ChurnModel::paper_default(7));
            sys.switch_source(s2);
            for _ in 0..40 {
                if optimized {
                    sys.step();
                } else {
                    sys.step_reference();
                }
            }
            sys.report()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn external_depart_and_admit_mirror_churn() {
        let mut sys = build_system(30, 8);
        let (source, viewer) = first_two(&sys);
        sys.start_initial_source(source);
        sys.run_periods(20);

        sys.depart_peer(viewer).unwrap();
        sys.repair_membership();
        assert!(!sys.overlay().graph().is_active(viewer));
        assert!(sys.switch_records()[viewer as usize].departed);

        let neighbours: Vec<PeerId> = sys.overlay().active_peers().take(5).collect();
        let attrs = *sys.overlay().attrs(source).unwrap();
        let joined = sys.admit_peer(attrs, &neighbours).unwrap();
        sys.repair_membership();
        assert!(sys.overlay().graph().is_active(joined));
        // The arrival follows its neighbours' playback steps, like a churn
        // joiner: its join point is at (or past) the slowest neighbour.
        let min_neighbour_play = neighbours
            .iter()
            .map(|&n| sys.peer(n).id_play())
            .min()
            .unwrap();
        assert!(sys.peer(joined).playback().join_point() >= min_neighbour_play);
        sys.run_periods(5); // the system keeps running with the newcomer
    }

    /// The batched zap hooks must behave like per-peer depart/admit plus one
    /// repair pass, and arrivals within a batch may neighbour each other.
    #[test]
    fn batched_zap_hooks_mirror_single_peer_calls() {
        let mut sys = build_system(40, 9);
        let (source, _) = first_two(&sys);
        sys.start_initial_source(source);
        sys.run_periods(20);

        let leavers: Vec<PeerId> = sys
            .overlay()
            .active_peers()
            .filter(|&p| p != source)
            .take(4)
            .collect();
        sys.depart_batch(&leavers).unwrap();
        for &p in &leavers {
            assert!(!sys.overlay().graph().is_active(p));
            assert!(sys.switch_records()[p as usize].departed);
        }
        // Membership was repaired: every active node keeps its min degree.
        let min_degree = sys.overlay().config().min_degree;
        for p in sys.overlay().active_peers().collect::<Vec<_>>() {
            assert!(sys.overlay().neighbors(p).len() >= min_degree.min(3));
        }

        // Admit a batch in which the second arrival neighbours the first.
        let attrs = *sys.overlay().attrs(source).unwrap();
        let hosts: Vec<PeerId> = sys.overlay().active_peers().take(5).collect();
        let first_id = sys.overlay().graph().capacity() as PeerId;
        let batch = vec![(attrs, hosts.clone()), (attrs, vec![hosts[0], first_id])];
        let ids = sys.admit_batch(&batch).unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], first_id);
        for &id in &ids {
            assert!(sys.overlay().graph().is_active(id));
        }
        assert!(sys.overlay().neighbors(ids[1]).contains(&ids[0]));
        // Empty batches are no-ops.
        sys.depart_batch(&[]).unwrap();
        assert!(sys.admit_batch(&[]).unwrap().is_empty());
        sys.run_periods(5);
    }

    /// The report-surfaced memory meter: counts active peers, reports a
    /// positive per-peer footprint, and the compact layout's saving over
    /// the legacy (u64-ring / u32-seq) layout meets the ≥ 40 % target.
    #[test]
    fn memory_meter_tracks_active_peer_state() {
        let mut sys = build_system(60, 31);
        let (s1, _) = first_two(&sys);
        sys.start_initial_source(s1);
        sys.run_periods(40);
        let mem = sys.report().mem;
        assert_eq!(mem.active_peers, sys.overlay().active_count());
        assert_eq!(mem.peer_slots, 60);
        assert!(mem.bytes_per_peer() > 0.0);
        assert!(mem.max_peer_bytes >= mem.peer_bytes / mem.active_peers as u64);
        assert!(
            mem.reduction_vs_legacy() >= 0.40,
            "compact layout must save ≥ 40% vs the legacy layout, got {:.1}%",
            100.0 * mem.reduction_vs_legacy()
        );
        // The full-system footprint covers at least the peer state, and the
        // breakdown components sum into the per-peer bytes.
        use crate::mem::MemoryFootprint;
        assert!(sys.heap_bytes() as u64 >= mem.peer_bytes);
        assert!(mem.ring_bytes + mem.window_bytes + mem.seq_bytes <= mem.peer_bytes);
    }

    /// The directory invariant: the membership view mirrors the overlay's
    /// active set exactly — in ascending-id (`active_peers()`) order —
    /// through churn, batched zaps and single-peer admits alike.
    #[test]
    fn membership_view_stays_in_sync_with_the_overlay() {
        let mut sys = build_system(60, 19);
        let (source, _) = first_two(&sys);
        sys.start_initial_source(source);
        let check = |sys: &StreamingSystem| {
            let active: Vec<PeerId> = sys.overlay().active_peers().collect();
            assert_eq!(sys.membership_view().members(), &active[..]);
            assert_eq!(sys.membership_view().candidates(), &active[..]);
        };
        check(&sys);
        sys.set_churn(ChurnModel::paper_default(3));
        for _ in 0..15 {
            sys.step();
            check(&sys);
        }
        // Batched zap traffic keeps the view in sync too.
        let leavers: Vec<PeerId> = sys
            .overlay()
            .active_peers()
            .filter(|&p| p != source)
            .take(5)
            .collect();
        sys.depart_batch(&leavers).unwrap();
        check(&sys);
        let attrs = *sys.overlay().attrs(source).unwrap();
        let hosts: Vec<PeerId> = sys.overlay().active_peers().take(4).collect();
        let mut flat = Vec::new();
        for _ in 0..3 {
            flat.extend_from_slice(&hosts);
        }
        let mut ids = Vec::new();
        sys.admit_batch_grouped(&[attrs; 3], &flat, hosts.len(), &mut ids)
            .unwrap();
        assert_eq!(ids.len(), 3);
        check(&sys);
        sys.run_periods(5);
        check(&sys);
    }

    /// A bounded (partial) view keeps its candidate list capped and live
    /// while the member list stays exact.
    #[test]
    fn bounded_view_survives_churn() {
        use crate::directory::ViewConfig;
        let mut sys = build_system(80, 23);
        let (source, _) = first_two(&sys);
        sys.start_initial_source(source);
        sys.configure_view(ViewConfig {
            candidate_bound: Some(12),
            seed: 5,
        });
        sys.set_churn(ChurnModel::paper_default(9));
        for _ in 0..20 {
            sys.step();
            let view = sys.membership_view();
            assert_eq!(view.len(), sys.overlay().active_count());
            assert!(view.candidates().len() <= 12);
            for &c in view.candidates() {
                assert!(
                    sys.overlay().graph().is_active(c),
                    "candidate {c} is not live"
                );
            }
        }
        assert!(sys.membership_view().staleness() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "sources cannot depart")]
    fn departing_a_source_panics() {
        let mut sys = build_system(20, 6);
        let (s1, _) = first_two(&sys);
        sys.start_initial_source(s1);
        let _ = sys.depart_peer(s1);
    }

    #[test]
    #[should_panic(expected = "initial source already started")]
    fn double_initial_source_panics() {
        let mut sys = build_system(20, 4);
        let (a, b) = first_two(&sys);
        sys.start_initial_source(a);
        sys.start_initial_source(b);
    }

    #[test]
    #[should_panic(expected = "live session")]
    fn switch_without_initial_source_panics() {
        let mut sys = build_system(20, 5);
        let (p, _) = first_two(&sys);
        sys.switch_source(p);
    }

    /// A scheduler whose request stream can be shut off mid-run, starving
    /// every buffer: started peers drain what they hold and then stall.
    struct FaucetScheduler {
        open: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }
    impl SegmentScheduler for FaucetScheduler {
        fn name(&self) -> &'static str {
            "faucet"
        }
        fn schedule(&self, ctx: &SchedulingContext) -> Vec<SegmentRequest> {
            if self.open.load(std::sync::atomic::Ordering::Relaxed) {
                GreedyOldest.schedule(ctx)
            } else {
                Vec::new()
            }
        }
    }

    /// Induced buffer starvation produces *exact* stall accounting: every
    /// started non-source peer begins exactly one episode, the stalled
    /// gauge holds at that count for the whole starved window, no episode
    /// ends while starved, and recovery closes exactly as many episodes as
    /// began — with durations covering at least the starved window.
    #[test]
    fn starvation_stall_accounting_is_exact() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let open = Arc::new(AtomicBool::new(true));
        let trace = TraceGenerator::new(GeneratorConfig::sized(30, 3)).generate("faucet");
        let overlay = OverlayBuilder::paper_default().build(&trace).unwrap();
        let mut sys = StreamingSystem::new(
            overlay,
            GossipConfig::paper_default(),
            Box::new(FaucetScheduler { open: open.clone() }),
        );
        let source = sys.overlay().active_peers().next().unwrap();
        sys.start_initial_source(source);
        sys.run_periods(30);

        // Sources hold what they emit, so they never stall; the exact
        // stall population is every *other* started peer.
        let started: u64 = sys
            .overlay()
            .active_peers()
            .filter(|&p| p != source && sys.peer(p).playback().has_started())
            .count() as u64;
        assert!(started > 0, "warmup must start playback");
        assert_eq!(sys.qoe().latest().unwrap().stalled, 0, "no stalls yet");

        // Cut every request and drain the buffers dry.
        open.store(false, Ordering::Relaxed);
        let mut begins = 0u64;
        let mut ends = 0u64;
        let step = |sys: &mut StreamingSystem, begins: &mut u64, ends: &mut u64| {
            sys.step();
            let row = *sys.qoe().latest().unwrap();
            *begins += row.stall_begins;
            *ends += row.stall_ends;
            row
        };
        let mut fully_stalled = false;
        for _ in 0..40 {
            let row = step(&mut sys, &mut begins, &mut ends);
            if row.stalled == started {
                fully_stalled = true;
                break;
            }
        }
        assert!(fully_stalled, "starvation never stalled every started peer");
        assert_eq!(
            begins, started,
            "each started peer begins exactly one episode"
        );
        assert_eq!(ends, 0, "no episode can end while starved");

        // Hold the starved window: the gauge is pinned at `started`, no new
        // begins or ends, and every peer misses the same per-period play
        // budget — so the missed-opportunity counter repeats exactly.
        const HOLD: u64 = 5;
        let reference = step(&mut sys, &mut begins, &mut ends);
        assert_eq!(reference.stalled, started);
        assert!(reference.stalled_segments > 0);
        for _ in 1..HOLD {
            let row = step(&mut sys, &mut begins, &mut ends);
            assert_eq!(row.stalled, started);
            assert_eq!(row.stall_begins, 0);
            assert_eq!(row.stall_ends, 0);
            assert_eq!(row.stalled_segments, reference.stalled_segments);
        }
        assert_eq!(begins, started);
        assert_eq!(ends, 0);
        let totals_starved = sys.qoe().totals();

        // Reopen the faucet: playback resumes and closes every episode.
        open.store(true, Ordering::Relaxed);
        let mut recovered = false;
        for _ in 0..250 {
            let row = step(&mut sys, &mut begins, &mut ends);
            if row.stalled == 0 {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "playback never recovered after reopening");
        assert_eq!(begins, started, "recovery must not begin new episodes");
        assert_eq!(ends, started, "every episode ends exactly once");
        let totals = sys.qoe().totals();
        assert_eq!(totals.stall_events - totals_starved.stall_events, started);
        assert!(
            totals.stall_periods - totals_starved.stall_periods >= started * HOLD,
            "episode durations must cover the starved window"
        );
        assert!(totals.continuity().unwrap() < 1.0);
    }

    // ------------------------------------------------------------------
    // event-driven stepping mode
    // ------------------------------------------------------------------

    /// Runs `periods` on a fresh churned system with an optional network
    /// model, stepping through `advance()`, and returns it.
    fn run_with_network(net: Option<NetworkConfig>, periods: u64) -> StreamingSystem {
        let mut sys = build_system(120, 0xE7E7);
        let source = sys.overlay().active_peers().next().unwrap();
        sys.set_churn(ChurnModel::new(0.03, 0.03, 5, 0xC0FFEE));
        if let Some(config) = net {
            sys.set_network(config);
        }
        sys.start_initial_source(source);
        sys.run_periods(periods / 2);
        let target = sys
            .overlay()
            .active_peers()
            .filter(|&p| p != source)
            .nth(10)
            .unwrap();
        sys.switch_source(target);
        sys.run_periods(periods - periods / 2);
        sys
    }

    #[test]
    fn ideal_event_mode_matches_period_mode_byte_for_byte() {
        let period = run_with_network(None, 40).report();
        let event = run_with_network(Some(NetworkConfig::ideal()), 40).report();
        assert_eq!(period, event);
    }

    #[test]
    fn ideal_event_mode_skips_every_fault_draw() {
        let sys = run_with_network(Some(NetworkConfig::ideal()), 30);
        let stats = sys.network_stats();
        assert!(stats.data_sent > 0);
        assert_eq!(stats.data_sent, stats.data_delivered);
        assert_eq!(stats.data_lost, 0);
        assert_eq!(stats.requests_lost + stats.requests_blinded, 0);
        assert_eq!(stats.data_stale, 0);
        assert_eq!(sys.network().unwrap().in_flight(), 0);
    }

    #[test]
    fn lossy_event_mode_is_deterministic_and_drops_data() {
        let config = NetworkConfig::lossy(0.15, 0xBAD);
        let a = run_with_network(Some(config), 40);
        let b = run_with_network(Some(config), 40);
        assert_eq!(a.report(), b.report());
        assert_eq!(a.network_stats(), b.network_stats());

        let stats = a.network_stats();
        assert!(stats.data_lost > 0, "15% loss must drop something");
        assert!(stats.requests_lost + stats.requests_blinded > 0);
        let ideal = run_with_network(Some(NetworkConfig::ideal()), 40);
        assert!(
            a.report().traffic_total.data_bits < ideal.report().traffic_total.data_bits,
            "loss must reduce delivered data traffic"
        );
        // Every sent message is accounted exactly once.
        assert_eq!(
            stats.data_sent,
            stats.data_lost
                + stats.data_delivered
                + stats.data_stale
                + a.network().unwrap().in_flight() as u64
        );
    }

    #[test]
    fn latency_defers_arrivals_across_period_boundaries() {
        // Scale the trace RTTs far past τ so every transfer spans at least
        // one boundary: the first scheduling period completes with data in
        // flight and none delivered.
        let mut sys = build_system(80, 0x11AA);
        let source = sys.overlay().active_peers().next().unwrap();
        sys.set_network(NetworkConfig::delayed(50.0, 0));
        sys.start_initial_source(source);
        sys.run_periods(2);
        let after_two = sys.network_stats();
        assert!(after_two.data_sent > 0, "grants must be dispatched");
        assert!(
            sys.network().unwrap().in_flight() > 0,
            "scaled latency must leave messages in flight at the boundary"
        );
        sys.run_periods(60);
        let stats = sys.network_stats();
        assert!(
            stats.data_delivered > 0,
            "delayed messages must eventually land"
        );
        assert!(stats.max_in_flight >= after_two.data_sent.min(1));
        // Jitter alone must also defer nothing incorrectly: totals conserve.
        assert_eq!(
            stats.data_sent,
            stats.data_delivered + stats.data_stale + sys.network().unwrap().in_flight() as u64
        );
    }

    #[test]
    #[should_panic(expected = "use advance()/step_event()")]
    fn period_step_refuses_to_strand_in_flight_messages() {
        let mut sys = build_system(40, 0x5151);
        let source = sys.overlay().active_peers().next().unwrap();
        sys.set_network(NetworkConfig::ideal());
        sys.start_initial_source(source);
        sys.step();
    }

    #[test]
    #[should_panic(expected = "event-driven stepping requires")]
    fn event_step_requires_a_network_model() {
        let mut sys = build_system(40, 0x5152);
        let source = sys.overlay().active_peers().next().unwrap();
        sys.start_initial_source(source);
        sys.step_event();
    }

    #[test]
    fn clear_network_reverts_to_period_stepping() {
        let mut sys = build_system(40, 0x5153);
        let source = sys.overlay().active_peers().next().unwrap();
        sys.set_network(NetworkConfig::ideal());
        sys.start_initial_source(source);
        sys.run_periods(5);
        sys.clear_network();
        assert!(sys.network().is_none());
        sys.run_periods(5);
        assert_eq!(sys.periods(), 10);
        assert_eq!(sys.network_stats(), NetStats::default());
    }
}
