//! Streaming QoE event recording on the playback hot path.
//!
//! The paper's headline claims — fast switch completion, uninterrupted
//! playback under churn — are *time-resolved* phenomena, so the recorder
//! turns the per-peer playback state machine into cheap counter-only events
//! **while the simulation runs**:
//!
//! * **startup** — the first period in which a peer's playback starts
//!   (`Q` consecutive segments buffered); its startup delay is the whole
//!   number of periods since the peer joined,
//! * **stall begin / stall end** — a started peer entering (first period
//!   with missed play opportunities) and leaving (first later period that
//!   plays without missing) a stall episode, with the episode duration in
//!   periods,
//! * **continuity** — segments played vs play opportunities missed, per
//!   period,
//! * **switch progress** — how many switch-countable peers have not yet
//!   completed the source switch, per period.
//!
//! Events accumulate into one [`PeriodSample`] row per period plus
//! cumulative [`QoeTotals`]; the recorder keeps **only the latest row**
//! (memory O(peers), independent of run length) — bounded timelines over
//! the rows live in `fss-metrics`, which higher layers feed once per period.
//! The event path consumes no RNG and allocates nothing in steady state
//! (event buffers are pre-reserved; enforced by the counting-allocator
//! suite in `fss-bench`), so enabling it cannot change any simulated
//! result — only add observations.
//!
//! Sources are observed like every other peer; they hold every segment they
//! emit, so they start immediately and never stall.  A peer that departs
//! mid-stall simply stops being observed: its open episode never produces a
//! stall-end event (mirroring how a real player's session trace ends).

use crate::mem::{vec_bytes, MemoryFootprint};
use serde::{Deserialize, Serialize};

/// Per-peer QoE observation state, indexed by `PeerId` like the switch
/// records (one entry per ever-allocated peer slot; ids are never reused).
#[derive(Debug, Clone, Copy, Default)]
struct PeerQoe {
    /// Period at which the peer joined (0 for the initial population).
    birth_period: u64,
    /// `PlaybackState::stalls()` at the last observation — the delta against
    /// it is the number of play opportunities missed this period.
    last_stalls: u64,
    /// Period at which the current stall episode began.
    stall_from: u64,
    /// Whether playback had started at the last observation.
    started: bool,
    /// Whether the peer is currently inside a stall episode.
    stalled: bool,
}

/// One period's QoE counters for one channel — the row a bounded timeline
/// aggregates.  All fields are plain counters so rows merge by addition
/// (and max for the gauges) without floating-point order sensitivity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodSample {
    /// Period index this row describes (1-based: the first `step()` produces
    /// period 1).
    pub period: u64,
    /// Active peers observed this period (including sources).
    pub viewers: u64,
    /// Peers whose playback had started by the end of this period.
    pub started: u64,
    /// Playback startups (first frame) this period.
    pub startups: u64,
    /// Stall episodes that began this period.
    pub stall_begins: u64,
    /// Stall episodes that ended this period.
    pub stall_ends: u64,
    /// Peers inside a stall episode at the end of this period.
    pub stalled: u64,
    /// Segments played across all observed peers this period.
    pub played: u64,
    /// Play opportunities missed (stall ticks) across all observed peers
    /// this period.
    pub stalled_segments: u64,
    /// Switch-countable peers that had not completed the source switch by
    /// the end of this period (0 outside a switch window).
    pub switch_waiting: u64,
}

impl PeriodSample {
    /// Fraction of play opportunities met this period: `1.0` means perfectly
    /// continuous playback, `None` when no peer had anything to play.
    pub fn continuity(&self) -> Option<f64> {
        let opportunities = self.played + self.stalled_segments;
        (opportunities > 0).then(|| self.played as f64 / opportunities as f64)
    }
}

/// Cumulative QoE counters over a whole run — the O(1)-size aggregate
/// surfaced in `SystemReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QoeTotals {
    /// Periods observed with telemetry enabled.
    pub periods: u64,
    /// Playback startups (first frames).
    pub startups: u64,
    /// Sum of startup delays, in whole periods.
    pub startup_delay_periods: u64,
    /// Completed stall episodes.
    pub stall_events: u64,
    /// Sum of completed stall-episode durations, in whole periods.
    pub stall_periods: u64,
    /// Segments played across all observed peers.
    pub played: u64,
    /// Play opportunities missed across all observed peers.
    pub stalled_segments: u64,
    /// Most peers simultaneously inside a stall episode in any period.
    pub peak_stalled: u64,
}

impl QoeTotals {
    /// Run-wide playback continuity (`None` before anything played).
    pub fn continuity(&self) -> Option<f64> {
        let opportunities = self.played + self.stalled_segments;
        (opportunities > 0).then(|| self.played as f64 / opportunities as f64)
    }

    /// Mean startup delay in periods (`None` before the first startup).
    pub fn mean_startup_periods(&self) -> Option<f64> {
        (self.startups > 0).then(|| self.startup_delay_periods as f64 / self.startups as f64)
    }
}

/// Counter-only QoE event recorder driven from the playback pass of
/// `StreamingSystem::step` (and, identically, `step_reference`).
///
/// The recorder owns no aggregation beyond the current period: callers read
/// [`latest`](Self::latest) plus the per-period event buffers
/// ([`startup_delays_periods`](Self::startup_delays_periods),
/// [`stall_durations_periods`](Self::stall_durations_periods)) after each
/// step and feed whatever bounded structure they maintain.
#[derive(Debug)]
pub struct QoeRecorder {
    enabled: bool,
    peers: Vec<PeerQoe>,
    /// The row being accumulated during the current playback pass.
    current: PeriodSample,
    /// The last completed row (`current` of the previous period).
    latest: Option<PeriodSample>,
    totals: QoeTotals,
    /// Startup delays (whole periods) of startups in the current period.
    startup_delays: Vec<u64>,
    /// Durations (whole periods) of stall episodes ended in the current
    /// period.
    stall_durations: Vec<u64>,
}

impl QoeRecorder {
    /// Creates an enabled recorder with room for `capacity` peer slots.
    /// Event buffers are pre-reserved to the same capacity so the steady
    /// state never allocates.
    pub fn with_capacity(capacity: usize) -> Self {
        QoeRecorder {
            enabled: true,
            peers: vec![PeerQoe::default(); capacity],
            current: PeriodSample::default(),
            latest: None,
            totals: QoeTotals::default(),
            startup_delays: Vec::with_capacity(capacity),
            stall_durations: Vec::with_capacity(capacity),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns event recording on or off.  Disabling keeps the accumulated
    /// totals; only new periods go unobserved.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Allocates the observation slot of a peer joining at `period`.  Also
    /// keeps the event buffers large enough that per-period pushes never
    /// allocate (joins already allocate protocol state, so growing here is
    /// free of steady-state cost).
    pub fn register_peer(&mut self, period: u64) {
        self.peers.push(PeerQoe {
            birth_period: period,
            ..PeerQoe::default()
        });
        let need = self.peers.len();
        if self.startup_delays.capacity() < need {
            self.startup_delays
                .reserve(need - self.startup_delays.len());
        }
        if self.stall_durations.capacity() < need {
            self.stall_durations
                .reserve(need - self.stall_durations.len());
        }
    }

    /// Opens the row of `period`, clearing the per-period event buffers.
    pub fn begin_period(&mut self, period: u64) {
        self.current = PeriodSample {
            period,
            ..PeriodSample::default()
        };
        self.startup_delays.clear();
        self.stall_durations.clear();
    }

    /// Observes one peer after its playback advanced this period.
    ///
    /// `started` / `stalls` are the peer's post-advance
    /// `PlaybackState::has_started()` / `stalls()`; `played` is the number
    /// of segments it played this period.
    ///
    /// Callers must observe active peers in **ascending id order** exactly
    /// once per period, between `begin_period` and `finish_period`.  The
    /// fused shard-major walk preserves this by visiting shard runs of the
    /// (ascending) active list in order, so its rows are byte-identical to
    /// the phase-major sweep's.  Reads only the peer's own slot and the
    /// current row — never another peer's state — which is what lets the
    /// fused pipeline interleave it with delivery application.
    #[inline]
    pub fn observe(&mut self, peer: usize, started: bool, stalls: u64, played: u64) {
        let period = self.current.period;
        let state = &mut self.peers[peer];
        let row = &mut self.current;
        row.viewers += 1;
        row.played += played;

        if started && !state.started {
            state.started = true;
            row.startups += 1;
            self.startup_delays
                .push(period.saturating_sub(state.birth_period));
        }
        if started {
            row.started += 1;
        }

        let missed = stalls.saturating_sub(state.last_stalls);
        state.last_stalls = stalls;
        row.stalled_segments += missed;
        if missed > 0 {
            if !state.stalled {
                state.stalled = true;
                state.stall_from = period;
                row.stall_begins += 1;
            }
        } else if played > 0 && state.stalled {
            // A period that plays without missing ends the episode; a period
            // with nothing to do (no play budget) leaves it open.
            state.stalled = false;
            row.stall_ends += 1;
            self.stall_durations
                .push(period.saturating_sub(state.stall_from));
        }
        if state.stalled {
            row.stalled += 1;
        }
    }

    /// Closes the current row: stamps the switch-progress gauge, folds the
    /// row into the totals and publishes it as [`latest`](Self::latest).
    pub fn finish_period(&mut self, switch_waiting: u64) {
        self.current.switch_waiting = switch_waiting;
        let row = self.current;
        self.totals.periods += 1;
        self.totals.startups += row.startups;
        self.totals.startup_delay_periods += self.startup_delays.iter().sum::<u64>();
        self.totals.stall_events += row.stall_ends;
        self.totals.stall_periods += self.stall_durations.iter().sum::<u64>();
        self.totals.played += row.played;
        self.totals.stalled_segments += row.stalled_segments;
        self.totals.peak_stalled = self.totals.peak_stalled.max(row.stalled);
        self.latest = Some(row);
    }

    /// The last completed period's row (`None` before the first observed
    /// period).
    pub fn latest(&self) -> Option<&PeriodSample> {
        self.latest.as_ref()
    }

    /// Cumulative counters over every observed period.
    pub fn totals(&self) -> QoeTotals {
        self.totals
    }

    /// Startup delays (whole periods) of the startups in the last observed
    /// period.
    pub fn startup_delays_periods(&self) -> &[u64] {
        &self.startup_delays
    }

    /// Durations (whole periods) of the stall episodes that ended in the
    /// last observed period.
    pub fn stall_durations_periods(&self) -> &[u64] {
        &self.stall_durations
    }
}

impl MemoryFootprint for QoeRecorder {
    fn heap_bytes(&self) -> usize {
        vec_bytes(&self.peers) + vec_bytes(&self.startup_delays) + vec_bytes(&self.stall_durations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observe_period(
        rec: &mut QoeRecorder,
        period: u64,
        obs: &[(usize, bool, u64, u64)],
    ) -> PeriodSample {
        rec.begin_period(period);
        for &(peer, started, stalls, played) in obs {
            rec.observe(peer, started, stalls, played);
        }
        rec.finish_period(0);
        *rec.latest().unwrap()
    }

    #[test]
    fn startup_is_reported_once_with_its_delay() {
        let mut rec = QoeRecorder::with_capacity(2);
        let row = observe_period(&mut rec, 1, &[(0, false, 0, 0), (1, false, 0, 0)]);
        assert_eq!((row.startups, row.started), (0, 0));
        let row = observe_period(&mut rec, 2, &[(0, true, 0, 2), (1, false, 0, 0)]);
        assert_eq!((row.startups, row.started), (1, 1));
        assert_eq!(rec.startup_delays_periods(), &[2]);
        // Started stays started: no second startup event.
        let row = observe_period(&mut rec, 3, &[(0, true, 0, 2), (1, true, 0, 2)]);
        assert_eq!((row.startups, row.started), (1, 2));
        assert_eq!(rec.startup_delays_periods(), &[3]);
        assert_eq!(rec.totals().startups, 2);
        assert_eq!(rec.totals().startup_delay_periods, 5);
    }

    #[test]
    fn one_stall_episode_yields_one_begin_one_end_and_the_exact_duration() {
        let mut rec = QoeRecorder::with_capacity(1);
        observe_period(&mut rec, 1, &[(0, true, 0, 2)]);
        // Misses opportunities over periods 2..=4 (cumulative stalls 1,3,4).
        let row = observe_period(&mut rec, 2, &[(0, true, 1, 1)]);
        assert_eq!(
            (row.stall_begins, row.stalled, row.stalled_segments),
            (1, 1, 1)
        );
        let row = observe_period(&mut rec, 3, &[(0, true, 3, 0)]);
        assert_eq!(
            (row.stall_begins, row.stalled, row.stalled_segments),
            (0, 1, 2)
        );
        observe_period(&mut rec, 4, &[(0, true, 4, 1)]);
        // A no-budget period (nothing played, nothing missed) keeps the
        // episode open...
        let row = observe_period(&mut rec, 5, &[(0, true, 4, 0)]);
        assert_eq!((row.stall_ends, row.stalled), (0, 1));
        // ...and the first clean playing period closes it: 4 periods long
        // (began at 2, ended at 6).
        let row = observe_period(&mut rec, 6, &[(0, true, 4, 2)]);
        assert_eq!((row.stall_ends, row.stalled), (1, 0));
        assert_eq!(rec.stall_durations_periods(), &[4]);
        let totals = rec.totals();
        assert_eq!(totals.stall_events, 1);
        assert_eq!(totals.stall_periods, 4);
        assert_eq!(totals.stalled_segments, 4);
        assert_eq!(totals.peak_stalled, 1);
    }

    #[test]
    fn continuity_counts_played_against_missed_opportunities() {
        let mut rec = QoeRecorder::with_capacity(2);
        let row = observe_period(&mut rec, 1, &[(0, true, 1, 3), (1, true, 0, 4)]);
        assert_eq!(row.played, 7);
        assert_eq!(row.stalled_segments, 1);
        assert_eq!(row.continuity(), Some(7.0 / 8.0));
        assert_eq!(rec.totals().continuity(), Some(7.0 / 8.0));
        let empty = PeriodSample::default();
        assert_eq!(empty.continuity(), None);
    }

    #[test]
    fn disabled_recorder_keeps_existing_totals() {
        let mut rec = QoeRecorder::with_capacity(1);
        observe_period(&mut rec, 1, &[(0, true, 0, 2)]);
        let before = rec.totals();
        rec.set_enabled(false);
        assert!(!rec.is_enabled());
        assert_eq!(rec.totals(), before);
    }

    #[test]
    fn joiners_measure_startup_delay_from_their_birth_period() {
        let mut rec = QoeRecorder::with_capacity(1);
        observe_period(&mut rec, 1, &[(0, true, 0, 2)]);
        rec.register_peer(5);
        let row = observe_period(&mut rec, 7, &[(0, true, 0, 2), (1, true, 0, 1)]);
        assert_eq!(row.startups, 1);
        assert_eq!(rec.startup_delays_periods(), &[2]);
    }
}
