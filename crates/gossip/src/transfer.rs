//! Bandwidth-constrained transfer resolution.
//!
//! Schedulers decide *what to ask from whom*; this module decides what
//! actually gets delivered once every node's requests meet the physical
//! constraints:
//!
//! * a requester can receive at most `⌊I·τ⌋` segments per period (its inbound
//!   budget), and
//! * a supplier can send at most `⌊o·τ⌋` segments per period (its outbound
//!   budget), shared among **all** neighbours requesting from it.
//!
//! Contention at a supplier is resolved round-robin across requesters, each
//! requester's own requests being served in the priority order its scheduler
//! produced.  Requests that do not fit are simply dropped; the requester will
//! re-evaluate next period, as in the real pull protocol.
//!
//! # Hot-path representation
//!
//! The resolver used to build a `BTreeMap<supplier, BTreeMap<requester,
//! VecDeque<segment>>>` every period.  The optimized path instead flattens
//! all requests into one reusable entry vector and groups it by `(supplier,
//! requester, submission order)` — which reproduces the `BTreeMap` iteration
//! order exactly — then walks supplier/requester groups in place.  On the
//! system hot path (one batch per node, in ascending node order) the
//! entries arrive already `(requester, submission)`-sorted, so the grouping
//! is a **stable counting sort bucketed by supplier** — `O(E + S)` instead
//! of the previous `O(E log E)` comparison sort, the deliver-phase fix from
//! the ROADMAP.  Out-of-order or duplicate-requester inputs (possible
//! through the public API, never produced by the system) fall back to the
//! comparison sort.  All buffers are retained across calls, so steady-state
//! resolution performs no heap allocation.
//! [`TransferResolver::resolve_round_reference`] keeps the original
//! map-based implementation; the test-suite asserts both produce identical
//! deliveries.

use crate::hasher::FxHashSet;
use crate::scheduler::SegmentRequest;
use crate::segment::SegmentId;
use fss_overlay::PeerId;
use std::collections::{BTreeMap, VecDeque};

/// The requests one node issues in one period.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RequestBatch {
    /// The requesting node.
    pub requester: PeerId,
    /// Its inbound budget for this period, in whole segments.
    pub inbound_budget: usize,
    /// Requests in decreasing priority order.
    pub requests: Vec<SegmentRequest>,
}

/// One segment delivery that actually happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredSegment {
    /// The node that receives the segment.
    pub requester: PeerId,
    /// The node that sent it.
    pub supplier: PeerId,
    /// The delivered segment.
    pub segment: SegmentId,
}

/// How a supplier's outbound capacity is enforced across its requesters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CapacityModel {
    /// The supplier's per-period outbound budget is **shared** among all
    /// requesters (strict physical model; contention makes some requests
    /// fail).  Used by the bandwidth-model ablation: it reproduces the
    /// paper's remark that "most nodes' data delivery rate cannot catch the
    /// media play rate", but over long horizons the starvation lets early
    /// segments fall out of every FIFO buffer.
    Shared,
    /// The supplier can serve **each** requesting neighbour up to its
    /// outbound budget (per-link model): receivers and availability become
    /// the binding constraints.  This is the default; outbound rates still
    /// bound every link and still drive the schedulers' `O1`/`O2`
    /// computation, matching how the paper uses them.
    #[default]
    PerLink,
}

/// One flattened request in the resolver's working set.
#[derive(Debug, Clone, Copy)]
struct Entry {
    supplier: PeerId,
    requester: PeerId,
    /// Global submission index; preserves each requester's priority order
    /// under the (unstable) sort because it makes keys unique.
    seq: u32,
    segment: SegmentId,
}

/// Resolves one period's requests against supplier and requester budgets.
///
/// The resolver owns reusable working buffers, so resolution methods take
/// `&mut self`; construction is cheap and the buffers grow to a steady-state
/// high-water mark.
#[derive(Debug, Clone, Default)]
pub struct TransferResolver {
    model: CapacityModel,
    /// Flattened, deduplicated, budget-truncated requests.
    entries: Vec<Entry>,
    /// Per-requester `(cursor, end)` ranges of the supplier group being
    /// served round-robin (Shared model).
    round_robin: Vec<(usize, usize)>,
    /// Snapshot of round-robin indices for one serving pass.
    pass: Vec<usize>,
    /// Requester ids seen while flattening (duplicate detection).
    requesters: Vec<PeerId>,
    /// Counting-sort scratch: per-supplier counts, then running offsets.
    supplier_offsets: Vec<usize>,
    /// Counting-sort scratch: entries regrouped by supplier.
    grouped: Vec<Entry>,
}

impl TransferResolver {
    /// Creates a resolver with the default (per-link) capacity model.
    pub fn new() -> Self {
        TransferResolver::default()
    }

    /// Creates a resolver with an explicit capacity model.
    pub fn with_model(model: CapacityModel) -> Self {
        TransferResolver {
            model,
            ..TransferResolver::default()
        }
    }

    /// The capacity model in use.
    pub fn model(&self) -> CapacityModel {
        self.model
    }

    /// Resolves `batches` given each supplier's outbound budget, treating all
    /// requesters of a supplier with the same (fixed) round-robin order.
    ///
    /// `outbound_budget(peer)` must return the supplier's whole-segment
    /// budget for this period.  The returned deliveries are deterministic for
    /// identical inputs.
    pub fn resolve<F>(
        &mut self,
        batches: &[RequestBatch],
        outbound_budget: F,
    ) -> Vec<DeliveredSegment>
    where
        F: Fn(PeerId) -> usize,
    {
        self.resolve_round(batches, outbound_budget, 0)
    }

    /// Like [`resolve`](Self::resolve), but rotates the round-robin starting
    /// position by `round` so that over successive periods no requester is
    /// systematically served last at an overloaded supplier.
    pub fn resolve_round<F>(
        &mut self,
        batches: &[RequestBatch],
        outbound_budget: F,
        round: u64,
    ) -> Vec<DeliveredSegment>
    where
        F: Fn(PeerId) -> usize,
    {
        let mut deliveries = Vec::new();
        self.resolve_round_into(batches, outbound_budget, round, &mut deliveries);
        deliveries
    }

    /// Allocation-free resolution: writes the deliveries into `out` (cleared
    /// first), reusing the resolver's internal buffers.
    ///
    /// Duplicate `(requester, segment)` requests collapse onto the first
    /// listed supplier, exactly like the reference resolver — including
    /// across batches when a requester appears more than once (the system
    /// emits one batch per node, so the cross-batch pass is skipped on the
    /// hot path).
    // fss-lint: hot-path
    pub fn resolve_round_into<F>(
        &mut self,
        batches: &[RequestBatch],
        outbound_budget: F,
        round: u64,
        out: &mut Vec<DeliveredSegment>,
    ) where
        F: Fn(PeerId) -> usize,
    {
        out.clear();
        self.entries.clear();
        self.requesters.clear();
        let mut seq = 0u32;
        let mut requesters_ascending = true;
        for batch in batches {
            if let Some(&last) = self.requesters.last() {
                requesters_ascending &= batch.requester > last;
            }
            self.requesters.push(batch.requester);
            let batch_start = self.entries.len();
            for req in batch.requests.iter().take(batch.inbound_budget) {
                // Collapse duplicate segments within the batch: the first
                // listed supplier wins, matching the reference resolver.
                if self.entries[batch_start..]
                    .iter()
                    .any(|e| e.segment == req.segment)
                {
                    continue;
                }
                self.entries.push(Entry {
                    supplier: req.supplier,
                    requester: batch.requester,
                    seq,
                    segment: req.segment,
                });
                seq += 1;
            }
        }

        // The target order — (supplier asc, requester asc, submission
        // order) — reproduces the reference implementation's nested-
        // BTreeMap iteration order.  On the hot path batches arrive one per
        // node in ascending node order, so the flat entries are already
        // (requester, submission)-sorted and a stable counting sort
        // bucketed by supplier yields the target order in O(E + S); it
        // declines pathologically sparse supplier-id ranges (see
        // `bucket_by_supplier`), in which case the comparison sort below
        // takes over.
        let bucketed = requesters_ascending && self.bucket_by_supplier();
        if !bucketed {
            // Slow path: out-of-order batches (public API only) may also
            // repeat a requester, where the reference resolver dedups
            // (requester, segment) globally, first submission winning.
            if !requesters_ascending {
                self.requesters.sort_unstable();
                if self.requesters.windows(2).any(|w| w[0] == w[1]) {
                    self.entries
                        .sort_unstable_by_key(|e| (e.requester, e.segment, e.seq));
                    self.entries.dedup_by_key(|e| (e.requester, e.segment));
                }
            }
            // The unique `seq` makes the key total so the unstable
            // (allocation-free) sort is deterministic.
            self.entries
                .sort_unstable_by_key(|e| (e.supplier, e.requester, e.seq));
        }

        let mut group_start = 0;
        while group_start < self.entries.len() {
            let supplier = self.entries[group_start].supplier;
            let mut group_end = group_start + 1;
            while group_end < self.entries.len() && self.entries[group_end].supplier == supplier {
                group_end += 1;
            }
            let budget = outbound_budget(supplier);
            match self.model {
                CapacityModel::PerLink => {
                    Self::serve_per_link(&self.entries[group_start..group_end], budget, out);
                }
                CapacityModel::Shared => {
                    // Build the ascending requester sub-groups.
                    self.round_robin.clear();
                    let mut i = group_start;
                    while i < group_end {
                        let requester = self.entries[i].requester;
                        let sub_start = i;
                        while i < group_end && self.entries[i].requester == requester {
                            i += 1;
                        }
                        self.round_robin.push((sub_start, i));
                    }
                    let offset =
                        (round as usize).wrapping_add(supplier as usize) % self.round_robin.len();
                    let mut budget = budget;
                    while budget > 0 && !self.round_robin.is_empty() {
                        let len = self.round_robin.len();
                        self.pass.clear();
                        self.pass.extend(0..len);
                        self.pass.rotate_left(offset % len);
                        let mut progressed = false;
                        for pi in 0..self.pass.len() {
                            if budget == 0 {
                                break;
                            }
                            let ri = self.pass[pi];
                            let (cursor, end) = self.round_robin[ri];
                            if cursor < end {
                                let e = self.entries[cursor];
                                out.push(DeliveredSegment {
                                    requester: e.requester,
                                    supplier: e.supplier,
                                    segment: e.segment,
                                });
                                self.round_robin[ri].0 += 1;
                                budget -= 1;
                                progressed = true;
                            }
                        }
                        if !progressed {
                            break;
                        }
                        self.round_robin.retain(|&(cursor, end)| cursor < end);
                    }
                }
            }
            group_start = group_end;
        }
    }
    // fss-lint: end

    /// Stable counting sort of `entries` bucketed by supplier.  Returns
    /// `false` (entries untouched) when the bucket table would dwarf the
    /// entry count — the caller's comparison sort handles that better.
    ///
    /// Precondition: entries are `(requester, seq)`-sorted, which the
    /// ascending-batch hot path guarantees; stability then makes the result
    /// exactly `(supplier, requester, seq)`-sorted.  Runs in `O(E + S)`
    /// where `S` is the highest supplier id in use; the scratch buffers are
    /// reused across periods, so steady-state calls do not allocate.  On
    /// the system hot path `S` is the peer capacity — the same order as the
    /// dense per-peer tables the period loop already sweeps.  The sparsity
    /// guard declines inputs whose supplier ids are far above the entry
    /// count (arbitrary through the public API; on the hot path only after
    /// extreme id growth from very long churn/zapping runs, where the
    /// comparison sort's `O(E log E)` is the cheaper trade anyway).
    fn bucket_by_supplier(&mut self) -> bool {
        let Some(max_supplier) = self.entries.iter().map(|e| e.supplier).max() else {
            return true; // no entries, nothing to group
        };
        // Guard on the id itself before computing `+ 1`: on 32-bit targets
        // `PeerId::MAX as usize + 1` would overflow.
        let max_supplier = max_supplier as usize;
        if max_supplier
            >= 64usize
                .saturating_mul(self.entries.len())
                .saturating_add(1024)
        {
            return false;
        }
        let buckets = max_supplier + 1;
        self.supplier_offsets.clear();
        self.supplier_offsets.resize(buckets, 0);
        for e in &self.entries {
            self.supplier_offsets[e.supplier as usize] += 1;
        }
        // Counts become exclusive running offsets.
        let mut running = 0usize;
        for slot in self.supplier_offsets.iter_mut() {
            let count = *slot;
            *slot = running;
            running += count;
        }
        // Stable scatter into the grouped buffer, then adopt it.
        self.grouped.clear();
        self.grouped.resize(self.entries.len(), self.entries[0]);
        for i in 0..self.entries.len() {
            let e = self.entries[i];
            let slot = &mut self.supplier_offsets[e.supplier as usize];
            self.grouped[*slot] = e;
            *slot += 1;
        }
        std::mem::swap(&mut self.entries, &mut self.grouped);
        true
    }

    /// Serves one supplier's group under the per-link model: each requester
    /// sub-group gets up to `budget` segments in priority order.
    fn serve_per_link(group: &[Entry], budget: usize, out: &mut Vec<DeliveredSegment>) {
        let mut i = 0;
        while i < group.len() {
            let requester = group[i].requester;
            let mut served = 0;
            while i < group.len() && group[i].requester == requester {
                if served < budget {
                    let e = group[i];
                    out.push(DeliveredSegment {
                        requester: e.requester,
                        supplier: e.supplier,
                        segment: e.segment,
                    });
                    served += 1;
                }
                i += 1;
            }
        }
    }

    /// The original map-based implementation, kept as the behavioural
    /// reference: the optimized path must produce byte-identical deliveries.
    /// Used by `StreamingSystem::step_reference` and the equivalence tests.
    pub fn resolve_round_reference<F>(
        &self,
        batches: &[RequestBatch],
        outbound_budget: F,
        round: u64,
    ) -> Vec<DeliveredSegment>
    where
        F: Fn(PeerId) -> usize,
    {
        // Per-supplier queues: supplier -> requester -> pending segments in
        // priority order.  BTreeMaps keep iteration deterministic.
        let mut queues: BTreeMap<PeerId, BTreeMap<PeerId, VecDeque<SegmentId>>> = BTreeMap::new();
        let mut duplicate_guard: FxHashSet<(PeerId, SegmentId)> = FxHashSet::default();

        for batch in batches {
            for req in batch.requests.iter().take(batch.inbound_budget) {
                if duplicate_guard.insert((batch.requester, req.segment)) {
                    queues
                        .entry(req.supplier)
                        .or_default()
                        .entry(batch.requester)
                        .or_default()
                        .push_back(req.segment);
                }
            }
        }

        let mut deliveries = Vec::new();
        for (supplier, mut per_requester) in queues {
            let per_supplier_budget = outbound_budget(supplier);
            if self.model == CapacityModel::PerLink {
                // Each link is independently capped at the supplier's rate.
                for (requester, queue) in per_requester {
                    for segment in queue.into_iter().take(per_supplier_budget) {
                        deliveries.push(DeliveredSegment {
                            requester,
                            supplier,
                            segment,
                        });
                    }
                }
                continue;
            }
            let mut budget = per_supplier_budget;
            // Fixed rotation of the requester order for this supplier and
            // round, so scarcity is shared fairly across periods.
            let initial: Vec<PeerId> = per_requester.keys().copied().collect();
            let offset = if initial.is_empty() {
                0
            } else {
                (round as usize).wrapping_add(supplier as usize) % initial.len()
            };
            // Round-robin over requesters until the budget or the queues run
            // out.
            while budget > 0 {
                let mut progressed = false;
                let mut requesters: Vec<PeerId> = per_requester.keys().copied().collect();
                if !requesters.is_empty() {
                    let k = offset % requesters.len();
                    requesters.rotate_left(k);
                }
                for requester in requesters {
                    if budget == 0 {
                        break;
                    }
                    if let Some(queue) = per_requester.get_mut(&requester) {
                        if let Some(segment) = queue.pop_front() {
                            deliveries.push(DeliveredSegment {
                                requester,
                                supplier,
                                segment,
                            });
                            budget -= 1;
                            progressed = true;
                        }
                        if queue.is_empty() {
                            per_requester.remove(&requester);
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
        deliveries
    }
}

/// Stable counting sort of `deliveries` into `out`, bucketed by destination
/// (requester) shard: `shard = requester >> shard_shift`.
///
/// The resolver emits deliveries supplier-major, so applying them directly
/// scatters writes across every destination shard.  The fused period walk
/// instead applies each shard's deliveries while that shard's columns are
/// cache-resident, which requires regrouping by destination first.
/// **Stability is the correctness keystone**: within one requester all
/// deliveries keep their resolver order, so the per-buffer insert sequence —
/// the only order the simulated state can observe — is unchanged.
///
/// `dest_counts` is caller-pooled workspace; on return, `dest_counts[s]` is
/// the **end** offset of shard `s`'s run in `out` (so run `s` spans
/// `dest_counts[s - 1]..dest_counts[s]`, with 0 for `s == 0`).
// fss-lint: hot-path
pub fn regroup_by_dest_shard(
    deliveries: &[DeliveredSegment],
    shard_shift: u32,
    shard_count: usize,
    dest_counts: &mut Vec<usize>,
    out: &mut Vec<DeliveredSegment>,
) {
    dest_counts.clear();
    dest_counts.resize(shard_count, 0);
    for d in deliveries {
        dest_counts[(d.requester as usize) >> shard_shift] += 1;
    }
    let mut offset = 0usize;
    for count in dest_counts.iter_mut() {
        let run = *count;
        *count = offset;
        offset += run;
    }
    out.clear();
    out.resize(
        deliveries.len(),
        DeliveredSegment {
            requester: 0,
            supplier: 0,
            segment: SegmentId(0),
        },
    );
    for d in deliveries {
        let cursor = &mut dest_counts[(d.requester as usize) >> shard_shift];
        out[*cursor] = *d;
        *cursor += 1;
    }
}
// fss-lint: end

#[cfg(test)]
mod tests {
    use super::*;

    fn req(segment: u64, supplier: PeerId) -> SegmentRequest {
        SegmentRequest {
            segment: SegmentId(segment),
            supplier,
        }
    }

    fn batch(requester: PeerId, budget: usize, requests: Vec<SegmentRequest>) -> RequestBatch {
        RequestBatch {
            requester,
            inbound_budget: budget,
            requests,
        }
    }

    fn segments_for(deliveries: &[DeliveredSegment], requester: PeerId) -> Vec<u64> {
        deliveries
            .iter()
            .filter(|d| d.requester == requester)
            .map(|d| d.segment.value())
            .collect()
    }

    /// Runs both implementations and asserts byte-identical deliveries.
    fn resolve_checked<F>(
        mut resolver: TransferResolver,
        batches: &[RequestBatch],
        outbound_budget: F,
        round: u64,
    ) -> Vec<DeliveredSegment>
    where
        F: Fn(PeerId) -> usize,
    {
        let reference = resolver.resolve_round_reference(batches, &outbound_budget, round);
        let optimized = resolver.resolve_round(batches, &outbound_budget, round);
        assert_eq!(
            optimized, reference,
            "dense resolver diverged from reference"
        );
        optimized
    }

    #[test]
    fn everything_fits_when_budgets_are_ample() {
        let batches = vec![
            batch(1, 10, vec![req(100, 9), req(101, 9)]),
            batch(2, 10, vec![req(102, 9)]),
        ];
        let deliveries = resolve_checked(TransferResolver::new(), &batches, |_| 100, 0);
        assert_eq!(deliveries.len(), 3);
        assert_eq!(segments_for(&deliveries, 1), vec![100, 101]);
        assert_eq!(segments_for(&deliveries, 2), vec![102]);
        assert!(deliveries.iter().all(|d| d.supplier == 9));
    }

    #[test]
    fn supplier_budget_is_shared_round_robin() {
        // Supplier 9 can only send 3 segments; two requesters each want 3.
        let batches = vec![
            batch(1, 10, vec![req(1, 9), req(2, 9), req(3, 9)]),
            batch(2, 10, vec![req(4, 9), req(5, 9), req(6, 9)]),
        ];
        let deliveries = resolve_checked(
            TransferResolver::with_model(CapacityModel::Shared),
            &batches,
            |_| 3,
            0,
        );
        assert_eq!(deliveries.len(), 3);
        // Round-robin: both requesters are served at least once, in their own
        // priority order, and nobody hogs the whole budget.
        let r1 = segments_for(&deliveries, 1);
        let r2 = segments_for(&deliveries, 2);
        assert!(!r1.is_empty() && !r2.is_empty());
        assert!(r1.len() <= 2 && r2.len() <= 2);
        assert!(r1.iter().zip([1, 2, 3]).all(|(a, b)| *a == b));
        assert!(r2.iter().zip([4, 5, 6]).all(|(a, b)| *a == b));
    }

    #[test]
    fn rotation_shares_scarcity_across_rounds() {
        // Supplier 9 can send a single segment per round; three requesters
        // compete.  Over three rounds each requester is served exactly once.
        let batches = vec![
            batch(1, 10, vec![req(1, 9)]),
            batch(2, 10, vec![req(2, 9)]),
            batch(3, 10, vec![req(3, 9)]),
        ];
        let mut served: Vec<PeerId> = Vec::new();
        for round in 0..3 {
            let deliveries = resolve_checked(
                TransferResolver::with_model(CapacityModel::Shared),
                &batches,
                |_| 1,
                round,
            );
            assert_eq!(deliveries.len(), 1);
            served.push(deliveries[0].requester);
        }
        served.sort_unstable();
        assert_eq!(served, vec![1, 2, 3]);
    }

    #[test]
    fn per_link_model_serves_each_requester_up_to_the_supplier_rate() {
        let mut resolver = TransferResolver::with_model(CapacityModel::PerLink);
        assert_eq!(resolver.model(), CapacityModel::PerLink);
        assert_eq!(TransferResolver::new().model(), CapacityModel::PerLink);
        // Supplier 9 has rate 2; both requesters want 3 segments from it.
        let batches = vec![
            batch(1, 10, vec![req(1, 9), req(2, 9), req(3, 9)]),
            batch(2, 10, vec![req(4, 9), req(5, 9), req(6, 9)]),
        ];
        let deliveries = resolver.resolve(&batches, |_| 2);
        assert_eq!(deliveries.len(), 4);
        assert_eq!(segments_for(&deliveries, 1), vec![1, 2]);
        assert_eq!(segments_for(&deliveries, 2), vec![4, 5]);
    }

    #[test]
    fn requester_inbound_budget_truncates_low_priority_requests() {
        let batches = vec![batch(
            1,
            2,
            vec![req(10, 5), req(11, 6), req(12, 7), req(13, 8)],
        )];
        let deliveries = resolve_checked(TransferResolver::new(), &batches, |_| 100, 0);
        assert_eq!(segments_for(&deliveries, 1), vec![10, 11]);
    }

    #[test]
    fn duplicate_requests_for_same_segment_collapse() {
        let batches = vec![batch(1, 10, vec![req(10, 5), req(10, 6), req(11, 5)])];
        let deliveries = resolve_checked(TransferResolver::new(), &batches, |_| 100, 0);
        assert_eq!(deliveries.len(), 2);
        assert_eq!(segments_for(&deliveries, 1), vec![10, 11]);
        // The duplicate went to the first-listed supplier.
        assert_eq!(deliveries[0].supplier, 5);
    }

    #[test]
    fn duplicate_requesters_across_batches_collapse_like_the_reference() {
        // The same requester split over two batches asking for overlapping
        // segments: the reference resolver dedups (requester, segment)
        // globally; the optimized path must match.
        let batches = vec![
            batch(1, 10, vec![req(10, 5), req(11, 5)]),
            batch(1, 10, vec![req(10, 6), req(12, 6)]),
            batch(2, 10, vec![req(10, 6)]),
        ];
        let deliveries = resolve_checked(TransferResolver::new(), &batches, |_| 100, 0);
        // Requester 1 receives segment 10 exactly once, from the
        // first-listed supplier (5).
        assert_eq!(segments_for(&deliveries, 1), vec![10, 11, 12]);
        assert_eq!(
            deliveries
                .iter()
                .find(|d| d.requester == 1 && d.segment == SegmentId(10))
                .unwrap()
                .supplier,
            5
        );
        // Requester 2's own request for segment 10 is unaffected.
        assert_eq!(segments_for(&deliveries, 2), vec![10]);
    }

    #[test]
    fn descending_batches_match_the_reference_without_duplicates() {
        // Requesters arrive out of order (impossible on the system hot path,
        // legal through the public API): the comparison-sort fallback must
        // still reproduce the reference's (supplier, requester) order.
        let batches = vec![
            batch(9, 10, vec![req(1, 3), req(2, 4)]),
            batch(4, 10, vec![req(3, 3), req(4, 5)]),
            batch(6, 10, vec![req(5, 4), req(6, 3)]),
        ];
        let deliveries = resolve_checked(TransferResolver::new(), &batches, |_| 10, 0);
        assert_eq!(deliveries.len(), 6);
        // Groups come out supplier-ascending, requester-ascending within.
        let order: Vec<(PeerId, PeerId)> = deliveries
            .iter()
            .map(|d| (d.supplier, d.requester))
            .collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
    }

    #[test]
    fn bucketed_hot_path_handles_sparse_high_supplier_ids() {
        // Ascending requesters (hot path) with widely spaced supplier ids
        // exercise the counting-sort buckets.
        let batches = vec![
            batch(1, 10, vec![req(1, 250), req(2, 0), req(3, 99)]),
            batch(5, 10, vec![req(4, 99), req(5, 250)]),
            batch(7, 10, vec![req(6, 0)]),
        ];
        let deliveries = resolve_checked(TransferResolver::new(), &batches, |_| 10, 0);
        assert_eq!(deliveries.len(), 6);
        let suppliers: Vec<PeerId> = deliveries.iter().map(|d| d.supplier).collect();
        assert_eq!(suppliers, vec![0, 0, 99, 99, 250, 250]);
    }

    #[test]
    fn sparse_supplier_ids_fall_back_to_the_comparison_sort() {
        // An ascending batch naming an astronomically high supplier id must
        // not size a counting-sort bucket table to that id — the sparsity
        // guard routes it to the comparison sort, same deliveries.
        let batches = vec![
            batch(1, 10, vec![req(1, PeerId::MAX), req(2, 3)]),
            batch(2, 10, vec![req(3, PeerId::MAX), req(4, 3)]),
        ];
        let deliveries = resolve_checked(TransferResolver::new(), &batches, |_| 10, 0);
        assert_eq!(deliveries.len(), 4);
        let suppliers: Vec<PeerId> = deliveries.iter().map(|d| d.supplier).collect();
        assert_eq!(suppliers, vec![3, 3, PeerId::MAX, PeerId::MAX]);
    }

    #[test]
    fn zero_budgets_deliver_nothing() {
        let batches = vec![batch(1, 0, vec![req(1, 2)]), batch(3, 5, vec![req(2, 4)])];
        let deliveries = resolve_checked(
            TransferResolver::new(),
            &batches,
            |p| if p == 4 { 0 } else { 10 },
            0,
        );
        assert!(deliveries.is_empty());
    }

    #[test]
    fn deterministic_for_identical_inputs() {
        let batches: Vec<RequestBatch> = (0..20)
            .map(|r| {
                batch(
                    r,
                    5,
                    (0..5)
                        .map(|s| req(u64::from(r) * 10 + s, (r + 1) % 20))
                        .collect(),
                )
            })
            .collect();
        let a = TransferResolver::new().resolve(&batches, |_| 3);
        let b = TransferResolver::new().resolve(&batches, |_| 3);
        assert_eq!(a, b);
        // Reusing one resolver across rounds is also deterministic.
        let mut shared = TransferResolver::new();
        let c = shared.resolve(&batches, |_| 3);
        let d = shared.resolve(&batches, |_| 3);
        assert_eq!(c, d);
        assert_eq!(a, c);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        /// No requester ever receives more than its inbound budget, no
        /// supplier sends more than its outbound budget, and every delivery
        /// corresponds to an actual request.
        #[test]
        fn prop_budgets_respected(
            raw in proptest::collection::vec(
                (0u32..8, 0usize..6, proptest::collection::vec((0u64..40, 0u32..8), 0..8)),
                0..12,
            ),
            outbound in 0usize..6,
        ) {
            // Deduplicate requester ids (later entries win) to form batches.
            let mut by_requester: BTreeMap<PeerId, RequestBatch> = BTreeMap::new();
            for (requester, budget, reqs) in raw {
                by_requester.insert(requester, RequestBatch {
                    requester,
                    inbound_budget: budget,
                    requests: reqs.into_iter().map(|(s, sup)| req(s, sup)).collect(),
                });
            }
            let batches: Vec<RequestBatch> = by_requester.into_values().collect();
            let mut resolver = TransferResolver::with_model(CapacityModel::Shared);
            let deliveries = resolver.resolve(&batches, |_| outbound);

            // The optimized path matches the reference implementation.
            let reference = resolver.resolve_round_reference(&batches, |_| outbound, 0);
            proptest::prop_assert_eq!(&deliveries, &reference);

            for b in &batches {
                let received = deliveries.iter().filter(|d| d.requester == b.requester).count();
                proptest::prop_assert!(received <= b.inbound_budget);
                for d in deliveries.iter().filter(|d| d.requester == b.requester) {
                    proptest::prop_assert!(b.requests.iter().any(|r| r.segment == d.segment));
                }
            }
            let mut per_supplier: BTreeMap<PeerId, usize> = BTreeMap::new();
            for d in &deliveries {
                *per_supplier.entry(d.supplier).or_default() += 1;
            }
            for (_, count) in per_supplier {
                proptest::prop_assert!(count <= outbound);
            }
        }
    }

    fn delivered(requester: PeerId, supplier: PeerId, segment: u64) -> DeliveredSegment {
        DeliveredSegment {
            requester,
            supplier,
            segment: SegmentId(segment),
        }
    }

    #[test]
    fn regroup_by_dest_shard_is_stable_within_each_requester() {
        // Shard shift 2 => shards of 4 ids.  Supplier-major input with the
        // requesters' deliveries interleaved across shards.
        let input = vec![
            delivered(5, 0, 10), // shard 1
            delivered(1, 0, 11), // shard 0
            delivered(5, 2, 12), // shard 1 — must stay after (5, 10)
            delivered(9, 2, 13), // shard 2
            delivered(1, 3, 14), // shard 0 — must stay after (1, 11)
            delivered(6, 3, 15), // shard 1
        ];
        let mut dest_counts = Vec::new();
        let mut out = Vec::new();
        regroup_by_dest_shard(&input, 2, 3, &mut dest_counts, &mut out);

        assert_eq!(
            out,
            vec![
                delivered(1, 0, 11),
                delivered(1, 3, 14),
                delivered(5, 0, 10),
                delivered(5, 2, 12),
                delivered(6, 3, 15),
                delivered(9, 2, 13),
            ]
        );
        // dest_counts[s] is the END offset of shard s's run.
        assert_eq!(dest_counts, vec![2, 5, 6]);
    }

    #[test]
    fn regroup_handles_empty_shards_and_empty_input() {
        let mut dest_counts = Vec::new();
        let mut out = Vec::new();
        regroup_by_dest_shard(&[], 4, 4, &mut dest_counts, &mut out);
        assert!(out.is_empty());
        assert_eq!(dest_counts, vec![0, 0, 0, 0]);

        // All deliveries land in one middle shard.
        let input = vec![delivered(20, 0, 1), delivered(17, 1, 2)];
        regroup_by_dest_shard(&input, 4, 4, &mut dest_counts, &mut out);
        assert_eq!(out, vec![delivered(20, 0, 1), delivered(17, 1, 2)]);
        assert_eq!(dest_counts, vec![0, 2, 2, 2]);
    }
}
