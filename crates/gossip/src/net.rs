//! The message-level network model behind the event-driven stepping mode.
//!
//! [`NetworkModel`] carries granted segment transfers as scheduled messages
//! through [`fss_sim::EventQueue`] instead of delivering them inside the
//! period that resolved them.  Each message leaves its supplier at the
//! period boundary, survives a Bernoulli data-leg loss draw, and arrives
//! after the modeled request+data round trip (scaled trace latency) plus a
//! bounded jitter.  Buffer-map and request legs are modeled at the boundary
//! itself: a lost buffer map blinds a requester to that supplier for the
//! period, and a lost request never reaches (or charges) the supplier.
//!
//! Determinism model (see `docs/network.md`):
//!
//! * every loss/jitter decision is a stateless hash draw from
//!   [`fss_overlay::net::LinkFaults`] — no RNG cursor exists, so evaluation
//!   order cannot change an outcome;
//! * the queue orders ties by insertion sequence, and insertions happen in
//!   the resolver's deterministic grant order;
//! * the ideal configuration ([`fss_overlay::NetworkConfig::ideal`])
//!   schedules every arrival at the boundary that resolved it, reproducing
//!   period-lockstep stepping byte-for-byte (pinned by the golden-digest
//!   suite).
//!
//! The model allocates only on installation: messages are `Copy` payloads
//! stored inline in the pre-reserved queue, so steady-state event stepping
//! stays allocation-free (enforced by `zero_alloc.rs`).

use crate::segment::SegmentId;
use fss_overlay::net::{LinkFaults, NetworkConfig};
use fss_overlay::PeerId;
use fss_sim::{EventQueue, SimTime};

/// One in-flight message: a granted segment on its way to the requester.
///
/// `Copy` and pointer-free by design — the queue stores payloads inline, so
/// scheduling a message never touches the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetMessage {
    /// The node the segment is travelling to.
    pub requester: PeerId,
    /// The node that granted and sent it.
    pub supplier: PeerId,
    /// The segment being transferred.
    pub segment: SegmentId,
}

/// Cumulative counters of the network model (diagnostics only — never part
/// of [`crate::system::SystemReport`], so enabling them cannot perturb the
/// golden-pinned report surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Requests suppressed because the supplier's buffer-map advertisement
    /// was lost (the requester scheduled blind).
    pub requests_blinded: u64,
    /// Requests dropped on the request leg (the supplier never saw them, so
    /// its outbound budget was not charged).
    pub requests_lost: u64,
    /// Granted segments handed to the network.
    pub data_sent: u64,
    /// Granted segments dropped on the data leg (the supplier's budget was
    /// already consumed — the paper-faithful cost of a lost transfer).
    pub data_lost: u64,
    /// Segments that completed their flight and landed in a buffer.
    pub data_delivered: u64,
    /// Segments that arrived after their requester left the overlay.
    pub data_stale: u64,
    /// High-water mark of simultaneously in-flight messages.
    pub max_in_flight: u64,
}

/// The installed network model: fault streams, the in-flight message queue
/// and its counters.  Owned by `StreamingSystem`; the system's event-driven
/// step orchestrates it (fields are crate-visible for that, like the
/// period scratch).
#[derive(Debug)]
pub struct NetworkModel {
    /// The configured knobs (validated on installation).
    pub(crate) config: NetworkConfig,
    /// Stateless per-link loss/jitter draws.
    pub(crate) faults: LinkFaults,
    /// In-flight messages ordered by (arrival time, send sequence).
    pub(crate) queue: EventQueue<NetMessage>,
    /// Cumulative diagnostics.
    pub(crate) stats: NetStats,
    /// The scheduling period `τ` in millisecond ticks (≥ 1).
    pub(crate) tau_ms: u64,
}

impl NetworkModel {
    /// Builds the model and pre-reserves the in-flight queue.
    ///
    /// # Panics
    /// Panics if `config` fails validation or `tau_ms` is zero.
    pub fn new(config: NetworkConfig, tau_ms: u64, capacity_hint: usize) -> Self {
        config.validate().expect("valid network configuration");
        assert!(tau_ms > 0, "the scheduling period must be at least 1 ms");
        NetworkModel {
            config,
            faults: LinkFaults::new(&config),
            queue: EventQueue::with_capacity(capacity_hint),
            stats: NetStats::default(),
            tau_ms,
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The cumulative counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Arrival time of the next in-flight message, if any.
    pub fn next_arrival(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// The virtual instant of period boundary `period_index`.
    pub fn boundary(&self, period_index: u64) -> SimTime {
        SimTime::from_millis(period_index.saturating_mul(self.tau_ms))
    }
}

impl crate::mem::MemoryFootprint for NetworkModel {
    fn heap_bytes(&self) -> usize {
        self.queue.capacity() * std::mem::size_of::<fss_sim::ScheduledEvent<NetMessage>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_and_presizes() {
        let m = NetworkModel::new(NetworkConfig::ideal(), 1_000, 64);
        assert!(m.queue.capacity() >= 64);
        assert_eq!(m.in_flight(), 0);
        assert_eq!(m.stats(), NetStats::default());
        assert_eq!(m.boundary(3), SimTime::from_millis(3_000));
        assert_eq!(m.next_arrival(), None);
    }

    #[test]
    #[should_panic(expected = "at least 1 ms")]
    fn zero_tau_is_rejected() {
        NetworkModel::new(NetworkConfig::ideal(), 0, 0);
    }

    #[test]
    #[should_panic(expected = "valid network configuration")]
    fn invalid_config_is_rejected() {
        NetworkModel::new(NetworkConfig::lossy(1.5, 0), 1_000, 0);
    }

    #[test]
    fn messages_are_copy_and_pointer_free() {
        // The zero-allocation guarantee rests on payloads living inline in
        // the queue; keep the message small and Copy.
        fn assert_copy<T: Copy>() {}
        assert_copy::<NetMessage>();
        assert!(std::mem::size_of::<NetMessage>() <= 24);
    }
}
