//! The cross-channel membership directory: per-channel membership views and
//! the shared admission pipeline.
//!
//! A multi-channel deployment (the CliqueStream and live-entertainment
//! settings of PAPERS.md) needs switching viewers to locate partners in
//! their target channel *instantly* — the whole point of fast source
//! switching is lost if the join path first has to enumerate the channel.
//! Before this module existed, every zap batch re-collected the target
//! channel's entire `active_peers()` into a fresh `Vec` and sampled
//! neighbours from scratch: an allocation on the zap hot path and O(channel
//! size) work per arrival.
//!
//! The directory replaces that with **incrementally maintained views**:
//!
//! * [`MembershipView`] — one channel's membership, mirrored as a sorted
//!   (ascending [`PeerId`]) member list updated on every join/depart event
//!   (churn, zap arrivals/departures, external admits).  The sorted order is
//!   exactly the order `Overlay::active_peers()` yields, so samplers drawing
//!   from the view consume the *same RNG stream over the same candidate
//!   set* as the legacy collect-then-sample path — reports stay
//!   byte-identical (pinned by the `golden_report` tests in `fss-runtime`).
//!   Optionally the view also maintains a **bounded candidate list**
//!   (CliqueStream-style partial view): a deterministic reservoir sample of
//!   at most `candidate_bound` members, refreshed incrementally, so huge
//!   channels hand newcomers a constant-size partner set.
//! * [`AdmissionPipeline`] — the shared join machinery: allocation-free
//!   sampling of movers and per-arrival neighbour sets out of pooled
//!   scratch buffers ([`AdmissionScratch`]) for zap batches and flash-crowd
//!   storms, with churn joiners drawing from the same views through the
//!   same sampler; the session layer adds an optional **rate-limited
//!   admission queue** (`max_admits_per_period`) on top that spreads a
//!   flash crowd's joins over several period boundaries instead of one.
//! * [`sample_distinct`] — the allocation-free sampler underneath both: a
//!   sparse partial Fisher–Yates that reproduces `SliceRandom::
//!   choose_multiple`'s output (and RNG consumption) exactly, in
//!   O(amount) instead of O(slice) time and zero steady-state heap.
//!
//! Ownership: each [`StreamingSystem`](crate::StreamingSystem) owns the view
//! of its own channel and keeps it in sync as a side effect of every
//! membership event, so channels stepping concurrently (the pipelined
//! session manager) never share mutable state; the session layer reads a
//! view only at a zap-batch boundary, where the two endpoint channels are
//! synchronised anyway — directory reads are the *only* cross-channel
//! synchronisation points.

use crate::hasher::FxHashMap;
use crate::mem::{vec_bytes, MemoryFootprint};
use fss_overlay::{PeerAttrs, PeerId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sorts id-keyed items ascending by their id.
///
/// Ids are unique, so the key is a total order and the (allocation-free)
/// unstable sort is deterministic.  Shared by the directory's view
/// construction and id-ordered candidate scheduling (see the scheduler
/// tests in [`crate::system`]).
pub fn sort_by_id<T, K: Ord>(items: &mut [T], id: impl Fn(&T) -> K) {
    items.sort_unstable_by_key(id);
}

/// Configuration of one channel's membership view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewConfig {
    /// Upper bound on the sampled candidate list handed to newcomers.
    /// `None` keeps the candidate list equal to the full membership (the
    /// default — byte-identical to the legacy collect-then-sample path).
    pub candidate_bound: Option<usize>,
    /// Seed of the view's reservoir decisions (only consumed when
    /// `candidate_bound` is set).
    pub seed: u64,
}

impl Default for ViewConfig {
    fn default() -> Self {
        ViewConfig {
            candidate_bound: None,
            seed: 0x000D_17EC_7021,
        }
    }
}

/// One channel's membership view: the sorted member list plus the (optional)
/// bounded candidate list newcomers sample their partners from.
///
/// Updated incrementally on every membership event — O(log n) search plus
/// an O(n) shift per event instead of an O(n) collection *per zap batch*,
/// and no allocation once the backing vectors reach their high-water marks.
#[derive(Debug, Clone)]
pub struct MembershipView {
    /// All active members, ascending by id (the same order
    /// `Overlay::active_peers()` iterates in).
    members: Vec<PeerId>,
    /// Bounded candidate list (reservoir sample of `members`); empty when
    /// the view is unbounded and [`candidates`](Self::candidates) returns
    /// the full member list instead.
    bounded: Vec<PeerId>,
    /// Update stamp at which each `bounded` entry was (re)sampled, parallel
    /// to `bounded`.  Drives the staleness metric.
    bounded_stamps: Vec<u64>,
    /// Total membership updates applied (joins + departs).
    updates: u64,
    /// Members ever seen by the bounded reservoir (its `i` in Algorithm R).
    reservoir_seen: u64,
    rng: SmallRng,
    config: ViewConfig,
}

impl MembershipView {
    /// An empty view with the given configuration.
    pub fn new(config: ViewConfig) -> Self {
        MembershipView {
            members: Vec::new(),
            bounded: Vec::new(),
            bounded_stamps: Vec::new(),
            updates: 0,
            reservoir_seen: 0,
            rng: SmallRng::seed_from_u64(config.seed ^ 0x0D14_EC70),
            config,
        }
    }

    /// Builds a view over an existing membership (need not be sorted).
    pub fn from_members(config: ViewConfig, members: impl IntoIterator<Item = PeerId>) -> Self {
        let mut view = Self::new(config);
        let mut initial: Vec<PeerId> = members.into_iter().collect();
        sort_by_id(&mut initial, |&p| p);
        for peer in initial {
            view.on_join(peer);
        }
        view
    }

    /// The view's configuration.
    pub fn config(&self) -> &ViewConfig {
        &self.config
    }

    /// All active members, ascending by id.
    pub fn members(&self) -> &[PeerId] {
        &self.members
    }

    /// Number of active members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the channel has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// True when `peer` is a member.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.members.binary_search(&peer).is_ok()
    }

    /// The candidate list newcomers sample partners from: the bounded
    /// reservoir when a `candidate_bound` is configured, the full member
    /// list otherwise.
    pub fn candidates(&self) -> &[PeerId] {
        if self.config.candidate_bound.is_some() {
            &self.bounded
        } else {
            &self.members
        }
    }

    /// Total membership updates (joins + departs) applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Mean age — in membership updates — of the candidate-list entries: how
    /// far the sampled partial view lags the live membership.  Exact
    /// (unbounded) views refresh on every update, so their staleness is the
    /// mean time since each member joined only in the bounded case; the
    /// unbounded case reports 0 because the candidate list *is* the
    /// membership.
    pub fn staleness(&self) -> f64 {
        if self.config.candidate_bound.is_none() || self.bounded_stamps.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .bounded_stamps
            .iter()
            .map(|&stamp| self.updates - stamp)
            .sum();
        total as f64 / self.bounded_stamps.len() as f64
    }

    /// Registers a join.  Idempotence is deliberately *not* provided: every
    /// overlay membership event must be mirrored exactly once.
    ///
    /// # Panics
    /// Panics if `peer` is already a member.
    pub fn on_join(&mut self, peer: PeerId) {
        let at = self
            .members
            .binary_search(&peer)
            .expect_err("peer joined twice");
        self.members.insert(at, peer);
        self.updates += 1;
        if let Some(bound) = self.config.candidate_bound {
            // Vitter's Algorithm R keeps `bounded` a uniform sample of every
            // member the reservoir has seen; the stamps record when each
            // slot was last refreshed (the staleness metric).
            self.reservoir_seen += 1;
            if self.bounded.len() < bound {
                self.bounded.push(peer);
                self.bounded_stamps.push(self.updates);
            } else {
                let slot = self.rng.gen_range(0..self.reservoir_seen) as usize;
                if slot < bound {
                    self.bounded[slot] = peer;
                    self.bounded_stamps[slot] = self.updates;
                }
            }
        }
    }

    /// Registers a departure.
    ///
    /// # Panics
    /// Panics if `peer` is not a member.
    pub fn on_depart(&mut self, peer: PeerId) {
        let at = self
            .members
            .binary_search(&peer)
            .expect("departing peer is a member");
        self.members.remove(at);
        self.updates += 1;
        if self.config.candidate_bound.is_some() {
            // Refill the vacated slot from the live membership so the
            // candidate list never hands out a departed peer.
            if let Some(slot) = self.bounded.iter().position(|&c| c == peer) {
                self.refill_slot(slot);
            }
        }
    }

    /// Replaces the candidate at `slot` with a random live member not
    /// already in the list (or removes the slot when none exists).
    fn refill_slot(&mut self, slot: usize) {
        // Fast path: rejection-sample a member index.  With the bound well
        // below the membership (the situation bounded views exist for) each
        // draw lands outside the candidate list with probability ≥ 1/2, so
        // the expected cost is O(bound) — not a scan of the whole channel.
        if self.members.len() >= 2 * self.bounded.len() {
            for _ in 0..32 {
                let pick = self.members[self.rng.gen_range(0..self.members.len())];
                if !self.bounded.contains(&pick) {
                    self.bounded[slot] = pick;
                    self.bounded_stamps[slot] = self.updates;
                    return;
                }
            }
        }
        // Dense memberships (or a pathological streak of rejections): one
        // reservoir pass over the members outside the candidate list — the
        // k-th outsider replaces the running pick with probability 1/k, so
        // the survivor is uniform without a second scan.
        let mut replacement = None;
        let mut outside = 0u64;
        for i in 0..self.members.len() {
            let member = self.members[i];
            if self.bounded.contains(&member) {
                continue;
            }
            outside += 1;
            if self.rng.gen_range(0..outside) == 0 {
                replacement = Some(member);
            }
        }
        match replacement {
            Some(pick) => {
                self.bounded[slot] = pick;
                self.bounded_stamps[slot] = self.updates;
            }
            // Every member is already a candidate: the slot cannot be
            // refilled, so the list shrinks.
            None => {
                self.bounded.swap_remove(slot);
                self.bounded_stamps.swap_remove(slot);
            }
        }
    }
}

impl MemoryFootprint for MembershipView {
    fn heap_bytes(&self) -> usize {
        vec_bytes(&self.members) + vec_bytes(&self.bounded) + vec_bytes(&self.bounded_stamps)
    }
}

/// Pooled working memory of [`sample_distinct`]: the sparse displacement
/// table of the partial Fisher–Yates.  Reused across calls; zero heap once
/// it reaches its high-water capacity.
#[derive(Debug, Default)]
pub struct SampleScratch {
    displaced: FxHashMap<usize, usize>,
}

impl MemoryFootprint for SampleScratch {
    fn heap_bytes(&self) -> usize {
        self.displaced.capacity() * std::mem::size_of::<(usize, usize)>()
    }
}

/// Appends `amount` distinct elements of `slice`, in random order, to `out`
/// (fewer when the slice is shorter) — the allocation-free equivalent of
/// `SliceRandom::choose_multiple`.
///
/// Byte-compatible with the vendored `choose_multiple`: it performs the
/// identical partial Fisher–Yates (`amount` draws of `gen_range(i..len)`)
/// but tracks only the displaced indices in a pooled hash map instead of
/// materialising the full `0..len` index table, cutting the per-call cost
/// from O(len) time + one allocation to O(amount) time and zero heap.  The
/// equivalence is asserted by this module's tests across sizes and seeds.
pub fn sample_distinct<T: Copy, R: Rng + ?Sized>(
    slice: &[T],
    rng: &mut R,
    amount: usize,
    scratch: &mut SampleScratch,
    out: &mut Vec<T>,
) {
    let amount = amount.min(slice.len());
    let displaced = &mut scratch.displaced;
    for i in 0..amount {
        let j = rng.gen_range(i..slice.len());
        // indices[k] of the dense algorithm, materialised lazily.
        let value_i = displaced.get(&i).copied().unwrap_or(i);
        let value_j = displaced.get(&j).copied().unwrap_or(j);
        displaced.insert(j, value_i);
        out.push(slice[value_j]);
    }
    displaced.clear();
}

/// Pooled buffers of one admission resolution — the working memory that
/// used to be freshly allocated per zap batch.
#[derive(Debug, Default)]
pub struct AdmissionScratch {
    /// Departure-eligible members of the origin channel.
    pub eligible: Vec<PeerId>,
    /// The movers drawn from `eligible`.
    pub movers: Vec<PeerId>,
    /// Per-arrival neighbour assignments, flattened (`degree` entries per
    /// arrival).
    pub neighbours: Vec<PeerId>,
    /// Per-arrival attributes, parallel to the neighbour groups.
    pub attrs: Vec<PeerAttrs>,
    /// Per-arrival request stamps (the period boundary each arrival asked
    /// to join at), parallel to `attrs`.
    pub requested: Vec<u64>,
    /// Ids assigned to the admitted arrivals.
    pub admitted: Vec<PeerId>,
    /// Sampler displacement table.
    pub sampler: SampleScratch,
}

impl AdmissionScratch {
    /// Clears every buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.eligible.clear();
        self.movers.clear();
        self.neighbours.clear();
        self.attrs.clear();
        self.requested.clear();
        self.admitted.clear();
    }
}

impl MemoryFootprint for AdmissionScratch {
    fn heap_bytes(&self) -> usize {
        vec_bytes(&self.eligible)
            + vec_bytes(&self.movers)
            + vec_bytes(&self.neighbours)
            + vec_bytes(&self.attrs)
            + vec_bytes(&self.requested)
            + vec_bytes(&self.admitted)
            + self.sampler.heap_bytes()
    }
}

/// The shared admission pipeline behind zap batches and flash-crowd storms:
/// mover selection and per-arrival neighbour assignment against a
/// [`MembershipView`] instead of a fresh overlay collection.  Churn joiners
/// attach through the same views and the same [`sample_distinct`] sampler
/// (see `StreamingSystem::apply_churn`); their departure side keeps the
/// paper's shuffle-based eligibility model in `ChurnModel`.
///
/// The pipeline is stateless (all working memory lives in the caller's
/// [`AdmissionScratch`]); rate limiting is the session layer's concern —
/// see `fss_runtime::SessionManager` — because deferral needs the channel's
/// period clock.
#[derive(Debug, Default, Clone, Copy)]
pub struct AdmissionPipeline;

impl AdmissionPipeline {
    /// Selects up to `requested` movers out of `view`, excluding `source`
    /// and any peer `blocked` (same-boundary arrivals), respecting the live
    /// survival floor (at least one non-source member stays behind).
    ///
    /// Fills `scratch.eligible` and `scratch.movers`; consumes the same RNG
    /// stream as the legacy filter-collect-`choose_multiple` path.
    pub fn select_movers(
        &self,
        view: &MembershipView,
        source: PeerId,
        mut blocked: impl FnMut(PeerId) -> bool,
        requested: usize,
        rng: &mut SmallRng,
        scratch: &mut AdmissionScratch,
    ) {
        scratch.eligible.clear();
        scratch.movers.clear();
        scratch.eligible.extend(
            view.members()
                .iter()
                .copied()
                .filter(|&p| p != source && !blocked(p)),
        );
        // Live survival floor: when every non-source member is eligible, one
        // must stay behind so the channel never drains to source-only
        // membership (same-boundary arrivals count as staying — present,
        // merely ineligible to move again this boundary).
        let non_source_present = view.len() - 1;
        let floor_reserve = usize::from(non_source_present == scratch.eligible.len());
        let quota = scratch.eligible.len().saturating_sub(floor_reserve);
        sample_distinct(
            &scratch.eligible,
            rng,
            requested.min(quota),
            &mut scratch.sampler,
            &mut scratch.movers,
        );
    }

    /// Draws one arrival's neighbour set from `view`'s candidate list into
    /// `scratch.neighbours` (appending `degree.min(candidates)` entries) and
    /// returns how many were appended.
    ///
    /// RNG-compatible with `candidates.choose_multiple(rng, degree)` over
    /// the legacy collected candidate vector.
    pub fn sample_neighbours(
        &self,
        view: &MembershipView,
        degree: usize,
        rng: &mut SmallRng,
        scratch: &mut AdmissionScratch,
    ) -> usize {
        let candidates = view.candidates();
        let take = degree.min(candidates.len());
        sample_distinct(
            candidates,
            rng,
            take,
            &mut scratch.sampler,
            &mut scratch.neighbours,
        );
        take
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;

    #[test]
    fn sort_by_id_orders_ascending() {
        let mut items = vec![(9u32, "c"), (1, "a"), (4, "b")];
        sort_by_id(&mut items, |&(id, _)| id);
        assert_eq!(
            items.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![1, 4, 9]
        );
    }

    /// The satellite guarantee: the sparse sampler is a drop-in replacement
    /// for the vendored `choose_multiple` — identical picks *and* identical
    /// RNG consumption (the stream must stay aligned for everything sampled
    /// afterwards).
    #[test]
    fn sample_distinct_matches_choose_multiple_exactly() {
        let mut scratch = SampleScratch::default();
        for len in [0usize, 1, 2, 5, 17, 100, 1000] {
            let slice: Vec<PeerId> = (0..len as PeerId).map(|i| i * 3 + 1).collect();
            for amount in [0usize, 1, 2, 5, len / 2, len, len + 3] {
                for seed in 0..20u64 {
                    let mut reference_rng = SmallRng::seed_from_u64(seed);
                    let reference: Vec<PeerId> = slice
                        .choose_multiple(&mut reference_rng, amount)
                        .copied()
                        .collect();
                    let mut rng = SmallRng::seed_from_u64(seed);
                    let mut out = Vec::new();
                    sample_distinct(&slice, &mut rng, amount, &mut scratch, &mut out);
                    assert_eq!(out, reference, "len={len} amount={amount} seed={seed}");
                    // Post-sample draws must agree: the streams are aligned.
                    assert_eq!(rng.gen_range(0..1_000_000u64), {
                        reference_rng.gen_range(0..1_000_000u64)
                    });
                }
            }
        }
    }

    #[test]
    fn view_mirrors_membership_in_sorted_order() {
        let mut view = MembershipView::new(ViewConfig::default());
        for p in [5u32, 1, 9, 3] {
            view.on_join(p);
        }
        assert_eq!(view.members(), &[1, 3, 5, 9]);
        assert_eq!(view.candidates(), &[1, 3, 5, 9]);
        assert!(view.contains(5));
        view.on_depart(5);
        assert_eq!(view.members(), &[1, 3, 9]);
        assert!(!view.contains(5));
        assert_eq!(view.len(), 3);
        assert_eq!(view.updates(), 5);
        assert_eq!(view.staleness(), 0.0, "exact views are never stale");
        assert!(view.heap_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "joined twice")]
    fn double_join_panics() {
        let mut view = MembershipView::new(ViewConfig::default());
        view.on_join(1);
        view.on_join(1);
    }

    #[test]
    #[should_panic(expected = "is a member")]
    fn unknown_departure_panics() {
        let mut view = MembershipView::new(ViewConfig::default());
        view.on_depart(7);
    }

    #[test]
    fn bounded_view_caps_the_candidate_list() {
        let config = ViewConfig {
            candidate_bound: Some(8),
            seed: 42,
        };
        let mut view = MembershipView::from_members(config, 0..100u32);
        assert_eq!(view.len(), 100);
        assert_eq!(view.candidates().len(), 8);
        // Candidates are always live members.
        for &c in view.candidates() {
            assert!(view.contains(c));
        }
        // Departing a candidate refills the slot from the live membership.
        let victim = view.candidates()[0];
        view.on_depart(victim);
        assert_eq!(view.candidates().len(), 8);
        for &c in view.candidates() {
            assert!(view.contains(c), "candidate {c} is not a live member");
            assert_ne!(c, victim);
        }
        // The reservoir is a *sample*: staleness grows as updates pass it by.
        for p in 200..260u32 {
            view.on_join(p);
        }
        assert!(view.staleness() > 0.0);
    }

    #[test]
    fn bounded_view_shrinks_with_tiny_memberships() {
        let config = ViewConfig {
            candidate_bound: Some(4),
            seed: 7,
        };
        let mut view = MembershipView::from_members(config, 0..4u32);
        assert_eq!(view.candidates().len(), 4);
        view.on_depart(0);
        view.on_depart(1);
        view.on_depart(2);
        // Fewer members than the bound: every member is a candidate, no
        // slot can be refilled from outside.
        assert!(view.candidates().len() <= view.len());
        for &c in view.candidates() {
            assert!(view.contains(c));
        }
    }

    #[test]
    fn bounded_view_is_deterministic() {
        let build = || {
            let config = ViewConfig {
                candidate_bound: Some(6),
                seed: 99,
            };
            let mut view = MembershipView::from_members(config, 0..50u32);
            for p in [3u32, 17, 40] {
                view.on_depart(p);
            }
            for p in 60..80u32 {
                view.on_join(p);
            }
            view.candidates().to_vec()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn pipeline_selects_movers_with_the_survival_floor() {
        let view = MembershipView::from_members(ViewConfig::default(), 0..6u32);
        let pipeline = AdmissionPipeline;
        let mut scratch = AdmissionScratch::default();
        let mut rng = SmallRng::seed_from_u64(1);
        // Ask for far more movers than the channel can give up: everyone but
        // the source is eligible, so the floor holds one back.
        pipeline.select_movers(&view, 0, |_| false, 100, &mut rng, &mut scratch);
        assert_eq!(scratch.eligible.len(), 5);
        assert_eq!(scratch.movers.len(), 4, "one non-source member must stay");
        assert!(!scratch.movers.contains(&0), "the source never moves");

        // A blocked peer (same-boundary arrival) counts as staying, so the
        // floor reserve is not double-charged.
        let mut rng = SmallRng::seed_from_u64(2);
        pipeline.select_movers(&view, 0, |p| p == 3, 100, &mut rng, &mut scratch);
        assert_eq!(scratch.eligible.len(), 4);
        assert_eq!(scratch.movers.len(), 4, "the blocked peer is the floor");
        assert!(!scratch.movers.contains(&3));
    }

    #[test]
    fn pipeline_neighbour_sampling_matches_the_legacy_path() {
        let members: Vec<PeerId> = (0..40).collect();
        let view = MembershipView::from_members(ViewConfig::default(), members.iter().copied());
        let pipeline = AdmissionPipeline;
        let mut scratch = AdmissionScratch::default();

        let mut rng = SmallRng::seed_from_u64(11);
        let taken = pipeline.sample_neighbours(&view, 5, &mut rng, &mut scratch);
        assert_eq!(taken, 5);

        // Legacy path: collect + choose_multiple over the same candidates.
        let mut legacy_rng = SmallRng::seed_from_u64(11);
        let legacy: Vec<PeerId> = members
            .choose_multiple(&mut legacy_rng, 5)
            .copied()
            .collect();
        assert_eq!(scratch.neighbours, legacy);
    }
}
