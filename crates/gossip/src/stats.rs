//! Raw observations recorded while the system runs.
//!
//! This module only *records*; aggregation into the paper's metrics (average
//! switch time, reduction ratio, communication overhead, ratio tracks) lives
//! in `fss-metrics` and the experiment harness.

use serde::{Deserialize, Serialize};

/// Running totals of control and data traffic, in bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficCounters {
    /// Bits spent exchanging buffer maps (control traffic).
    pub control_bits: u64,
    /// Bits spent transferring data segments.
    pub data_bits: u64,
}

impl TrafficCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds control (buffer-map) traffic.
    pub fn add_control(&mut self, bits: u64) {
        self.control_bits += bits;
    }

    /// Adds data (segment) traffic.
    pub fn add_data(&mut self, bits: u64) {
        self.data_bits += bits;
    }

    /// Accumulates another counter into this one.
    pub fn merge(&mut self, other: &TrafficCounters) {
        self.control_bits += other.control_bits;
        self.data_bits += other.data_bits;
    }

    /// The communication overhead: control bits over data bits
    /// (§5.2 metric 3).  Returns 0 when no data has been transferred.
    pub fn overhead(&self) -> f64 {
        if self.data_bits == 0 {
            0.0
        } else {
            self.control_bits as f64 / self.data_bits as f64
        }
    }
}

/// Per-node record of the source-switch milestones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SwitchRecord {
    /// Whether the node was part of the overlay when the switch happened
    /// (nodes joining later are excluded from switch metrics).
    pub present_at_switch: bool,
    /// Whether the node left before completing the switch.
    pub departed: bool,
    /// `Q0`: undelivered segments of the old source at switch time.
    pub q0: usize,
    /// Seconds (since the switch) at which the node finished the playback of
    /// the old source.
    pub s1_finished_secs: Option<f64>,
    /// Seconds at which the node had gathered the first `Qs` segments of the
    /// new source (the paper's *preparing time* = switch time).
    pub s2_prepared_secs: Option<f64>,
    /// Seconds at which the node actually started playing the new source
    /// (both conditions satisfied).
    pub s2_started_secs: Option<f64>,
}

impl SwitchRecord {
    /// True when the node both finished the old stream and prepared the new
    /// one.
    pub fn completed(&self) -> bool {
        self.s1_finished_secs.is_some() && self.s2_prepared_secs.is_some()
    }

    /// True when this node should be counted in switch-time averages.
    pub fn countable(&self) -> bool {
        self.present_at_switch && !self.departed
    }
}

/// Streaming moments of one switch milestone over the countable nodes:
/// count, sum, min and max — everything the paper's averages and worst
/// cases need, in 32 bytes instead of a per-peer vector.
///
/// Values are folded in ascending peer-id order (the order the legacy
/// per-peer record vector was aggregated in), so the derived mean is
/// bitwise identical to the historical collect-into-`Vec` path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MilestoneStat {
    /// Number of nodes that reached the milestone.
    pub count: usize,
    /// Sum of the milestone values, folded in peer-id order.
    pub sum: f64,
    /// Smallest recorded value (0 when no node reached the milestone).
    pub min: f64,
    /// Largest recorded value (0 when no node reached the milestone).
    pub max: f64,
}

impl Default for MilestoneStat {
    fn default() -> Self {
        MilestoneStat {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl MilestoneStat {
    /// Folds one observation in.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of the recorded values (0 when empty, matching the legacy
    /// `Summary::of` empty-sample convention).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max_or_zero(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min_or_zero(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }
}

/// O(1)-memory aggregate of the per-peer [`SwitchRecord`]s — what
/// [`SystemReport`](crate::system::SystemReport) carries instead of a
/// per-peer vector, so report size no longer scales with the population.
///
/// Built by one serial ascending-id pass over the system's internal
/// records; every derived figure (averages, maxima, completion counts) is
/// bitwise identical to aggregating the full record vector.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SwitchStats {
    /// Nodes that were present at the switch and did not depart.
    pub countable_nodes: usize,
    /// Countable nodes that completed the switch (finished `S1` and
    /// prepared `S2`).
    pub completed_nodes: usize,
    /// Seconds to finish the old source's playback, over the countable
    /// nodes that reached that milestone.
    pub finish_old_secs: MilestoneStat,
    /// Seconds to gather the first `Qs` segments of the new source (the
    /// paper's preparing time = switch time).
    pub prepare_new_secs: MilestoneStat,
    /// Seconds at which playback of the new source actually started.
    pub start_new_secs: MilestoneStat,
    /// Undelivered old-source backlog at switch time (`Q0`), over all
    /// countable nodes.
    pub q0: MilestoneStat,
}

impl SwitchStats {
    /// Aggregates per-node records in slice (= ascending peer-id) order.
    pub fn from_records(records: &[SwitchRecord]) -> SwitchStats {
        let mut stats = SwitchStats::default();
        for record in records {
            if !record.countable() {
                continue;
            }
            stats.countable_nodes += 1;
            if record.completed() {
                stats.completed_nodes += 1;
            }
            if let Some(secs) = record.s1_finished_secs {
                stats.finish_old_secs.record(secs);
            }
            if let Some(secs) = record.s2_prepared_secs {
                stats.prepare_new_secs.record(secs);
            }
            if let Some(secs) = record.s2_started_secs {
                stats.start_new_secs.record(secs);
            }
            stats.q0.record(record.q0 as f64);
        }
        stats
    }

    /// Fraction of countable nodes that completed the switch.
    pub fn completion_rate(&self) -> f64 {
        if self.countable_nodes == 0 {
            0.0
        } else {
            self.completed_nodes as f64 / self.countable_nodes as f64
        }
    }
}

/// One per-period sample of the two ratio tracks of Figures 5 and 9.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioSample {
    /// Seconds since the switch.
    pub secs: f64,
    /// Mean over nodes of `Q1 / Q0` (undelivered ratio of the old source).
    pub undelivered_ratio_s1: f64,
    /// Mean over nodes of `(Qs − Q2) / Qs` (delivered ratio of the new
    /// source).
    pub delivered_ratio_s2: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_overhead_is_control_over_data() {
        let mut t = TrafficCounters::new();
        assert_eq!(t.overhead(), 0.0);
        t.add_control(620);
        t.add_data(30 * 1024);
        assert!((t.overhead() - 620.0 / 30720.0).abs() < 1e-12);
        t.add_data(30 * 1024);
        assert!((t.overhead() - 620.0 / 61440.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_merge_accumulates() {
        let mut a = TrafficCounters::new();
        a.add_control(10);
        a.add_data(100);
        let mut b = TrafficCounters::new();
        b.add_control(5);
        b.add_data(50);
        a.merge(&b);
        assert_eq!(a.control_bits, 15);
        assert_eq!(a.data_bits, 150);
    }

    #[test]
    fn switch_record_completion_and_countability() {
        let mut r = SwitchRecord {
            present_at_switch: true,
            ..Default::default()
        };
        assert!(!r.completed());
        assert!(r.countable());
        r.s1_finished_secs = Some(12.0);
        assert!(!r.completed());
        r.s2_prepared_secs = Some(18.0);
        assert!(r.completed());
        r.departed = true;
        assert!(!r.countable());

        let absent = SwitchRecord::default();
        assert!(!absent.countable());
    }

    #[test]
    fn switch_stats_aggregate_matches_manual_fold() {
        let mut records = vec![SwitchRecord::default(); 5];
        for (i, r) in records.iter_mut().enumerate().take(4) {
            r.present_at_switch = true;
            r.q0 = 10 * (i + 1);
            r.s1_finished_secs = Some(2.0 * (i + 1) as f64);
            if i < 3 {
                r.s2_prepared_secs = Some(3.0 * (i + 1) as f64);
                r.s2_started_secs = Some(4.0 * (i + 1) as f64);
            }
        }
        records[2].departed = true; // excluded entirely

        let stats = SwitchStats::from_records(&records);
        assert_eq!(stats.countable_nodes, 3);
        assert_eq!(stats.completed_nodes, 2);
        assert_eq!(stats.finish_old_secs.count, 3);
        assert!((stats.finish_old_secs.mean() - (2.0 + 4.0 + 8.0) / 3.0).abs() < 1e-12);
        assert_eq!(stats.finish_old_secs.max_or_zero(), 8.0);
        assert_eq!(stats.prepare_new_secs.count, 2);
        assert!((stats.prepare_new_secs.mean() - 4.5).abs() < 1e-12);
        assert_eq!(stats.q0.count, 3);
        assert!((stats.q0.mean() - (10.0 + 20.0 + 40.0) / 3.0).abs() < 1e-12);
        assert!((stats.completion_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_switch_stats_report_zeros() {
        let stats = SwitchStats::from_records(&[]);
        assert_eq!(stats.countable_nodes, 0);
        assert_eq!(stats.completion_rate(), 0.0);
        assert_eq!(stats.finish_old_secs.mean(), 0.0);
        assert_eq!(stats.finish_old_secs.max_or_zero(), 0.0);
        assert_eq!(stats.finish_old_secs.min_or_zero(), 0.0);
    }

    #[test]
    fn ratio_sample_is_plain_data() {
        let s = RatioSample {
            secs: 3.0,
            undelivered_ratio_s1: 0.4,
            delivered_ratio_s2: 0.2,
        };
        assert_eq!(s.secs, 3.0);
        assert_eq!(s.undelivered_ratio_s1, 0.4);
        assert_eq!(s.delivered_ratio_s2, 0.2);
    }
}
