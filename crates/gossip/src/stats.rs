//! Raw observations recorded while the system runs.
//!
//! This module only *records*; aggregation into the paper's metrics (average
//! switch time, reduction ratio, communication overhead, ratio tracks) lives
//! in `fss-metrics` and the experiment harness.

use serde::{Deserialize, Serialize};

/// Running totals of control and data traffic, in bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficCounters {
    /// Bits spent exchanging buffer maps (control traffic).
    pub control_bits: u64,
    /// Bits spent transferring data segments.
    pub data_bits: u64,
}

impl TrafficCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds control (buffer-map) traffic.
    pub fn add_control(&mut self, bits: u64) {
        self.control_bits += bits;
    }

    /// Adds data (segment) traffic.
    pub fn add_data(&mut self, bits: u64) {
        self.data_bits += bits;
    }

    /// Accumulates another counter into this one.
    pub fn merge(&mut self, other: &TrafficCounters) {
        self.control_bits += other.control_bits;
        self.data_bits += other.data_bits;
    }

    /// The communication overhead: control bits over data bits
    /// (§5.2 metric 3).  Returns 0 when no data has been transferred.
    pub fn overhead(&self) -> f64 {
        if self.data_bits == 0 {
            0.0
        } else {
            self.control_bits as f64 / self.data_bits as f64
        }
    }
}

/// Per-node record of the source-switch milestones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SwitchRecord {
    /// Whether the node was part of the overlay when the switch happened
    /// (nodes joining later are excluded from switch metrics).
    pub present_at_switch: bool,
    /// Whether the node left before completing the switch.
    pub departed: bool,
    /// `Q0`: undelivered segments of the old source at switch time.
    pub q0: usize,
    /// Seconds (since the switch) at which the node finished the playback of
    /// the old source.
    pub s1_finished_secs: Option<f64>,
    /// Seconds at which the node had gathered the first `Qs` segments of the
    /// new source (the paper's *preparing time* = switch time).
    pub s2_prepared_secs: Option<f64>,
    /// Seconds at which the node actually started playing the new source
    /// (both conditions satisfied).
    pub s2_started_secs: Option<f64>,
}

impl SwitchRecord {
    /// True when the node both finished the old stream and prepared the new
    /// one.
    pub fn completed(&self) -> bool {
        self.s1_finished_secs.is_some() && self.s2_prepared_secs.is_some()
    }

    /// True when this node should be counted in switch-time averages.
    pub fn countable(&self) -> bool {
        self.present_at_switch && !self.departed
    }
}

/// One per-period sample of the two ratio tracks of Figures 5 and 9.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioSample {
    /// Seconds since the switch.
    pub secs: f64,
    /// Mean over nodes of `Q1 / Q0` (undelivered ratio of the old source).
    pub undelivered_ratio_s1: f64,
    /// Mean over nodes of `(Qs − Q2) / Qs` (delivered ratio of the new
    /// source).
    pub delivered_ratio_s2: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_overhead_is_control_over_data() {
        let mut t = TrafficCounters::new();
        assert_eq!(t.overhead(), 0.0);
        t.add_control(620);
        t.add_data(30 * 1024);
        assert!((t.overhead() - 620.0 / 30720.0).abs() < 1e-12);
        t.add_data(30 * 1024);
        assert!((t.overhead() - 620.0 / 61440.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_merge_accumulates() {
        let mut a = TrafficCounters::new();
        a.add_control(10);
        a.add_data(100);
        let mut b = TrafficCounters::new();
        b.add_control(5);
        b.add_data(50);
        a.merge(&b);
        assert_eq!(a.control_bits, 15);
        assert_eq!(a.data_bits, 150);
    }

    #[test]
    fn switch_record_completion_and_countability() {
        let mut r = SwitchRecord {
            present_at_switch: true,
            ..Default::default()
        };
        assert!(!r.completed());
        assert!(r.countable());
        r.s1_finished_secs = Some(12.0);
        assert!(!r.completed());
        r.s2_prepared_secs = Some(18.0);
        assert!(r.completed());
        r.departed = true;
        assert!(!r.countable());

        let absent = SwitchRecord::default();
        assert!(!absent.countable());
    }

    #[test]
    fn ratio_sample_is_plain_data() {
        let s = RatioSample {
            secs: 3.0,
            undelivered_ratio_s1: 0.4,
            delivered_ratio_s2: 0.2,
        };
        assert_eq!(s.secs, 3.0);
        assert_eq!(s.undelivered_ratio_s1, 0.4);
        assert_eq!(s.delivered_ratio_s2, 0.2);
    }
}
