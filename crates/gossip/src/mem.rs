//! Memory-footprint accounting (the per-peer byte meter).
//!
//! The ROADMAP's million-user north star is bounded by **bytes per peer**:
//! every viewer the system hosts carries a [`FifoBuffer`] (arrival ring,
//! availability window, arrival-sequence array) plus a handful of scalar
//! protocol fields.  This module defines the [`MemoryFootprint`] trait that
//! every stateful gossip type implements — buffer, buffer map, peer node,
//! scratch arena, whole system — and the [`MemUsage`] aggregate that
//! [`SystemReport`](crate::system::SystemReport) surfaces so experiments and
//! benches can record bytes/peer next to throughput.
//!
//! # What the report-surfaced numbers cover
//!
//! [`MemUsage`] (and therefore `SystemReport::mem`) accounts the **per-peer
//! protocol state of active peers only**: it is a pure function of the
//! simulated protocol history, so it is byte-identical between the optimized
//! and reference period implementations, across worker counts and stepping
//! modes — the equivalence suites assert reports equal, and this field must
//! never break them.  Execution-dependent memory (the [`PeriodScratch`]
//! arena, whose worker-slot count follows the configured parallelism) is
//! deliberately excluded from reports; it remains measurable through the
//! [`MemoryFootprint`] impls on the scratch types and
//! [`StreamingSystem`](crate::system::StreamingSystem) itself.
//!
//! All numbers count **reserved capacity**, not live length: capacity is
//! what the allocator actually holds, and the zero-allocation hot path keeps
//! capacities at their steady-state high-water marks.
//!
//! [`FifoBuffer`]: crate::buffer::FifoBuffer
//! [`PeriodScratch`]: crate::scratch::PeriodScratch

use serde::Serialize;

/// Types that can report how much memory they are holding.
///
/// `heap_bytes` counts the bytes *reserved* on the heap (vector and ring
/// capacities, not lengths); [`footprint_bytes`](Self::footprint_bytes) adds
/// the value's own inline size.  Implementations cover the collections that
/// dominate the footprint; type-erased slots (e.g. the scheduler's
/// `dyn Any` scratch) count as their pointer size only.
pub trait MemoryFootprint {
    /// Heap bytes currently reserved by this value.
    fn heap_bytes(&self) -> usize;

    /// Total bytes: the value's inline size plus its reserved heap.
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of_val(self) + self.heap_bytes()
    }
}

/// Heap bytes of one peer's [`FifoBuffer`](crate::buffer::FifoBuffer),
/// split by component (the three allocations the compact layout shrinks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferMemBreakdown {
    /// The arrival ring: `u32` offsets from the window base (was full
    /// 8-byte `SegmentId`s before the compact layout).
    pub ring_bytes: usize,
    /// The availability bitmap words.
    pub window_bytes: usize,
    /// The per-covered-id arrival-sequence array: `u16` epoch-relative
    /// sequence numbers (was `u32`).
    pub seq_bytes: usize,
}

impl BufferMemBreakdown {
    /// Total heap bytes across the three components.
    pub fn heap_total(&self) -> usize {
        self.ring_bytes + self.window_bytes + self.seq_bytes
    }

    /// What the same capacities would cost in the pre-compaction layout
    /// (8-byte ring entries, 4-byte sequence numbers): the baseline the
    /// memory-budget guard measures the compact layout against.
    pub fn legacy_heap_total(&self) -> usize {
        2 * self.ring_bytes + self.window_bytes + 2 * self.seq_bytes
    }
}

/// Aggregate per-peer protocol-state footprint of one streaming system.
///
/// Built by [`StreamingSystem::memory_usage`] over the **active** peers (see
/// the module docs for what is and is not covered) and surfaced as
/// [`SystemReport::mem`].  All fields are integers, so report equality stays
/// exact.
///
/// [`StreamingSystem::memory_usage`]: crate::system::StreamingSystem::memory_usage
/// [`SystemReport::mem`]: crate::system::SystemReport::mem
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct MemUsage {
    /// Allocated peer slots, including departed peers (ids are never
    /// reused, so slots outlive their peers).
    pub peer_slots: usize,
    /// Active peers — the denominator of [`bytes_per_peer`](Self::bytes_per_peer).
    pub active_peers: usize,
    /// Total footprint of the active peers' protocol state (inline
    /// `PeerNode` plus buffer heap).
    pub peer_bytes: u64,
    /// Arrival-ring share of `peer_bytes`.
    pub ring_bytes: u64,
    /// Availability-window share of `peer_bytes`.
    pub window_bytes: u64,
    /// Sequence-array share of `peer_bytes`.
    pub seq_bytes: u64,
    /// The single largest active peer's footprint.
    pub max_peer_bytes: u64,
    /// What the same state would cost in the pre-compaction layout
    /// (u64 ring entries, u32 seqs).
    pub legacy_peer_bytes: u64,
}

impl MemUsage {
    /// Folds one active peer's buffer breakdown into the aggregate.
    pub fn add_peer(&mut self, inline_bytes: usize, buffer: BufferMemBreakdown) {
        let total = (inline_bytes + buffer.heap_total()) as u64;
        self.active_peers += 1;
        self.peer_bytes += total;
        self.ring_bytes += buffer.ring_bytes as u64;
        self.window_bytes += buffer.window_bytes as u64;
        self.seq_bytes += buffer.seq_bytes as u64;
        self.max_peer_bytes = self.max_peer_bytes.max(total);
        self.legacy_peer_bytes += (inline_bytes + buffer.legacy_heap_total()) as u64;
    }

    /// Average protocol-state bytes per active peer (0 when empty).
    pub fn bytes_per_peer(&self) -> f64 {
        if self.active_peers == 0 {
            0.0
        } else {
            self.peer_bytes as f64 / self.active_peers as f64
        }
    }

    /// Fractional saving of the compact layout versus the pre-compaction
    /// layout on the same state: `1 − compact/legacy` (0 when empty).
    pub fn reduction_vs_legacy(&self) -> f64 {
        if self.legacy_peer_bytes == 0 {
            0.0
        } else {
            1.0 - self.peer_bytes as f64 / self.legacy_peer_bytes as f64
        }
    }
}

/// Heap capacity of a vector in bytes.
pub(crate) fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_accumulates_and_averages() {
        let mut usage = MemUsage::default();
        assert_eq!(usage.bytes_per_peer(), 0.0);
        assert_eq!(usage.reduction_vs_legacy(), 0.0);
        usage.peer_slots = 3;
        usage.add_peer(
            100,
            BufferMemBreakdown {
                ring_bytes: 400,
                window_bytes: 80,
                seq_bytes: 200,
            },
        );
        usage.add_peer(
            100,
            BufferMemBreakdown {
                ring_bytes: 200,
                window_bytes: 40,
                seq_bytes: 100,
            },
        );
        assert_eq!(usage.active_peers, 2);
        assert_eq!(usage.peer_bytes, 780 + 440);
        assert_eq!(usage.max_peer_bytes, 780);
        assert_eq!(usage.ring_bytes, 600);
        assert_eq!(usage.window_bytes, 120);
        assert_eq!(usage.seq_bytes, 300);
        // Legacy: doubled ring + doubled seqs.
        assert_eq!(
            usage.legacy_peer_bytes,
            (100 + 800 + 80 + 400) + (100 + 400 + 40 + 200)
        );
        assert!((usage.bytes_per_peer() - 610.0).abs() < 1e-9);
        assert!(usage.reduction_vs_legacy() > 0.3);
    }

    #[test]
    fn breakdown_totals() {
        let b = BufferMemBreakdown {
            ring_bytes: 10,
            window_bytes: 20,
            seq_bytes: 30,
        };
        assert_eq!(b.heap_total(), 60);
        assert_eq!(b.legacy_heap_total(), 20 + 20 + 60);
    }
}
