//! Checked narrowing conversions for protocol state.
//!
//! A bare `as u16`/`as u32` silently truncates: the PR 4 sequence-wraparound
//! bug was exactly an `as`-cast whose implicit bound stopped holding.  The
//! `fss-lint` rule FSS004 bans bare narrowing casts in the protocol crates;
//! narrowing goes through [`narrow`], which panics with the violated
//! invariant's name instead of corrupting state — on cold paths the branch is
//! free, and the panic message turns a multi-day digest bisect into a one-line
//! diagnostic.  (Provably-bounded hot-path casts instead carry a `lint.toml`
//! waiver citing the bounding invariant.)

use std::fmt::Display;

/// Converts `value` to the (narrower) target type, panicking with `what` —
/// the name of the invariant that was supposed to bound it — when the value
/// does not fit.
///
/// ```
/// use fss_gossip::cast::narrow;
/// let offsets: u32 = narrow(4096usize * 64, "ring offsets fit the window span");
/// assert_eq!(offsets, 262_144);
/// ```
#[track_caller]
pub fn narrow<T, U>(value: T, what: &str) -> U
where
    T: Copy + Display,
    U: TryFrom<T>,
{
    match U::try_from(value) {
        Ok(narrowed) => narrowed,
        Err(_) => panic!("narrowing cast out of range: {what} (value {value})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_convert_exactly() {
        let v: u16 = narrow(65_535u32, "fits");
        assert_eq!(v, u16::MAX);
        let v: u32 = narrow(0usize, "fits");
        assert_eq!(v, 0);
    }

    #[test]
    #[should_panic(expected = "epoch delta bounded by live range")]
    fn out_of_range_panics_with_the_invariant_name() {
        let _: u16 = narrow(1u32 << 16, "epoch delta bounded by live range");
    }
}
