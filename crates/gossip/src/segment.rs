//! Segments, sources and serial sessions.
//!
//! Segment identifiers are **global**: the paper sets
//! `id_begin(S2) = id_end(S1) + 1`, i.e. the new source continues the id
//! space of the old one, which is also what makes a single 620-bit buffer map
//! able to describe availability across a source switch.

use fss_overlay::PeerId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one data segment (global, monotonically increasing across
/// serial sources).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SegmentId(pub u64);

impl SegmentId {
    /// The numeric id.
    pub fn value(self) -> u64 {
        self.0
    }

    /// The id `n` positions later in the stream.
    pub fn offset(self, n: u64) -> SegmentId {
        SegmentId(self.0 + n)
    }

    /// The next segment id.
    pub fn next(self) -> SegmentId {
        SegmentId(self.0 + 1)
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Identifier of a streaming source session (0 = the first source).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SourceId(pub u32);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0 + 1)
    }
}

/// One serial streaming session: a source peer emitting a contiguous range of
/// global segment ids.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// The session / source identifier.
    pub id: SourceId,
    /// The overlay peer acting as the source.
    pub source_peer: PeerId,
    /// First segment id of the session (`id_begin`).
    pub first_segment: SegmentId,
    /// Last segment id (`id_end`), `None` while the session is still live.
    pub last_segment: Option<SegmentId>,
    /// Simulation second at which the source started emitting.
    pub start_secs: f64,
}

impl Session {
    /// True when `segment` belongs to this session.
    pub fn contains(&self, segment: SegmentId) -> bool {
        if segment < self.first_segment {
            return false;
        }
        match self.last_segment {
            Some(last) => segment <= last,
            None => true,
        }
    }

    /// Number of segments emitted so far given the current head (exclusive).
    pub fn emitted(&self, next_to_emit: SegmentId) -> u64 {
        next_to_emit
            .value()
            .saturating_sub(self.first_segment.value())
    }

    /// True when the source has stopped emitting.
    pub fn is_closed(&self) -> bool {
        self.last_segment.is_some()
    }
}

/// Registry of all sessions, in serial order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionDirectory {
    sessions: Vec<Session>,
}

impl SessionDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// All sessions in serial order.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Number of sessions ever started.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no session has been started yet.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The currently live (un-closed) session, if any.
    pub fn live(&self) -> Option<&Session> {
        self.sessions.iter().find(|s| !s.is_closed())
    }

    /// Looks a session up by id.
    pub fn get(&self, id: SourceId) -> Option<&Session> {
        self.sessions.iter().find(|s| s.id == id)
    }

    /// The session owning `segment`, if any.
    pub fn session_of(&self, segment: SegmentId) -> Option<&Session> {
        self.sessions.iter().find(|s| s.contains(segment))
    }

    /// Starts a new session from `source_peer` at `start_secs`.
    ///
    /// The previous live session (if any) is closed at `previous_end`, and the
    /// new session starts at `previous_end + 1` (the paper's
    /// `id_begin = id_end + 1` rule).  For the very first session the stream
    /// starts at segment 0.
    ///
    /// # Panics
    /// Panics if `previous_end` is provided but there is no live session, or
    /// if a live session exists and `previous_end` is `None`.
    pub fn start_session(
        &mut self,
        source_peer: PeerId,
        start_secs: f64,
        previous_end: Option<SegmentId>,
    ) -> SourceId {
        let first_segment = match (
            self.sessions.iter_mut().find(|s| !s.is_closed()),
            previous_end,
        ) {
            (Some(live), Some(end)) => {
                assert!(
                    live.contains(end) || end.value() + 1 == live.first_segment.value(),
                    "previous_end {end} outside live session"
                );
                live.last_segment = Some(end);
                end.next()
            }
            (None, None) => SegmentId(0),
            (Some(_), None) => panic!("a live session exists; its end id must be provided"),
            (None, Some(_)) => panic!("no live session to close"),
        };
        let id = SourceId(crate::cast::narrow(
            self.sessions.len(),
            "session count fits a u32 id",
        ));
        self.sessions.push(Session {
            id,
            source_peer,
            first_segment,
            last_segment: None,
            start_secs,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_id_arithmetic() {
        let s = SegmentId(10);
        assert_eq!(s.next(), SegmentId(11));
        assert_eq!(s.offset(5), SegmentId(15));
        assert_eq!(s.value(), 10);
        assert_eq!(format!("{s}"), "#10");
        assert_eq!(format!("{}", SourceId(0)), "S1");
    }

    #[test]
    fn session_containment() {
        let open = Session {
            id: SourceId(0),
            source_peer: 0,
            first_segment: SegmentId(100),
            last_segment: None,
            start_secs: 0.0,
        };
        assert!(!open.contains(SegmentId(99)));
        assert!(open.contains(SegmentId(100)));
        assert!(open.contains(SegmentId(1_000_000)));
        assert!(!open.is_closed());
        assert_eq!(open.emitted(SegmentId(130)), 30);

        let closed = Session {
            last_segment: Some(SegmentId(199)),
            ..open
        };
        assert!(closed.contains(SegmentId(199)));
        assert!(!closed.contains(SegmentId(200)));
        assert!(closed.is_closed());
    }

    #[test]
    fn directory_serial_switch() {
        let mut dir = SessionDirectory::new();
        assert!(dir.is_empty());
        let s1 = dir.start_session(7, 0.0, None);
        assert_eq!(s1, SourceId(0));
        assert_eq!(dir.live().unwrap().first_segment, SegmentId(0));

        // S1 emitted segments 0..=499, then S2 takes over.
        let s2 = dir.start_session(9, 500.0, Some(SegmentId(499)));
        assert_eq!(s2, SourceId(1));
        assert_eq!(dir.len(), 2);
        let old = dir.get(s1).unwrap();
        assert_eq!(old.last_segment, Some(SegmentId(499)));
        let new = dir.get(s2).unwrap();
        assert_eq!(new.first_segment, SegmentId(500));
        assert!(dir.live().unwrap().id == s2);

        assert_eq!(dir.session_of(SegmentId(499)).unwrap().id, s1);
        assert_eq!(dir.session_of(SegmentId(500)).unwrap().id, s2);
        assert_eq!(dir.sessions().len(), 2);
    }

    #[test]
    #[should_panic(expected = "live session")]
    fn switching_without_end_id_panics() {
        let mut dir = SessionDirectory::new();
        dir.start_session(1, 0.0, None);
        dir.start_session(2, 1.0, None);
    }

    #[test]
    #[should_panic(expected = "no live session")]
    fn closing_nonexistent_session_panics() {
        let mut dir = SessionDirectory::new();
        dir.start_session(1, 0.0, Some(SegmentId(10)));
    }
}
