//! Per-node protocol state.
//!
//! A [`PeerNode`] is the *logical* per-peer record: a node's buffer and
//! playback state, the count of serial sessions the node has *discovered*
//! (§3: "a node does not know the source switch process until it discovers
//! data segments of a new source in its neighbors"), and the
//! [`SchedulingContext`] construction handed to the switch algorithm each
//! period.
//!
//! Since the struct-of-arrays refactor the running system no longer stores
//! `PeerNode` values — the record's four fields live as parallel columns
//! inside the sharded [`PeerStore`](crate::store::PeerStore), and the
//! protocol logic is shared with the store's [`PeerRef`](crate::store::PeerRef)
//! / [`PeerMut`](crate::store::PeerMut) views through the free functions of
//! this module.  `PeerNode` remains the construction currency (churn
//! joiners, zap arrivals), the standalone unit-test surface for the
//! protocol rules, and the definition of the per-peer inline stride the
//! memory meter reports.

use crate::buffer::FifoBuffer;
use crate::config::GossipConfig;
use crate::mem::MemoryFootprint;
use crate::playback::PlaybackState;
use crate::scheduler::{CandidateSegment, SchedulingContext, SessionView, SupplierInfo};
use crate::segment::{SegmentId, Session, SessionDirectory};
use fss_overlay::PeerId;

/// A neighbour as seen while building the scheduling context.
#[derive(Debug, Clone, Copy)]
pub struct NeighborInfo<'a> {
    /// The neighbour's peer id.
    pub peer: PeerId,
    /// The neighbour's advertised outbound rate `R(j)` in segments/second.
    pub outbound_rate: f64,
    /// The neighbour's buffer (stands in for its 620-bit buffer map plus the
    /// FIFO positions the map implies).
    pub buffer: &'a FifoBuffer,
}

/// Protocol state of one overlay node.
#[derive(Debug, Clone)]
pub struct PeerNode {
    id: PeerId,
    buffer: FifoBuffer,
    playback: PlaybackState,
    /// How many sessions (prefix of the directory) this node has discovered.
    known_sessions: usize,
    /// Fractional playback credit carried across periods.
    play_credit: f64,
}

impl PeerNode {
    /// Creates a node that will join the stream at `join_point`.
    pub fn new(id: PeerId, config: &GossipConfig, join_point: SegmentId) -> Self {
        PeerNode {
            id,
            buffer: FifoBuffer::new(config.buffer_capacity),
            playback: PlaybackState::new(join_point),
            known_sessions: 0,
            play_credit: 0.0,
        }
    }

    /// The node's peer id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The node's segment buffer.
    pub fn buffer(&self) -> &FifoBuffer {
        &self.buffer
    }

    /// Mutable access to the buffer (segment deliveries, source emission).
    pub fn buffer_mut(&mut self) -> &mut FifoBuffer {
        &mut self.buffer
    }

    /// The node's playback state.
    pub fn playback(&self) -> &PlaybackState {
        &self.playback
    }

    /// Number of sessions this node has discovered.
    pub fn known_sessions(&self) -> usize {
        self.known_sessions
    }

    /// The id the node will play next (`id_play`).
    pub fn id_play(&self) -> SegmentId {
        self.playback.next_play()
    }

    /// Moves the join point before playback starts (churn joiners follow
    /// their neighbours' current playback position).
    pub fn rejoin_at(&mut self, join_point: SegmentId) {
        self.playback.rejoin_at(join_point);
    }

    /// Discovers sessions: the node learns every session whose first segment
    /// is at or below `observed_max`, in serial order.  Sources call this with
    /// their own session's first segment when they start emitting.
    pub fn discover_sessions(&mut self, directory: &SessionDirectory, observed_max: SegmentId) {
        discover_sessions(&mut self.known_sessions, directory, observed_max);
    }

    /// The sessions this node currently knows about.
    pub fn known<'d>(&self, directory: &'d SessionDirectory) -> &'d [Session] {
        known_slice(self.known_sessions, directory)
    }

    /// Undelivered segments of `session` that the node still needs, i.e. ids
    /// in `[max(id_play, first), end]` missing from its buffer.  `end` falls
    /// back to `fallback_end` for a live session.
    pub fn undelivered_in_session(&self, session: &Session, fallback_end: SegmentId) -> usize {
        undelivered_in_session(&self.buffer, self.id_play(), session, fallback_end)
    }

    /// `Q2` for a new session: how many of its first `Qs` segments are still
    /// missing.
    pub fn q2_for(&self, session: &Session, qs: usize) -> usize {
        q2_for(&self.buffer, session, qs)
    }

    /// True when the node holds all of the first `Qs` segments of `session`.
    pub fn prepared_for(&self, session: &Session, qs: usize) -> bool {
        self.q2_for(session, qs) == 0
    }

    /// Builds this period's scheduling context, or `None` when the node has
    /// nothing it could request (no candidates with suppliers).
    pub fn build_context(
        &self,
        config: &GossipConfig,
        directory: &SessionDirectory,
        inbound_rate: f64,
        neighbors: &[NeighborInfo<'_>],
    ) -> Option<SchedulingContext> {
        build_context(
            &self.buffer,
            self.id_play(),
            self.known(directory),
            config,
            inbound_rate,
            neighbors,
        )
    }

    /// Advances playback by one period.
    ///
    /// Playback starts after `Q` consecutive segments from the join point;
    /// a next session is gated until all of its first `Qs` segments are
    /// present (and, implicitly, until the previous stream has been fully
    /// played — playback is sequential).  Returns the number of segments
    /// played.
    pub fn advance_playback(&mut self, config: &GossipConfig, directory: &SessionDirectory) -> u64 {
        let known = known_slice(self.known_sessions, directory);
        advance_playback(
            &self.buffer,
            &mut self.playback,
            &mut self.play_credit,
            known,
            config,
        )
    }

    /// Decomposes the record into its columns, in
    /// [`PeerStore`](crate::store::PeerStore) column order: buffer, playback,
    /// known-session count, playback credit.
    pub(crate) fn into_parts(self) -> (FifoBuffer, PlaybackState, usize, f64) {
        (
            self.buffer,
            self.playback,
            self.known_sessions,
            self.play_credit,
        )
    }
}

/// [`PeerNode::discover_sessions`] over a bare known-session counter.
pub(crate) fn discover_sessions(
    known_sessions: &mut usize,
    directory: &SessionDirectory,
    observed_max: SegmentId,
) {
    let sessions = directory.sessions();
    while *known_sessions < sessions.len()
        && sessions[*known_sessions].first_segment <= observed_max
    {
        *known_sessions += 1;
    }
}

/// [`PeerNode::known`] over a bare known-session counter.
pub(crate) fn known_slice(known_sessions: usize, directory: &SessionDirectory) -> &[Session] {
    &directory.sessions()[..known_sessions.min(directory.len())]
}

/// [`PeerNode::undelivered_in_session`] over bare columns.
pub(crate) fn undelivered_in_session(
    buffer: &FifoBuffer,
    id_play: SegmentId,
    session: &Session,
    fallback_end: SegmentId,
) -> usize {
    let end = session.last_segment.unwrap_or(fallback_end);
    let start = id_play.max(session.first_segment);
    if end < start {
        return 0;
    }
    let span = (end.value() - start.value() + 1) as usize;
    span - buffer.count_in_range(start, end)
}

/// [`PeerNode::q2_for`] over a bare buffer column.
pub(crate) fn q2_for(buffer: &FifoBuffer, session: &Session, qs: usize) -> usize {
    let first = session.first_segment;
    let last = first.offset(qs as u64 - 1);
    qs - buffer.count_in_range(first, last)
}

/// [`PeerNode::build_context`] over bare columns (the known-session prefix is
/// resolved by the caller).
pub(crate) fn build_context(
    buffer: &FifoBuffer,
    id_play: SegmentId,
    known: &[Session],
    config: &GossipConfig,
    inbound_rate: f64,
    neighbors: &[NeighborInfo<'_>],
) -> Option<SchedulingContext> {
    if neighbors.is_empty() || inbound_rate <= 0.0 {
        return None;
    }
    if known.is_empty() {
        return None;
    }

    // The "old" stream is the one the node is currently playing; the
    // "new" stream is the next discovered session it has not reached yet.
    let current_idx = known
        .iter()
        .rposition(|s| s.first_segment <= id_play)
        .unwrap_or(0);
    let current = &known[current_idx];
    let next = known.get(current_idx + 1);

    let max_advertised = neighbors
        .iter()
        .filter_map(|n| n.buffer.max_id())
        .max()
        .unwrap_or(SegmentId(0));

    // Needed ids of the current stream.
    let current_end = current
        .last_segment
        .unwrap_or(max_advertised)
        .min(max_advertised);
    let window_cap = 2 * config.buffer_capacity as u64;
    let current_start = id_play
        .max(current.first_segment)
        .max(SegmentId(current_end.value().saturating_sub(window_cap)));
    let mut needed: Vec<SegmentId> = if current_end >= current_start {
        buffer.missing_in_range(current_start, current_end)
    } else {
        Vec::new()
    };

    // Needed ids of the next (new-source) stream, if discovered.
    if let Some(next) = next {
        let next_end = next
            .last_segment
            .unwrap_or(max_advertised)
            .min(max_advertised);
        if next_end >= next.first_segment {
            needed.extend(buffer.missing_in_range(next.first_segment, next_end));
        }
    }
    if needed.is_empty() {
        return None;
    }

    // Gather suppliers: one scan of each neighbour's buffer.
    let mut candidates: Vec<CandidateSegment> = needed
        .iter()
        .map(|&id| CandidateSegment {
            id,
            suppliers: Vec::new(),
        })
        .collect();
    for n in neighbors {
        let positions = n.buffer.positions_of(&needed);
        for (candidate, position) in candidates.iter_mut().zip(positions) {
            if let Some(position) = position {
                candidate.suppliers.push(SupplierInfo {
                    peer: n.peer,
                    rate: n.outbound_rate,
                    buffer_position: position,
                    buffer_capacity: n.buffer.capacity(),
                });
            }
        }
    }
    candidates.retain(|c| !c.suppliers.is_empty());
    if candidates.is_empty() {
        return None;
    }

    let (old_session, new_session, q1, q2) = match next {
        Some(next) => (
            Some(session_view(current)),
            Some(session_view(next)),
            undelivered_in_session(buffer, id_play, current, max_advertised),
            q2_for(buffer, next, config.new_source_qs),
        ),
        None => (
            Some(session_view(current)),
            None,
            undelivered_in_session(buffer, id_play, current, max_advertised),
            0,
        ),
    };

    Some(SchedulingContext {
        tau_secs: config.tau_secs,
        play_rate: config.play_rate,
        inbound_rate,
        id_play,
        startup_q: config.startup_q,
        new_source_qs: config.new_source_qs,
        old_session,
        new_session,
        q1,
        q2,
        candidates,
    })
}

/// [`PeerNode::advance_playback`] over bare columns (the known-session prefix
/// is resolved by the caller).
pub(crate) fn advance_playback(
    buffer: &FifoBuffer,
    playback: &mut PlaybackState,
    play_credit: &mut f64,
    known: &[Session],
    config: &GossipConfig,
) -> u64 {
    playback.try_start(buffer, config.startup_q);
    if !playback.has_started() {
        return 0;
    }
    *play_credit += config.play_per_period();
    let budget = play_credit.floor() as u64;
    if budget == 0 {
        return 0;
    }
    *play_credit -= budget as f64;

    // Gate: the first discovered *new* session (one that started after the
    // node joined) that the node has not yet begun playing and whose first
    // `Qs` segments are not all present caps playback at its first
    // segment.  The session the node joined on is instead governed by the
    // Q-consecutive startup rule above.
    let limit = known
        .iter()
        .filter(|s| {
            s.first_segment > playback.join_point() && s.first_segment >= playback.next_play()
        })
        .find(|s| q2_for(buffer, s, config.new_source_qs) != 0)
        .map(|s| s.first_segment);

    playback.advance(buffer, budget, limit)
}

impl MemoryFootprint for PeerNode {
    /// A node's heap is its buffer: playback, discovery and credit state
    /// are inline scalars.
    fn heap_bytes(&self) -> usize {
        self.buffer.heap_bytes()
    }
}

fn session_view(session: &Session) -> SessionView {
    SessionView {
        id: session.id,
        first_segment: session.first_segment,
        last_segment: session.last_segment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> GossipConfig {
        GossipConfig {
            new_source_qs: 5,
            startup_q: 3,
            ..GossipConfig::paper_default()
        }
    }

    /// Directory with S1 = [0, 99] (closed) and S2 = [100, ...) live.
    fn switched_directory() -> SessionDirectory {
        let mut dir = SessionDirectory::new();
        dir.start_session(0, 0.0, None);
        dir.start_session(1, 50.0, Some(SegmentId(99)));
        dir
    }

    fn neighbor_buffer(ids: &[u64]) -> FifoBuffer {
        let mut b = FifoBuffer::new(600);
        for &i in ids {
            b.insert(SegmentId(i));
        }
        b
    }

    #[test]
    fn discovery_follows_observed_ids() {
        let dir = switched_directory();
        let cfg = config();
        let mut node = PeerNode::new(5, &cfg, SegmentId(0));
        assert_eq!(node.known_sessions(), 0);

        node.discover_sessions(&dir, SegmentId(10));
        assert_eq!(node.known_sessions(), 1);
        assert_eq!(node.known(&dir).len(), 1);

        // Seeing a segment of S2 reveals the switch (and hence S1's end).
        node.discover_sessions(&dir, SegmentId(100));
        assert_eq!(node.known_sessions(), 2);
    }

    #[test]
    fn undelivered_and_q2_counts() {
        let dir = switched_directory();
        let cfg = config();
        let mut node = PeerNode::new(1, &cfg, SegmentId(0));
        node.discover_sessions(&dir, SegmentId(100));
        for i in 0..95u64 {
            node.buffer_mut().insert(SegmentId(i));
        }
        node.buffer_mut().insert(SegmentId(101));

        let s1 = &dir.sessions()[0];
        let s2 = &dir.sessions()[1];
        // Missing 95..=99 of S1.
        assert_eq!(node.undelivered_in_session(s1, SegmentId(99)), 5);
        // Of the first 5 segments of S2 (100..=104) only 101 is held.
        assert_eq!(node.q2_for(s2, 5), 4);
        assert!(!node.prepared_for(s2, 5));
        for i in 100..105u64 {
            node.buffer_mut().insert(SegmentId(i));
        }
        assert!(node.prepared_for(s2, 5));
        assert_eq!(node.q2_for(s2, 5), 0);
    }

    #[test]
    fn context_classifies_old_and_new_candidates() {
        let dir = switched_directory();
        let cfg = config();
        let mut node = PeerNode::new(1, &cfg, SegmentId(0));
        for i in 0..90u64 {
            node.buffer_mut().insert(SegmentId(i));
        }
        node.discover_sessions(&dir, SegmentId(105));

        let nb1 = neighbor_buffer(&(80..100).collect::<Vec<_>>());
        let nb2 = neighbor_buffer(&(95..106).collect::<Vec<_>>());
        let neighbors = [
            NeighborInfo {
                peer: 2,
                outbound_rate: 12.0,
                buffer: &nb1,
            },
            NeighborInfo {
                peer: 3,
                outbound_rate: 20.0,
                buffer: &nb2,
            },
        ];

        let ctx = node
            .build_context(&cfg, &dir, 15.0, &neighbors)
            .expect("has candidates");
        assert!(ctx.switch_in_progress());
        assert_eq!(ctx.q1, 10, "missing 90..=99 of S1");
        assert_eq!(ctx.q2, 5, "none of 100..=104 held");
        assert_eq!(ctx.inbound_budget(), 15);

        // Candidates 90..=99 (old) and 100..=105 (new), all with suppliers.
        assert_eq!(ctx.candidates.len(), 16);
        let old_count = ctx
            .candidates
            .iter()
            .filter(|c| ctx.class_of(c.id) == crate::scheduler::StreamClass::Old)
            .count();
        assert_eq!(old_count, 10);
        // Segment 97 is held by both neighbours.
        let c97 = ctx
            .candidates
            .iter()
            .find(|c| c.id == SegmentId(97))
            .unwrap();
        assert_eq!(c97.supplier_count(), 2);
        assert_eq!(c97.max_rate(), 20.0);
    }

    #[test]
    fn context_is_none_without_needs_or_neighbors() {
        let dir = switched_directory();
        let cfg = config();
        let mut node = PeerNode::new(1, &cfg, SegmentId(0));
        node.discover_sessions(&dir, SegmentId(0));

        // No neighbours.
        assert!(node.build_context(&cfg, &dir, 15.0, &[]).is_none());

        // Zero inbound (a source).
        let nb = neighbor_buffer(&[0, 1, 2]);
        let neighbors = [NeighborInfo {
            peer: 2,
            outbound_rate: 10.0,
            buffer: &nb,
        }];
        assert!(node.build_context(&cfg, &dir, 0.0, &neighbors).is_none());

        // Node already has everything its neighbours advertise.
        for i in 0..3u64 {
            node.buffer_mut().insert(SegmentId(i));
        }
        assert!(node.build_context(&cfg, &dir, 15.0, &neighbors).is_none());
    }

    #[test]
    fn playback_gates_new_session_until_prepared() {
        let dir = switched_directory();
        let cfg = config();
        let mut node = PeerNode::new(1, &cfg, SegmentId(90));
        node.discover_sessions(&dir, SegmentId(100));
        for i in 90..=100u64 {
            node.buffer_mut().insert(SegmentId(i));
        }

        // First period: plays 90..=99 (10 segments) and stops at the gate.
        let played = node.advance_playback(&cfg, &dir);
        assert_eq!(played, 10);
        assert_eq!(node.id_play(), SegmentId(100));

        // Still gated: only one segment (100) of the required five held.
        let played = node.advance_playback(&cfg, &dir);
        assert_eq!(played, 0);

        for i in 101..=104u64 {
            node.buffer_mut().insert(SegmentId(i));
        }
        let played = node.advance_playback(&cfg, &dir);
        assert_eq!(played, 5, "gate lifted once the first Qs are present");
        assert_eq!(node.id_play(), SegmentId(105));
    }

    #[test]
    fn playback_does_not_start_without_q_consecutive() {
        let dir = switched_directory();
        let cfg = config();
        let mut node = PeerNode::new(1, &cfg, SegmentId(0));
        node.discover_sessions(&dir, SegmentId(5));
        node.buffer_mut().insert(SegmentId(0));
        node.buffer_mut().insert(SegmentId(2));
        assert_eq!(node.advance_playback(&cfg, &dir), 0);
        node.buffer_mut().insert(SegmentId(1));
        assert!(node.advance_playback(&cfg, &dir) > 0);
    }

    #[test]
    fn fractional_play_rate_accumulates_credit() {
        let dir = switched_directory();
        let mut cfg = config();
        cfg.play_rate = 0.5; // one segment every two periods
        let mut node = PeerNode::new(1, &cfg, SegmentId(0));
        node.discover_sessions(&dir, SegmentId(10));
        for i in 0..10u64 {
            node.buffer_mut().insert(SegmentId(i));
        }
        assert_eq!(node.advance_playback(&cfg, &dir), 0);
        assert_eq!(node.advance_playback(&cfg, &dir), 1);
        assert_eq!(node.advance_playback(&cfg, &dir), 0);
        assert_eq!(node.advance_playback(&cfg, &dir), 1);
    }
}
