//! Scheduling interface.
//!
//! Once per scheduling period every node assembles a [`SchedulingContext`]
//! describing what it needs, what its neighbours can supply and where its
//! playback stands, then hands it to a [`SegmentScheduler`] — the paper's
//! Fast Switch Algorithm, the Normal Switch baseline, or any other policy —
//! which returns the ordered list of [`SegmentRequest`]s to issue this
//! period.

use crate::segment::{SegmentId, SourceId};
use fss_overlay::PeerId;
use serde::{Deserialize, Serialize};

/// Which stream a candidate segment belongs to, relative to an in-progress
/// source switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamClass {
    /// Segment of the old source `S1` (still required to finish its
    /// playback).
    Old,
    /// Segment of the new source `S2`.
    New,
}

/// A neighbour able to supply one candidate segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupplierInfo {
    /// The supplying neighbour.
    pub peer: PeerId,
    /// The neighbour's advertised sending rate `R(j)` in segments/second.
    pub rate: f64,
    /// The segment's position in the neighbour's FIFO buffer, measured from
    /// the tail (`p_ij` of Table 2; 1 = newest).
    pub buffer_position: usize,
    /// The neighbour's buffer capacity `B`.
    pub buffer_capacity: usize,
}

/// One segment the node needs and could obtain this period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateSegment {
    /// The segment id.
    pub id: SegmentId,
    /// Neighbours currently holding the segment (never empty).
    pub suppliers: Vec<SupplierInfo>,
}

impl CandidateSegment {
    /// The number of suppliers (`n_i` of Table 2).
    pub fn supplier_count(&self) -> usize {
        self.suppliers.len()
    }

    /// The maximum receiving rate `R_i = max_j R_ij` (eq. 6).
    pub fn max_rate(&self) -> f64 {
        self.suppliers.iter().map(|s| s.rate).fold(0.0, f64::max)
    }
}

/// A view of one source session as known to the scheduling node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionView {
    /// The session identifier.
    pub id: SourceId,
    /// First segment id of the session.
    pub first_segment: SegmentId,
    /// Last segment id, if the node knows the session has ended.
    pub last_segment: Option<SegmentId>,
}

/// Everything a scheduler needs to decide this period's requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulingContext {
    /// Scheduling period `τ` in seconds.
    pub tau_secs: f64,
    /// Playback rate `p` in segments per second.
    pub play_rate: f64,
    /// The node's total inbound rate `I` in segments per second.
    pub inbound_rate: f64,
    /// The id of the segment being played (`id_play`); equals the next
    /// segment to play.
    pub id_play: SegmentId,
    /// Startup threshold `Q` (consecutive segments).
    pub startup_q: usize,
    /// New-source startup threshold `Qs`.
    pub new_source_qs: usize,
    /// The old source's session, when a switch is in progress or the node is
    /// still playing it.
    pub old_session: Option<SessionView>,
    /// The new source's session, once the node has discovered it.
    pub new_session: Option<SessionView>,
    /// `Q1`: undelivered segments of the old source still needed for its
    /// playback.
    pub q1: usize,
    /// `Q2`: undelivered segments among the first `Qs` of the new source.
    pub q2: usize,
    /// The segments the node needs and at least one neighbour can supply.
    pub candidates: Vec<CandidateSegment>,
}

impl SchedulingContext {
    /// Whole segments the node can receive this period (`⌊I·τ⌋`).
    pub fn inbound_budget(&self) -> usize {
        (self.inbound_rate * self.tau_secs).floor() as usize
    }

    /// True when the node is aware of an in-progress source switch (it knows
    /// the new session and still needs old-source segments or has not
    /// finished the old playback).
    pub fn switch_in_progress(&self) -> bool {
        self.new_session.is_some() && self.old_session.is_some()
    }

    /// Classifies a segment id against the (known) sessions.
    ///
    /// Ids at or beyond the new session's first segment are [`StreamClass::New`];
    /// everything else is [`StreamClass::Old`].
    pub fn class_of(&self, id: SegmentId) -> StreamClass {
        match self.new_session {
            Some(new) if id >= new.first_segment => StreamClass::New,
            _ => StreamClass::Old,
        }
    }
}

/// One request the scheduler decided to issue this period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentRequest {
    /// The requested segment.
    pub segment: SegmentId,
    /// The neighbour to request it from.
    pub supplier: PeerId,
}

/// Reusable, type-erased working memory handed to
/// [`SegmentScheduler::schedule_into`].
///
/// The system owns one scratch per worker and passes it to every scheduling
/// call, so a scheduler can keep sort buffers, hash maps and outcome vectors
/// alive across nodes and periods: after warm-up the scheduling pass performs
/// no heap allocation.  The slot is type-erased because each scheduler
/// implementation has its own scratch layout; the first call allocates it,
/// subsequent calls reuse it.
#[derive(Debug, Default)]
pub struct SchedulerScratch {
    slot: Option<Box<dyn std::any::Any + Send>>,
}

impl SchedulerScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scheduler-specific scratch value, created on first use.
    pub fn get_or_default<T: Default + Send + 'static>(&mut self) -> &mut T {
        if !self.slot.as_ref().is_some_and(|s| s.is::<T>()) {
            self.slot = Some(Box::<T>::default());
        }
        self.slot
            .as_mut()
            .expect("slot populated above")
            .downcast_mut::<T>()
            .expect("type checked above")
    }
}

/// A pluggable segment-scheduling policy.
pub trait SegmentScheduler: Send + Sync {
    /// Short policy name used in reports (e.g. `"fast-switch"`).
    fn name(&self) -> &'static str;

    /// Decides which segments to request from which suppliers this period.
    ///
    /// Implementations should return at most [`SchedulingContext::inbound_budget`]
    /// requests; the transfer layer enforces the budget regardless.
    fn schedule(&self, ctx: &SchedulingContext) -> Vec<SegmentRequest>;

    /// Allocation-free variant used by the period hot path: writes the
    /// requests into `out` (cleared first), reusing `scratch` for any
    /// intermediate state.
    ///
    /// The default implementation simply delegates to
    /// [`schedule`](Self::schedule); performance-sensitive schedulers
    /// override it to reuse buffers.  Both variants must produce identical
    /// requests for identical contexts.
    fn schedule_into(
        &self,
        ctx: &SchedulingContext,
        scratch: &mut SchedulerScratch,
        out: &mut Vec<SegmentRequest>,
    ) {
        let _ = scratch;
        out.clear();
        out.extend(self.schedule(ctx));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: u32, first: u64, last: Option<u64>) -> SessionView {
        SessionView {
            id: SourceId(id),
            first_segment: SegmentId(first),
            last_segment: last.map(SegmentId),
        }
    }

    fn context() -> SchedulingContext {
        SchedulingContext {
            tau_secs: 1.0,
            play_rate: 10.0,
            inbound_rate: 15.9,
            id_play: SegmentId(100),
            startup_q: 10,
            new_source_qs: 50,
            old_session: Some(view(0, 0, Some(199))),
            new_session: Some(view(1, 200, None)),
            q1: 20,
            q2: 50,
            candidates: vec![],
        }
    }

    #[test]
    fn inbound_budget_floors() {
        let ctx = context();
        assert_eq!(ctx.inbound_budget(), 15);
        let mut half = ctx.clone();
        half.tau_secs = 0.5;
        assert_eq!(half.inbound_budget(), 7);
    }

    #[test]
    fn class_of_uses_new_session_boundary() {
        let ctx = context();
        assert_eq!(ctx.class_of(SegmentId(199)), StreamClass::Old);
        assert_eq!(ctx.class_of(SegmentId(200)), StreamClass::New);
        assert_eq!(ctx.class_of(SegmentId(500)), StreamClass::New);

        let mut no_switch = ctx;
        no_switch.new_session = None;
        assert_eq!(no_switch.class_of(SegmentId(500)), StreamClass::Old);
        assert!(!no_switch.switch_in_progress());
    }

    #[test]
    fn switch_detection() {
        assert!(context().switch_in_progress());
        let mut ctx = context();
        ctx.old_session = None;
        assert!(!ctx.switch_in_progress());
    }

    #[test]
    fn candidate_helpers() {
        let c = CandidateSegment {
            id: SegmentId(42),
            suppliers: vec![
                SupplierInfo {
                    peer: 1,
                    rate: 12.0,
                    buffer_position: 10,
                    buffer_capacity: 600,
                },
                SupplierInfo {
                    peer: 2,
                    rate: 20.0,
                    buffer_position: 500,
                    buffer_capacity: 600,
                },
            ],
        };
        assert_eq!(c.supplier_count(), 2);
        assert_eq!(c.max_rate(), 20.0);
    }

    #[test]
    fn scheduler_trait_is_object_safe() {
        struct Nothing;
        impl SegmentScheduler for Nothing {
            fn name(&self) -> &'static str {
                "nothing"
            }
            fn schedule(&self, _ctx: &SchedulingContext) -> Vec<SegmentRequest> {
                Vec::new()
            }
        }
        let b: Box<dyn SegmentScheduler> = Box::new(Nothing);
        assert_eq!(b.name(), "nothing");
        assert!(b.schedule(&context()).is_empty());
    }
}
