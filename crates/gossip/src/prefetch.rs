//! Best-effort software prefetch for the period hot path.
//!
//! The million-peer sweep is DRAM-bound: the working set (≈ 4.6 GB at
//! `B = 600`) is out of every cache level, so every first touch of a peer's
//! header or buffer struct pays full memory latency.  The chunk walks are
//! index-predictable, though — the fused period pass knows which peer it
//! will touch a few iterations ahead — so issuing a prefetch at a small
//! fixed distance overlaps those fills with useful work.
//!
//! Prefetching is purely advisory: it moves cache lines, never data, so it
//! cannot change any simulated result (the determinism suites run with and
//! without the `parallel` feature and across shard counts regardless).  On
//! non-x86 targets the hint compiles to nothing.

/// How many iterations ahead the dense chunk walks (scheduling gather,
/// playback advance, meter sweep) prefetch the next peer's columns.  One
/// header line plus the buffer struct fit comfortably in the L1 fill
/// buffers at this distance; further ahead the lines risk eviction before
/// use on the 1-vCPU bench hosts.
pub(crate) const WALK_AHEAD: usize = 4;

/// Prefetch distance for the delivery-application walk: deliveries of one
/// destination shard are applied back to back and each insert touches the
/// requester's buffer struct plus its window/ring heap blocks, so the walk
/// benefits from a slightly deeper pipeline than the per-peer passes.
pub(crate) const DELIVERY_AHEAD: usize = 8;

/// Issues a read prefetch (to all cache levels) for the line holding `t`.
#[inline(always)]
pub(crate) fn prefetch_read<T>(t: &T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint; it never faults, even on dangling
    // addresses, and `t` is a live reference anyway.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
            (t as *const T).cast::<i8>(),
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = t;
}
