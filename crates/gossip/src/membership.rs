//! Neighbour-set maintenance under churn.
//!
//! The gossip membership protocol the paper builds on (Ganesh et al.,
//! "Peer-to-peer membership management for gossip-based protocols") keeps
//! every node's partial view populated as peers come and go.  The simulator
//! does not need the full protocol machinery — the overlay graph *is* the
//! ground truth — but it does need its effect: after departures, nodes whose
//! neighbour count fell below `M` acquire replacement neighbours, otherwise a
//! long dynamic run slowly disconnects the mesh and the churn experiments
//! measure an artefact instead of the switch algorithm.
//!
//! The maintainer is a **directory client**: it never enumerates the
//! overlay itself — the caller hands it the channel's live member list
//! (the [`crate::directory::MembershipView`] the streaming system keeps in
//! sync on every join/depart), so a repair pass allocates nothing and costs
//! O(under-connected peers), not O(channel).

use fss_overlay::{Overlay, OverlayError, PeerId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Repairs neighbour sets after churn.
#[derive(Debug, Clone)]
pub struct MembershipMaintainer {
    /// Target minimum neighbour count (the paper's `M`).
    min_degree: usize,
    rng: SmallRng,
}

impl MembershipMaintainer {
    /// Creates a maintainer targeting `min_degree` neighbours per node.
    pub fn new(min_degree: usize, seed: u64) -> Self {
        MembershipMaintainer {
            min_degree,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The target minimum degree.
    pub fn min_degree(&self) -> usize {
        self.min_degree
    }

    /// Reconnects every under-connected active peer to randomly chosen active
    /// peers until it has at least `min_degree` neighbours (or no more
    /// distinct peers exist).  Returns the number of edges added.
    ///
    /// `active` must list every active peer of the overlay — callers pass
    /// their membership view's member list (ascending id, the same order a
    /// fresh `active_peers()` collection would yield, so the repair RNG
    /// stream is unchanged from the pre-directory implementation).
    pub fn repair(
        &mut self,
        overlay: &mut Overlay,
        active: &[PeerId],
    ) -> Result<usize, OverlayError> {
        debug_assert_eq!(
            active.len(),
            overlay.active_count(),
            "the membership view is out of sync with the overlay"
        );
        if active.len() < 2 {
            return Ok(0);
        }
        let mut added = 0;
        for &peer in active {
            let mut attempts = 0;
            let max_attempts = 20 * self.min_degree.max(1) * 4;
            while overlay.graph().degree(peer) < self.min_degree.min(active.len() - 1)
                && attempts < max_attempts
            {
                attempts += 1;
                let Some(&candidate) = active.choose(&mut self.rng) else {
                    break;
                };
                if candidate == peer {
                    continue;
                }
                if overlay.graph_mut().add_edge(peer, candidate)? {
                    added += 1;
                }
            }
        }
        Ok(added)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_overlay::{ChurnModel, OverlayBuilder};
    use fss_trace::{GeneratorConfig, TraceGenerator};

    fn overlay(n: usize, seed: u64) -> Overlay {
        let trace = TraceGenerator::new(GeneratorConfig::sized(n, seed)).generate("membership");
        OverlayBuilder::paper_default().build(&trace).unwrap()
    }

    /// The member list a directory view would hand the maintainer.
    fn members(o: &Overlay) -> Vec<PeerId> {
        o.active_peers().collect()
    }

    #[test]
    fn repair_restores_min_degree_after_churn() {
        let mut o = overlay(300, 1);
        let mut churn = ChurnModel::paper_default(5);
        let mut maintainer = MembershipMaintainer::new(5, 9);
        for _ in 0..20 {
            churn.step(&mut o, &[]).unwrap();
            let active = members(&o);
            maintainer.repair(&mut o, &active).unwrap();
            assert!(o.graph().min_degree().unwrap() >= 5);
        }
    }

    #[test]
    fn repair_is_a_noop_on_a_healthy_overlay() {
        let mut o = overlay(200, 2);
        let before_edges = o.graph().edge_count();
        let active = members(&o);
        let added = MembershipMaintainer::new(5, 1)
            .repair(&mut o, &active)
            .unwrap();
        assert_eq!(added, 0);
        assert_eq!(o.graph().edge_count(), before_edges);
    }

    #[test]
    fn repair_counts_added_edges() {
        let mut o = overlay(100, 3);
        // Remove a chunk of peers so survivors lose neighbours.
        let victims: Vec<PeerId> = o.active_peers().take(30).collect();
        for v in victims {
            o.remove_peer(v).unwrap();
        }
        let mut maintainer = MembershipMaintainer::new(5, 4);
        let active = members(&o);
        let added = maintainer.repair(&mut o, &active).unwrap();
        assert!(added > 0);
        assert!(o.graph().min_degree().unwrap() >= 5);
        assert_eq!(maintainer.min_degree(), 5);
    }

    #[test]
    fn tiny_overlays_do_not_loop_forever() {
        let mut o = overlay(10, 4);
        // Leave only 3 active peers.
        let victims: Vec<PeerId> = o.active_peers().skip(3).collect();
        for v in victims {
            o.remove_peer(v).unwrap();
        }
        let mut maintainer = MembershipMaintainer::new(5, 6);
        let active = members(&o);
        maintainer.repair(&mut o, &active).unwrap();
        // Degree is capped by the number of other peers.
        for p in o.active_peers().collect::<Vec<_>>() {
            assert!(o.graph().degree(p) <= 2);
        }
    }
}
