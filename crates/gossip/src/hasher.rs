//! Deterministic, allocation-free hashing for the hot path.
//!
//! The implementation lives in [`fss_sim::hasher`] (the lowest layer of the
//! workspace, so `fss-trace` and `fss-overlay` can share it); this module
//! re-exports it under the historical `fss_gossip::hasher` path used across
//! the protocol crates.

pub use fss_sim::hasher::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher64};
