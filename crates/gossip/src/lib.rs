//! Pull-based gossip streaming substrate.
//!
//! This crate implements the streaming system the ICPP 2008 paper simulates
//! on: a CoolStreaming-style, pull-based ("smart gossip") P2P streaming
//! overlay in which every node periodically exchanges data-availability
//! information (buffer maps) with its neighbours and then retrieves the data
//! segments it needs from a subset of them.
//!
//! The crate provides every protocol ingredient *except* the scheduling
//! policy, which is pluggable through the [`scheduler::SegmentScheduler`]
//! trait — the paper's Fast Switch Algorithm and the Normal Switch baseline
//! live in `fss-core` and implement that trait.
//!
//! Module map:
//!
//! * [`config`] — protocol constants (`τ`, `p`, `B`, `Q`, `Qs`, segment and
//!   buffer-map sizes), defaulting to the paper's §5.1 values,
//! * [`segment`] — global segment identifiers, sources and serial sessions,
//! * [`buffer`] — the per-node FIFO segment buffer (`B = 600` segments),
//! * [`buffermap`] — the 620-bit data-availability map exchanged per period,
//! * [`playback`] — the per-node playback state machine (startup after `Q`
//!   consecutive segments, new-source startup after `Qs` segments *and* the
//!   old stream finishing),
//! * [`scheduler`] — the scheduling context handed to switch algorithms and
//!   the request type they return,
//! * [`transfer`] — bandwidth-constrained request resolution (per-supplier
//!   outbound and per-requester inbound budgets),
//! * [`membership`] — neighbour-set repair under churn,
//! * [`net`] — the message-level network model of the event-driven
//!   stepping mode: granted transfers ride [`fss_sim::EventQueue`] as
//!   scheduled messages with per-link latency, Bernoulli loss and bounded
//!   jitter from stateless fault streams (see `docs/network.md`),
//! * [`directory`] — the cross-channel membership directory: per-channel
//!   [`directory::MembershipView`]s maintained incrementally on every
//!   join/depart (churn, zaps, storms), and the shared allocation-free
//!   [`directory::AdmissionPipeline`] + sampler every join path draws its
//!   partners from (see `docs/architecture.md`),
//! * [`peer`] — per-node protocol state and context construction,
//! * [`store`] — struct-of-arrays sharded peer storage: dense contiguous
//!   peer-id shards owning their peers' state as parallel columns, the
//!   chunk unit of the parallel scheduling pass (see `docs/performance.md`),
//! * [`stats`] — traffic counters, switch records and ratio samples,
//! * [`qoe`] — counter-only QoE event recording on the playback path
//!   (startups, stall episodes, continuity, switch progress), one
//!   [`qoe::PeriodSample`] row per period (see `docs/observability.md`),
//! * [`mem`] — the [`mem::MemoryFootprint`] accounting trait and the
//!   per-peer byte meter surfaced in reports (see `docs/performance.md`),
//! * [`scratch`] — the reusable per-period working memory (zero-allocation
//!   hot path; see `docs/performance.md`),
//! * [`hasher`] — deterministic hashing for hot-path maps, and
//! * [`system`] — the complete period-synchronous streaming system.

#![warn(missing_docs)]

pub mod buffer;
pub mod buffermap;
pub mod cast;
pub mod config;
pub mod directory;
pub mod hasher;
pub mod mem;
pub mod membership;
pub mod net;
pub mod peer;
pub mod playback;
pub(crate) mod prefetch;
pub mod qoe;
pub mod scheduler;
pub mod scratch;
pub mod segment;
pub mod stats;
pub mod store;
pub mod system;
pub mod transfer;

pub use buffer::FifoBuffer;
pub use buffermap::BufferMap;
pub use config::GossipConfig;
pub use directory::{AdmissionPipeline, AdmissionScratch, MembershipView, ViewConfig};
pub use mem::{BufferMemBreakdown, MemUsage, MemoryFootprint};
pub use net::{NetMessage, NetStats, NetworkModel};
pub use peer::{NeighborInfo, PeerNode};
pub use playback::{PlaybackPhase, PlaybackState};
pub use qoe::{PeriodSample, QoeRecorder, QoeTotals};
pub use scheduler::{
    CandidateSegment, SchedulerScratch, SchedulingContext, SegmentRequest, SegmentScheduler,
    SessionView, StreamClass, SupplierInfo,
};
pub use segment::{SegmentId, Session, SessionDirectory, SourceId};
pub use stats::{MilestoneStat, RatioSample, SwitchRecord, SwitchStats, TrafficCounters};
pub use store::{PeerHeader, PeerMut, PeerRef, PeerShard, PeerStore};
pub use system::{StreamingSystem, SystemReport};
pub use transfer::{CapacityModel, DeliveredSegment, RequestBatch, TransferResolver};
