//! Struct-of-arrays sharded peer storage.
//!
//! The pre-sharding system kept one `Vec<PeerNode>` — an array of structs.
//! At million-peer scale that layout has two costs: every protocol pass
//! (scheduling, delivery, playback) strides over 192-byte records to touch
//! one or two fields, and the worker pool has to carve chunks out of a
//! single array whose ownership the borrow checker cannot split by field.
//!
//! [`PeerStore`] flips the layout.  Peers live in **shards** of dense,
//! contiguous [`PeerId`] ranges (ids are assigned sequentially and never
//! reused, so `id → (shard, slot)` is a shift and a mask).  Each
//! [`PeerShard`] owns its peers' state as parallel *columns* — buffers,
//! playback states, discovery counters, playback credits — so a pass that
//! only needs buffers walks a dense `Vec<FifoBuffer>`, and the scheduling
//! pass hands whole shards to the worker pool as its chunk unit (see
//! `StreamingSystem::plan_chunks`).
//!
//! The [`PeerNode`] record survives as the *logical* per-peer unit: joiners
//! are constructed as `PeerNode`s and [`PeerStore::push`] destructures them
//! into columns, and the memory meter keeps reporting
//! `size_of::<PeerNode>()` as the per-peer inline stride — the columns hold
//! exactly those fields, so the accounting is unchanged by the layout.
//!
//! Borrowed access comes as views: [`PeerRef`] (shared, `Copy`) and
//! [`PeerMut`] (exclusive), both forwarding to the protocol logic shared
//! with `PeerNode` in [`crate::peer`].

use crate::buffer::FifoBuffer;
use crate::config::GossipConfig;
use crate::mem::{vec_bytes, MemoryFootprint};
use crate::peer::{self, NeighborInfo, PeerNode};
use crate::playback::PlaybackState;
use crate::scheduler::SchedulingContext;
use crate::segment::{SegmentId, Session, SessionDirectory};
use fss_overlay::PeerId;

/// Default shard capacity: 64 Ki peers per shard keeps a million-peer store
/// at 16 shards while leaving small systems in a single shard.
pub const DEFAULT_SHARD_SIZE: usize = 1 << 16;

/// The **hot** per-peer column: everything the period sweep reads or writes
/// per peer *except* the bulk buffer storage — playback cursor, fractional
/// play credit and the discovery counter, packed into a single record so
/// one cache-line fill serves the whole playback/QoE/discovery pass.
///
/// The cold counterpart is the [`FifoBuffer`] column: its ring/window/seqs
/// heap blocks (≈ 4.4 KB/peer at the paper's `B = 600`) are touched only on
/// actual buffer reads and mutations, never dragged in by header-only
/// passes.
#[derive(Debug, Clone)]
pub struct PeerHeader {
    /// Playback position, startup flag and stall/played counters.
    pub playback: PlaybackState,
    /// Fractional playback credit carried across periods.
    pub play_credit: f64,
    /// How many sessions (prefix of the directory) the peer has discovered.
    pub known_sessions: usize,
}

// One header per cache line: the fused period walk budgets exactly one
// line fill per peer for the hot column.
const _: () = assert!(std::mem::size_of::<PeerHeader>() <= 64);

/// One shard: the peer state of a contiguous [`PeerId`] range, stored as
/// parallel columns (struct of arrays), split hot/cold: the dense
/// [`PeerHeader`] column carries the per-period scalar state, the
/// [`FifoBuffer`] column carries the bulk segment storage.
#[derive(Debug, Default)]
pub struct PeerShard {
    buffers: Vec<FifoBuffer>,
    headers: Vec<PeerHeader>,
}

impl PeerShard {
    fn with_capacity(capacity: usize) -> PeerShard {
        let mut shard = PeerShard::default();
        shard.buffers.reserve_exact(capacity);
        shard.headers.reserve_exact(capacity);
        shard
    }

    /// Peers stored in this shard.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// True when the shard holds no peers.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// The shard's buffer column (dense, slot-indexed).
    pub fn buffers(&self) -> &[FifoBuffer] {
        &self.buffers
    }

    /// The shard's hot header column (dense, slot-indexed).
    pub fn headers(&self) -> &[PeerHeader] {
        &self.headers
    }

    /// Both columns, mutably and simultaneously — the fused period walk
    /// applies deliveries to the buffer column and advances playback in the
    /// header column within one shard-resident pass.
    pub(crate) fn columns_mut(&mut self) -> (&mut [FifoBuffer], &mut [PeerHeader]) {
        (&mut self.buffers, &mut self.headers)
    }

    fn push_parts(&mut self, buffer: FifoBuffer, header: PeerHeader) {
        self.buffers.push(buffer);
        self.headers.push(header);
    }
}

impl MemoryFootprint for PeerShard {
    fn heap_bytes(&self) -> usize {
        vec_bytes(&self.buffers)
            + vec_bytes(&self.headers)
            + self.buffers.iter().map(|b| b.heap_bytes()).sum::<usize>()
    }
}

/// Sharded struct-of-arrays storage for every peer the system has ever
/// admitted (slots are never reused; departed peers keep their slot, as in
/// the previous `Vec<PeerNode>` layout).
#[derive(Debug)]
pub struct PeerStore {
    /// Power-of-two shard capacity.
    shard_size: usize,
    /// `log2(shard_size)` — `id >> shift` is the shard index.
    shift: u32,
    /// Total peers across all shards.
    len: usize,
    shards: Vec<PeerShard>,
}

impl PeerStore {
    /// Creates an empty store with the given power-of-two shard size.
    pub fn new(shard_size: usize) -> PeerStore {
        assert!(
            shard_size.is_power_of_two(),
            "shard size must be a power of two, got {shard_size}"
        );
        PeerStore {
            shard_size,
            shift: shard_size.trailing_zeros(),
            len: 0,
            shards: Vec::new(),
        }
    }

    /// Creates an empty store sized for `capacity` peers at the default
    /// shard size.
    pub fn with_capacity(capacity: usize) -> PeerStore {
        let mut store = PeerStore::new(DEFAULT_SHARD_SIZE);
        store
            .shards
            .reserve_exact(capacity.div_ceil(DEFAULT_SHARD_SIZE));
        store
    }

    /// Total peers stored (including departed peers — slots are permanent).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no peer has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The power-of-two capacity of each shard.
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// `log2(shard_size)`: `id >> shard_shift()` is a peer's shard index.
    pub fn shard_shift(&self) -> u32 {
        self.shift
    }

    /// Number of shards currently backing the store.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards themselves (scheduling hands these to the worker pool).
    pub fn shards(&self) -> &[PeerShard] {
        &self.shards
    }

    /// Mutable access to one shard's columns (the fused period walk's
    /// per-run handle).
    pub(crate) fn shard_mut(&mut self, index: usize) -> &mut PeerShard {
        &mut self.shards[index]
    }

    /// Re-partitions the store into (at least) `shards` shards by shrinking
    /// the shard size to the smallest power of two that covers the current
    /// population in that many shards.  Stored state is moved column-wise;
    /// results are byte-identical across shard counts (sharding only changes
    /// the chunk boundaries of the scheduling pass, whose outputs concatenate
    /// in peer order either way).
    pub fn set_shards(&mut self, shards: usize) {
        let shards = shards.max(1);
        let target = self.len.div_ceil(shards).max(1).next_power_of_two();
        self.reshard(target);
    }

    /// Re-partitions the store to the given power-of-two shard size.
    pub fn set_shard_size(&mut self, shard_size: usize) {
        assert!(
            shard_size.is_power_of_two(),
            "shard size must be a power of two, got {shard_size}"
        );
        self.reshard(shard_size);
    }

    fn reshard(&mut self, shard_size: usize) {
        if shard_size == self.shard_size {
            return;
        }
        let old = std::mem::take(&mut self.shards);
        self.shard_size = shard_size;
        self.shift = shard_size.trailing_zeros();
        self.len = 0;
        self.shards.reserve_exact(
            old.iter()
                .map(PeerShard::len)
                .sum::<usize>()
                .div_ceil(shard_size),
        );
        for shard in old {
            let PeerShard { buffers, headers } = shard;
            for (buffer, header) in buffers.into_iter().zip(headers) {
                self.push_parts(buffer, header);
            }
        }
    }

    /// Appends the next peer.  Ids are dense: the node's id must equal the
    /// store's current length (checked in debug builds by the caller, which
    /// owns id assignment).
    pub fn push(&mut self, node: PeerNode) {
        let (buffer, playback, known, credit) = node.into_parts();
        self.push_parts(
            buffer,
            PeerHeader {
                playback,
                play_credit: credit,
                known_sessions: known,
            },
        );
    }

    fn push_parts(&mut self, buffer: FifoBuffer, header: PeerHeader) {
        if self.len == self.shards.len() * self.shard_size {
            self.shards.push(PeerShard::with_capacity(self.shard_size));
        }
        let shard = self.shards.last_mut().expect("shard just ensured");
        shard.push_parts(buffer, header);
        self.len += 1;
    }

    /// `id → (shard, slot)`.
    #[inline]
    fn loc(&self, id: PeerId) -> (usize, usize) {
        let id = id as usize;
        (id >> self.shift, id & (self.shard_size - 1))
    }

    /// The shard index holding `id`.
    #[inline]
    pub fn shard_of(&self, id: PeerId) -> usize {
        (id as usize) >> self.shift
    }

    /// A peer's buffer column entry.
    #[inline]
    pub fn buffer(&self, id: PeerId) -> &FifoBuffer {
        let (shard, slot) = self.loc(id);
        &self.shards[shard].buffers[slot]
    }

    /// Mutable access to a peer's buffer (deliveries, source emission).
    #[inline]
    pub fn buffer_mut(&mut self, id: PeerId) -> &mut FifoBuffer {
        let (shard, slot) = self.loc(id);
        &mut self.shards[shard].buffers[slot]
    }

    /// A peer's hot header column entry.
    #[inline]
    pub fn header(&self, id: PeerId) -> &PeerHeader {
        let (shard, slot) = self.loc(id);
        &self.shards[shard].headers[slot]
    }

    /// A shared view of one peer.
    #[inline]
    pub fn peer(&self, id: PeerId) -> PeerRef<'_> {
        let (shard, slot) = self.loc(id);
        let shard = &self.shards[shard];
        let header = &shard.headers[slot];
        PeerRef {
            id,
            buffer: &shard.buffers[slot],
            playback: &header.playback,
            known_sessions: header.known_sessions,
        }
    }

    /// An exclusive view of one peer.
    #[inline]
    pub fn peer_mut(&mut self, id: PeerId) -> PeerMut<'_> {
        let (shard, slot) = self.loc(id);
        let shard = &mut self.shards[shard];
        PeerMut {
            id,
            buffer: &mut shard.buffers[slot],
            header: &mut shard.headers[slot],
        }
    }

    /// Issues a software prefetch for a peer's buffer struct and header
    /// line.  Advisory only: out-of-range ids are ignored.
    #[inline]
    pub(crate) fn prefetch_peer(&self, id: PeerId) {
        let (shard, slot) = self.loc(id);
        if let Some(shard) = self.shards.get(shard) {
            if let Some(buffer) = shard.buffers.get(slot) {
                crate::prefetch::prefetch_read(buffer);
            }
            if let Some(header) = shard.headers.get(slot) {
                crate::prefetch::prefetch_read(header);
            }
        }
    }

    /// Issues a software prefetch for a peer's buffer struct only (the
    /// neighbour-gather walks read `max_id`/availability words, never the
    /// header).  Advisory only: out-of-range ids are ignored.
    #[inline]
    pub(crate) fn prefetch_buffer(&self, id: PeerId) {
        let (shard, slot) = self.loc(id);
        if let Some(buffer) = self.shards.get(shard).and_then(|s| s.buffers.get(slot)) {
            crate::prefetch::prefetch_read(buffer);
        }
    }
}

impl MemoryFootprint for PeerStore {
    fn heap_bytes(&self) -> usize {
        vec_bytes(&self.shards) + self.shards.iter().map(|s| s.heap_bytes()).sum::<usize>()
    }
}

/// A shared, `Copy` view of one stored peer — the read-side twin of
/// [`PeerNode`], sharing its protocol logic.
#[derive(Clone, Copy)]
pub struct PeerRef<'a> {
    id: PeerId,
    buffer: &'a FifoBuffer,
    playback: &'a PlaybackState,
    known_sessions: usize,
}

impl<'a> PeerRef<'a> {
    /// The peer's id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The peer's segment buffer.
    pub fn buffer(&self) -> &'a FifoBuffer {
        self.buffer
    }

    /// The peer's playback state.
    pub fn playback(&self) -> &'a PlaybackState {
        self.playback
    }

    /// Number of sessions the peer has discovered.
    pub fn known_sessions(&self) -> usize {
        self.known_sessions
    }

    /// The id the peer will play next (`id_play`).
    pub fn id_play(&self) -> SegmentId {
        self.playback.next_play()
    }

    /// The sessions the peer currently knows about.
    pub fn known<'d>(&self, directory: &'d SessionDirectory) -> &'d [Session] {
        peer::known_slice(self.known_sessions, directory)
    }

    /// See [`PeerNode::undelivered_in_session`].
    pub fn undelivered_in_session(&self, session: &Session, fallback_end: SegmentId) -> usize {
        peer::undelivered_in_session(self.buffer, self.id_play(), session, fallback_end)
    }

    /// See [`PeerNode::q2_for`].
    pub fn q2_for(&self, session: &Session, qs: usize) -> usize {
        peer::q2_for(self.buffer, session, qs)
    }

    /// See [`PeerNode::prepared_for`].
    pub fn prepared_for(&self, session: &Session, qs: usize) -> bool {
        self.q2_for(session, qs) == 0
    }

    /// See [`PeerNode::build_context`] (the allocating reference path; the
    /// optimized path goes through the scratch arena instead).
    pub fn build_context(
        &self,
        config: &GossipConfig,
        directory: &SessionDirectory,
        inbound_rate: f64,
        neighbors: &[NeighborInfo<'_>],
    ) -> Option<SchedulingContext> {
        peer::build_context(
            self.buffer,
            self.id_play(),
            self.known(directory),
            config,
            inbound_rate,
            neighbors,
        )
    }
}

/// An exclusive view of one stored peer — the write-side twin of
/// [`PeerNode`], sharing its protocol logic.
pub struct PeerMut<'a> {
    id: PeerId,
    buffer: &'a mut FifoBuffer,
    header: &'a mut PeerHeader,
}

impl PeerMut<'_> {
    /// The peer's id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// Mutable access to the peer's buffer.
    pub fn buffer_mut(&mut self) -> &mut FifoBuffer {
        self.buffer
    }

    /// See [`PeerNode::rejoin_at`].
    pub fn rejoin_at(&mut self, join_point: SegmentId) {
        self.header.playback.rejoin_at(join_point);
    }

    /// See [`PeerNode::discover_sessions`].
    pub fn discover_sessions(&mut self, directory: &SessionDirectory, observed_max: SegmentId) {
        peer::discover_sessions(&mut self.header.known_sessions, directory, observed_max);
    }

    /// See [`PeerNode::advance_playback`].
    pub fn advance_playback(&mut self, config: &GossipConfig, directory: &SessionDirectory) -> u64 {
        let known = peer::known_slice(self.header.known_sessions, directory);
        peer::advance_playback(
            self.buffer,
            &mut self.header.playback,
            &mut self.header.play_credit,
            known,
            config,
        )
    }

    /// Read access to the peer's playback state (the QoE recorder observes
    /// it right after [`advance_playback`](Self::advance_playback) without
    /// paying a second store lookup).
    pub fn playback(&self) -> &PlaybackState {
        &self.header.playback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_of(n: usize, shard_size: usize) -> PeerStore {
        let cfg = GossipConfig::paper_default();
        let mut store = PeerStore::new(shard_size);
        for id in 0..n {
            store.push(PeerNode::new(id as PeerId, &cfg, SegmentId(0)));
        }
        store
    }

    #[test]
    fn push_assigns_dense_shard_slots() {
        let store = store_of(10, 4);
        assert_eq!(store.len(), 10);
        assert_eq!(store.shard_count(), 3);
        assert_eq!(store.shards()[0].len(), 4);
        assert_eq!(store.shards()[1].len(), 4);
        assert_eq!(store.shards()[2].len(), 2);
        assert_eq!(store.shard_of(3), 0);
        assert_eq!(store.shard_of(4), 1);
        assert_eq!(store.peer(7).id(), 7);
    }

    #[test]
    fn views_match_the_logical_record() {
        let cfg = GossipConfig::paper_default();
        let mut dir = SessionDirectory::new();
        dir.start_session(0, 0.0, None);

        let mut store = store_of(6, 4);
        let mut node = PeerNode::new(2, &cfg, SegmentId(0));

        for i in 0..20u64 {
            store.buffer_mut(2).insert(SegmentId(i));
            node.buffer_mut().insert(SegmentId(i));
        }
        store.peer_mut(2).discover_sessions(&dir, SegmentId(5));
        node.discover_sessions(&dir, SegmentId(5));
        assert_eq!(store.peer(2).known_sessions(), node.known_sessions());

        let played_store = store.peer_mut(2).advance_playback(&cfg, &dir);
        let played_node = node.advance_playback(&cfg, &dir);
        assert_eq!(played_store, played_node);
        assert_eq!(store.peer(2).id_play(), node.id_play());

        let s = &dir.sessions()[0];
        assert_eq!(
            store.peer(2).undelivered_in_session(s, SegmentId(19)),
            node.undelivered_in_session(s, SegmentId(19))
        );
        assert_eq!(store.peer(2).q2_for(s, 5), node.q2_for(s, 5));
    }

    #[test]
    fn resharding_preserves_state_and_order() {
        let mut dir = SessionDirectory::new();
        dir.start_session(0, 0.0, None);

        let mut store = store_of(11, 4);
        for id in 0..11u32 {
            for i in 0..(id as u64 + 1) {
                store.buffer_mut(id).insert(SegmentId(i));
            }
            store.peer_mut(id).discover_sessions(&dir, SegmentId(0));
        }

        store.set_shards(2);
        assert_eq!(store.len(), 11);
        assert_eq!(store.shard_size(), 8);
        assert_eq!(store.shard_count(), 2);
        for id in 0..11u32 {
            assert_eq!(store.buffer(id).len(), id as usize + 1);
            assert_eq!(store.peer(id).known_sessions(), 1);
        }

        // Growing back to one shard is equally lossless.
        store.set_shards(1);
        assert_eq!(store.shard_count(), 1);
        for id in 0..11u32 {
            assert_eq!(store.buffer(id).len(), id as usize + 1);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shard_size_is_rejected() {
        PeerStore::new(12);
    }
}
