//! The 620-bit data-availability map.
//!
//! §5.3 of the paper sizes the per-neighbour control message: "we use 600
//! bits to record the data availability … The id of the first segment in the
//! buffer is indicated by 20 bits … getting the buffer information of one
//! neighbor takes 620 bits' communication cost in total."
//!
//! [`BufferMap`] is that message: a window of `B` availability bits anchored
//! at a head segment id, plus a compact wire encoding used to verify the bit
//! budget and round-trip the message.

use crate::buffer::FifoBuffer;
use crate::mem::MemoryFootprint;
use crate::segment::SegmentId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Errors produced when decoding a wire buffer map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferMapDecodeError {
    /// Description of the malformation.
    pub message: String,
}

impl fmt::Display for BufferMapDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buffer map decode error: {}", self.message)
    }
}

impl std::error::Error for BufferMapDecodeError {}

/// A data-availability window: `bits[i]` says whether segment `head + i` is
/// held by the advertising peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferMap {
    head: SegmentId,
    window: usize,
    words: Vec<u64>,
}

impl BufferMap {
    /// Creates an empty (all-unavailable) map anchored at `head` covering
    /// `window` segments.
    pub fn empty(head: SegmentId, window: usize) -> Self {
        assert!(window > 0, "buffer map window must be positive");
        BufferMap {
            head,
            window,
            words: vec![0u64; window.div_ceil(64)],
        }
    }

    /// Builds the map a peer would advertise from its FIFO buffer.
    ///
    /// The window is anchored at the smallest id that keeps the buffer's
    /// newest segment inside the window, so the advertised range always
    /// covers the most recent `window` ids the peer could hold.
    pub fn from_buffer(buffer: &FifoBuffer, window: usize) -> Self {
        let head = match buffer.max_id() {
            Some(max) => SegmentId(max.value().saturating_sub(window as u64 - 1)),
            None => SegmentId(0),
        };
        let mut map = BufferMap::empty(head, window);
        for id in buffer.ids() {
            map.set(id);
        }
        map
    }

    /// The first id covered by the window.
    pub fn head(&self) -> SegmentId {
        self.head
    }

    /// Number of segment ids covered by the window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Marks a segment as available.  Ids outside the window are ignored
    /// (they simply cannot be advertised, as in the real protocol).
    pub fn set(&mut self, id: SegmentId) {
        if let Some(offset) = self.offset_of(id) {
            self.words[offset / 64] |= 1 << (offset % 64);
        }
    }

    /// True when the map advertises `id`.
    pub fn contains(&self, id: SegmentId) -> bool {
        match self.offset_of(id) {
            Some(offset) => (self.words[offset / 64] >> (offset % 64)) & 1 == 1,
            None => false,
        }
    }

    /// Number of advertised segments.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over all advertised segment ids (ascending).
    pub fn ids(&self) -> impl Iterator<Item = SegmentId> + '_ {
        (0..self.window).filter_map(move |i| {
            if (self.words[i / 64] >> (i % 64)) & 1 == 1 {
                Some(SegmentId(self.head.value() + i as u64))
            } else {
                None
            }
        })
    }

    /// Size of the wire message in bits: `window` availability bits plus a
    /// 20-bit head id, matching the paper's 600 + 20 = 620 bits accounting
    /// for the default window of 600.
    pub fn wire_bits(&self) -> u64 {
        self.window as u64 + 20
    }

    /// Encodes the map to bytes (head id as 8 bytes + packed bit words).
    ///
    /// The byte encoding is slightly larger than the theoretical
    /// [`wire_bits`](Self::wire_bits) because it is byte aligned; overhead
    /// accounting always uses `wire_bits`.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(8 + 4 + self.words.len() * 8);
        out.put_u64(self.head.value());
        out.put_u32(crate::cast::narrow(
            self.window,
            "window size fits the u32 wire field",
        ));
        for w in &self.words {
            out.put_u64(*w);
        }
        out.freeze()
    }

    /// Decodes a map previously produced by [`encode`](Self::encode).
    pub fn decode(mut bytes: Bytes) -> Result<Self, BufferMapDecodeError> {
        if bytes.len() < 12 {
            return Err(BufferMapDecodeError {
                message: format!("message too short: {} bytes", bytes.len()),
            });
        }
        let head = SegmentId(bytes.get_u64());
        let window = bytes.get_u32() as usize;
        if window == 0 {
            return Err(BufferMapDecodeError {
                message: "zero window".into(),
            });
        }
        let expected_words = window.div_ceil(64);
        if bytes.len() != expected_words * 8 {
            return Err(BufferMapDecodeError {
                message: format!(
                    "expected {} payload bytes for window {window}, got {}",
                    expected_words * 8,
                    bytes.len()
                ),
            });
        }
        let mut words = Vec::with_capacity(expected_words);
        for _ in 0..expected_words {
            words.push(bytes.get_u64());
        }
        // Bits beyond the window must be zero.
        let tail_bits = expected_words * 64 - window;
        if tail_bits > 0 {
            let last = words[expected_words - 1];
            if last >> (64 - tail_bits) != 0 {
                return Err(BufferMapDecodeError {
                    message: "non-zero bits beyond the advertised window".into(),
                });
            }
        }
        Ok(BufferMap {
            head,
            window,
            words,
        })
    }

    fn offset_of(&self, id: SegmentId) -> Option<usize> {
        if id < self.head {
            return None;
        }
        let offset = (id.value() - self.head.value()) as usize;
        if offset < self.window {
            Some(offset)
        } else {
            None
        }
    }
}

impl MemoryFootprint for BufferMap {
    fn heap_bytes(&self) -> usize {
        crate::mem::vec_bytes(&self.words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_620_bits() {
        let map = BufferMap::empty(SegmentId(0), 600);
        assert_eq!(map.wire_bits(), 620);
    }

    #[test]
    fn set_and_contains_respect_the_window() {
        let mut map = BufferMap::empty(SegmentId(100), 10);
        map.set(SegmentId(100));
        map.set(SegmentId(109));
        map.set(SegmentId(110)); // outside, ignored
        map.set(SegmentId(99)); // outside, ignored
        assert!(map.contains(SegmentId(100)));
        assert!(map.contains(SegmentId(109)));
        assert!(!map.contains(SegmentId(110)));
        assert!(!map.contains(SegmentId(99)));
        assert_eq!(map.count(), 2);
        assert_eq!(
            map.ids().collect::<Vec<_>>(),
            vec![SegmentId(100), SegmentId(109)]
        );
    }

    #[test]
    fn from_buffer_covers_most_recent_window() {
        let mut buf = FifoBuffer::new(600);
        for i in 0..700u64 {
            buf.insert(SegmentId(i));
        }
        let map = BufferMap::from_buffer(&buf, 600);
        assert_eq!(map.head(), SegmentId(100));
        assert_eq!(map.count(), 600);
        assert!(map.contains(SegmentId(699)));
        assert!(!map.contains(SegmentId(99)));
    }

    #[test]
    fn from_small_buffer() {
        let mut buf = FifoBuffer::new(600);
        buf.insert(SegmentId(3));
        buf.insert(SegmentId(5));
        let map = BufferMap::from_buffer(&buf, 600);
        assert!(map.contains(SegmentId(3)));
        assert!(map.contains(SegmentId(5)));
        assert_eq!(map.count(), 2);

        let empty = BufferMap::from_buffer(&FifoBuffer::new(10), 600);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.head(), SegmentId(0));
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut map = BufferMap::empty(SegmentId(12_345), 600);
        for i in (0..600).step_by(7) {
            map.set(SegmentId(12_345 + i));
        }
        let decoded = BufferMap::decode(map.encode()).unwrap();
        assert_eq!(decoded, map);
    }

    #[test]
    fn decode_rejects_malformed_messages() {
        assert!(BufferMap::decode(Bytes::from_static(&[1, 2, 3])).is_err());

        // Valid header but truncated payload.
        let mut bytes = BytesMut::new();
        bytes.put_u64(0);
        bytes.put_u32(600);
        bytes.put_u64(0);
        assert!(BufferMap::decode(bytes.freeze()).is_err());

        // Zero window.
        let mut bytes = BytesMut::new();
        bytes.put_u64(0);
        bytes.put_u32(0);
        assert!(BufferMap::decode(bytes.freeze()).is_err());

        // Bits set beyond the window.
        let mut bytes = BytesMut::new();
        bytes.put_u64(0);
        bytes.put_u32(10);
        bytes.put_u64(u64::MAX);
        assert!(BufferMap::decode(bytes.freeze()).is_err());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = BufferMap::empty(SegmentId(0), 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        /// Encoding then decoding reproduces exactly the advertised id set.
        #[test]
        fn prop_round_trip(head in 0u64..1_000_000, offsets in proptest::collection::btree_set(0u64..600, 0..100)) {
            let mut map = BufferMap::empty(SegmentId(head), 600);
            for o in &offsets {
                map.set(SegmentId(head + o));
            }
            let decoded = BufferMap::decode(map.encode()).unwrap();
            proptest::prop_assert_eq!(&decoded, &map);
            proptest::prop_assert_eq!(decoded.count(), offsets.len());
        }
    }
}
