//! Reusable per-period working memory (the "scratch arena").
//!
//! `StreamingSystem::step` used to re-allocate the world every scheduling
//! period: the active-peer list, a `Vec<NeighborInfo>` per node, a
//! `Vec<SupplierInfo>` per candidate segment, a `HashMap` of outbound
//! budgets, and the per-node request vectors.  At production scale (the
//! ROADMAP's million-user scenarios) those allocations dominate the period
//! cost.  This module holds every buffer the hot path needs, all owned by
//! the system and reused across periods, so a steady-state period performs
//! **zero heap allocations**:
//!
//! * [`PeriodScratch`] — dense (indexed by [`PeerId`]) rate/budget tables,
//!   the active list, the merged request batches and a pool of recycled
//!   request vectors,
//! * [`WorkerScratch`] — the per-worker state of the (optionally parallel)
//!   scheduling pass: a reusable [`SchedulingContext`], supplier-vector and
//!   request-vector pools, the need/availability bitset words and the
//!   scheduler's own [`SchedulerScratch`].
//!
//! Candidate segments are enumerated by word-level bitset intersection of
//! the peers' availability windows, which every
//! [`FifoBuffer`](crate::buffer::FifoBuffer) maintains incrementally (one
//! bit flip per insert/evict) — nothing is rebuilt per period and no
//! per-id neighbour probing happens at all.
//!
//! The structures only ever grow (to a steady-state high-water mark); the
//! equivalence tests assert the resulting [`SystemReport`]s are identical to
//! the pre-refactor reference implementation, and the allocation-counter
//! test in `fss-bench` asserts the zero-allocation property.
//!
//! [`SystemReport`]: crate::system::SystemReport

use crate::config::GossipConfig;
use crate::mem::{vec_bytes, MemoryFootprint};
use crate::scheduler::{CandidateSegment, SchedulerScratch, SchedulingContext, SupplierInfo};
use crate::segment::{SegmentId, SessionDirectory};
use crate::store::{PeerRef, PeerStore};
use crate::transfer::{DeliveredSegment, RequestBatch};
use fss_overlay::PeerId;

/// Per-worker state of the scheduling pass.
#[derive(Debug, Default)]
pub struct WorkerScratch {
    /// The reusable scheduling context handed to the scheduler.
    pub ctx: SchedulingContext,
    /// Recycled supplier vectors for `ctx.candidates`.
    supplier_pool: Vec<Vec<SupplierInfo>>,
    /// Bits of the node's needed-but-missing ids over the current window.
    need_words: Vec<u64>,
    /// OR of the neighbours' availability words over the same window.
    avail_words: Vec<u64>,
    /// The scheduler's own reusable state.
    pub sched: SchedulerScratch,
    /// Batches produced by this worker, in node order.
    pub out: Vec<RequestBatch>,
    /// Recycled request vectors for new batches.
    pub request_pool: Vec<Vec<crate::scheduler::SegmentRequest>>,
    /// Control traffic observed by this worker (summed after the pass).
    pub control_bits: u64,
}

impl Default for SchedulingContext {
    fn default() -> Self {
        SchedulingContext {
            tau_secs: 0.0,
            play_rate: 0.0,
            inbound_rate: 0.0,
            id_play: SegmentId(0),
            startup_q: 0,
            new_source_qs: 0,
            old_session: None,
            new_session: None,
            q1: 0,
            q2: 0,
            candidates: Vec::new(),
        }
    }
}

impl WorkerScratch {
    /// Returns `ctx.candidates`' supplier vectors to the pool.
    fn clear_candidates(&mut self) {
        for mut candidate in self.ctx.candidates.drain(..) {
            candidate.suppliers.clear();
            self.supplier_pool.push(candidate.suppliers);
        }
    }

    // fss-lint: hot-path
    /// Enumerates the candidates of one id range by word-level bitset
    /// intersection: `need = range_mask AND NOT own_held`,
    /// `avail = OR(neighbour held)`, candidates = `need AND avail`.
    ///
    /// Candidates are produced in ascending id order with suppliers in
    /// `neighbors` order — identical to the reference per-id probing.
    #[allow(clippy::too_many_arguments)]
    fn candidates_in_range(
        &mut self,
        start: SegmentId,
        end: SegmentId,
        own: PeerRef<'_>,
        neighbors: &[PeerId],
        store: &PeerStore,
        outbound_rate: &[f64],
    ) {
        if end < start {
            return;
        }
        let (start, end) = (start.value(), end.value());
        let base = start & !63;
        let words = ((end - base) / 64 + 1) as usize;
        self.need_words.clear();
        self.need_words.resize(words, 0);
        self.avail_words.clear();
        self.avail_words.resize(words, 0);

        for (i, need) in self.need_words.iter_mut().enumerate() {
            let word_base = base + (i as u64) * 64;
            let mut mask = u64::MAX;
            if word_base < start {
                mask &= u64::MAX << (start - word_base);
            }
            if word_base + 63 > end {
                mask &= u64::MAX >> (word_base + 63 - end);
            }
            *need = mask & !own.buffer().availability_word(word_base);
        }
        for &n in neighbors {
            let buffer = store.buffer(n);
            if buffer.is_empty() {
                continue;
            }
            for (i, avail) in self.avail_words.iter_mut().enumerate() {
                *avail |= buffer.availability_word(base + (i as u64) * 64);
            }
        }

        for i in 0..words {
            let mut bits = self.need_words[i] & self.avail_words[i];
            while bits != 0 {
                let id = base + (i as u64) * 64 + bits.trailing_zeros() as u64;
                bits &= bits - 1;
                let mut suppliers = self.supplier_pool.pop().unwrap_or_default();
                for &n in neighbors {
                    let buffer = store.buffer(n);
                    if let Some(position) = buffer.position_from_tail(SegmentId(id)) {
                        suppliers.push(SupplierInfo {
                            peer: n,
                            rate: outbound_rate[n as usize],
                            buffer_position: position,
                            buffer_capacity: buffer.capacity(),
                        });
                    }
                }
                debug_assert!(!suppliers.is_empty(), "avail bit implies a supplier");
                self.ctx.candidates.push(CandidateSegment {
                    id: SegmentId(id),
                    suppliers,
                });
            }
        }
    }

    /// Rebuilds `self.ctx` for `node` without allocating, mirroring
    /// `PeerNode::build_context` exactly (same windows, same candidate
    /// order, same supplier order).  Returns `false` when the node has
    /// nothing it could request this period.
    ///
    /// The discovery inputs arrive precomputed: `known_sessions` is the
    /// node's *post-discovery* session count for this period (the fused
    /// scheduling pass computes it locally and defers the store write to
    /// the playback walk) and `max_advertised` is the max id over the
    /// neighbours' buffers, gathered once by the caller's chunk walk
    /// instead of re-walking the neighbour list here.
    #[allow(clippy::too_many_arguments)]
    pub fn build_context(
        &mut self,
        node: PeerRef<'_>,
        config: &GossipConfig,
        directory: &SessionDirectory,
        inbound_rate: f64,
        neighbors: &[PeerId],
        store: &PeerStore,
        outbound_rate: &[f64],
        known_sessions: usize,
        max_advertised: SegmentId,
    ) -> bool {
        self.clear_candidates();
        if neighbors.is_empty() || inbound_rate <= 0.0 {
            return false;
        }
        let known = crate::peer::known_slice(known_sessions, directory);
        if known.is_empty() {
            return false;
        }

        let id_play = node.id_play();
        let current_idx = known
            .iter()
            .rposition(|s| s.first_segment <= id_play)
            .unwrap_or(0);
        let current = &known[current_idx];
        let next = known.get(current_idx + 1);

        // Ranges identical to the reference implementation: the current
        // stream capped to a 2·B trailing window, plus the next (new-source)
        // stream once discovered.  Ranges are disjoint and ascending, so
        // candidates come out in id order.
        let current_end = current
            .last_segment
            .unwrap_or(max_advertised)
            .min(max_advertised);
        let window_cap = 2 * config.buffer_capacity as u64;
        let current_start = id_play
            .max(current.first_segment)
            .max(SegmentId(current_end.value().saturating_sub(window_cap)));
        if current_end >= current_start {
            self.candidates_in_range(
                current_start,
                current_end,
                node,
                neighbors,
                store,
                outbound_rate,
            );
        }
        if let Some(next) = next {
            let next_end = next
                .last_segment
                .unwrap_or(max_advertised)
                .min(max_advertised);
            if next_end >= next.first_segment {
                self.candidates_in_range(
                    next.first_segment,
                    next_end,
                    node,
                    neighbors,
                    store,
                    outbound_rate,
                );
            }
        }
        if self.ctx.candidates.is_empty() {
            return false;
        }

        let (old_session, new_session, q1, q2) = match next {
            Some(next) => (
                Some(session_view(current)),
                Some(session_view(next)),
                node.undelivered_in_session(current, max_advertised),
                node.q2_for(next, config.new_source_qs),
            ),
            None => (
                Some(session_view(current)),
                None,
                node.undelivered_in_session(current, max_advertised),
                0,
            ),
        };

        self.ctx.tau_secs = config.tau_secs;
        self.ctx.play_rate = config.play_rate;
        self.ctx.inbound_rate = inbound_rate;
        self.ctx.id_play = id_play;
        self.ctx.startup_q = config.startup_q;
        self.ctx.new_source_qs = config.new_source_qs;
        self.ctx.old_session = old_session;
        self.ctx.new_session = new_session;
        self.ctx.q1 = q1;
        self.ctx.q2 = q2;
        true
    }
    // fss-lint: end
}

impl MemoryFootprint for WorkerScratch {
    /// Context candidates, the recycled supplier/request pools and the
    /// bitset word buffers.  The type-erased scheduler scratch counts as
    /// its slot only (its contents are policy-private).
    fn heap_bytes(&self) -> usize {
        let nested_suppliers: usize = self
            .ctx
            .candidates
            .iter()
            .map(|c| vec_bytes(&c.suppliers))
            .chain(self.supplier_pool.iter().map(vec_bytes))
            .sum();
        let nested_requests: usize = self
            .out
            .iter()
            .map(|b| vec_bytes(&b.requests))
            .chain(self.request_pool.iter().map(vec_bytes))
            .sum();
        vec_bytes(&self.ctx.candidates)
            + nested_suppliers
            + vec_bytes(&self.need_words)
            + vec_bytes(&self.avail_words)
            + vec_bytes(&self.out)
            + vec_bytes(&self.request_pool)
            + vec_bytes(&self.supplier_pool)
            + nested_requests
    }
}

impl MemoryFootprint for PeriodScratch {
    /// The dense per-peer tables, the active/observed lists, the merged
    /// batches, the recycled request vectors and every worker slot.
    fn heap_bytes(&self) -> usize {
        let nested_requests: usize = self
            .batches
            .iter()
            .map(|b| vec_bytes(&b.requests))
            .chain(self.request_pool.iter().map(vec_bytes))
            .sum();
        let workers: usize =
            vec_bytes(&self.workers) + self.workers.iter().map(|w| w.heap_bytes()).sum::<usize>();
        vec_bytes(&self.active)
            + vec_bytes(&self.observed_max)
            + vec_bytes(&self.outbound_rate)
            + vec_bytes(&self.inbound_rate)
            + vec_bytes(&self.outbound_budget)
            + vec_bytes(&self.chunks)
            + vec_bytes(&self.batches)
            + vec_bytes(&self.request_pool)
            + vec_bytes(&self.deliveries)
            + vec_bytes(&self.dest_counts)
            + vec_bytes(&self.deliveries_dest)
            + nested_requests
            + workers
    }
}

fn session_view(session: &crate::segment::Session) -> crate::scheduler::SessionView {
    crate::scheduler::SessionView {
        id: session.id,
        first_segment: session.first_segment,
        last_segment: session.last_segment,
    }
}

/// All reusable buffers of the period loop, owned by the system.
#[derive(Debug, Default)]
pub struct PeriodScratch {
    /// Active peers this period, in id order.
    pub active: Vec<PeerId>,
    /// Discovery pass: max observed id per active peer (aligned with
    /// `active`).
    pub observed_max: Vec<SegmentId>,
    /// Dense per-peer outbound rate (segments/s).
    pub outbound_rate: Vec<f64>,
    /// Dense per-peer inbound rate (segments/s).
    pub inbound_rate: Vec<f64>,
    /// Dense per-peer whole-segment outbound budget for the period.
    pub outbound_budget: Vec<usize>,
    /// Chunk plan of the scheduling pass: `(start, end)` index ranges into
    /// `active`, one per chunk.  With a sharded store the chunks follow the
    /// shard boundaries; a single-shard store falls back to even slices.
    pub chunks: Vec<(usize, usize)>,
    /// The merged request batches, in node order.
    pub batches: Vec<RequestBatch>,
    /// Recycled request vectors (refilled from delivered batches).
    pub request_pool: Vec<Vec<crate::scheduler::SegmentRequest>>,
    /// Per-worker scheduling state (one entry when sequential).
    pub workers: Vec<WorkerScratch>,
    /// Deliveries of the current period, in resolver order
    /// (supplier-major — see [`crate::transfer`]).
    pub deliveries: Vec<DeliveredSegment>,
    /// Counting-sort workspace of the fused delivery walk: per destination
    /// shard, the offset of its run in `deliveries_dest` (length
    /// `shard_count + 1` after the prefix sum).
    pub dest_counts: Vec<usize>,
    /// Deliveries regrouped by destination (requester) shard, stable within
    /// each shard — the order the fused shard-major walk applies them in.
    pub deliveries_dest: Vec<DeliveredSegment>,
}

impl PeriodScratch {
    /// Grows the dense tables to cover `peer_capacity` ids and ensures
    /// `workers` worker slots exist.
    pub fn ensure_capacity(&mut self, peer_capacity: usize, workers: usize) {
        if self.outbound_rate.len() < peer_capacity {
            self.outbound_rate.resize(peer_capacity, 0.0);
            self.inbound_rate.resize(peer_capacity, 0.0);
            self.outbound_budget.resize(peer_capacity, 0);
        }
        while self.workers.len() < workers {
            self.workers.push(WorkerScratch::default());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_capacity_grows_monotonically() {
        let mut scratch = PeriodScratch::default();
        scratch.ensure_capacity(100, 2);
        assert_eq!(scratch.outbound_rate.len(), 100);
        assert_eq!(scratch.workers.len(), 2);
        scratch.ensure_capacity(50, 1);
        assert_eq!(scratch.outbound_rate.len(), 100, "tables never shrink");
        assert_eq!(scratch.workers.len(), 2);
        scratch.ensure_capacity(150, 4);
        assert_eq!(scratch.outbound_rate.len(), 150);
        assert_eq!(scratch.workers.len(), 4);
    }
}
